//! The one-stop PLSH client: a streaming similarity index behind a single
//! typed request/response API.
//!
//! [`Index`] bundles everything the paper's front-end needs — a concurrent
//! [`StreamingEngine`] (lock-free epoch-pinned queries, background merges
//! at `η·C`), an owned worker [`ThreadPool`], and an optional
//! [`Vectorizer`] for the tweet scenario — so applications never wire
//! pools or pick among query methods. Ingest with [`add`](Index::add) /
//! [`add_text`](Index::add_text), query with one
//! [`search`](Index::search) call taking a [`SearchRequest`], and get one
//! [`plsh::Error`](crate::Error) type end-to-end.
//!
//! Call [`shards`](IndexBuilder::shards) (or
//! [`auto_shards`](IndexBuilder::auto_shards) for the model-driven count)
//! to scale the same API across a [`ShardedIndex`] — hash-routed ingest
//! into shard-local streaming engines, overlapping background merges, and
//! query fan-out — without changing a single call site.
//!
//! ```
//! use plsh::{Index, PlshParams, SearchRequest, SparseVector};
//!
//! let params = PlshParams::builder(16).k(4).m(4).radius(0.9).seed(42).build()?;
//! let index = Index::builder(params).capacity(1024).threads(2).build()?;
//!
//! index.add(SparseVector::unit(vec![(0, 1.0), (3, 2.0)])?)?;
//! index.add(SparseVector::unit(vec![(0, 1.0), (3, 1.9)])?)?;
//!
//! let q = SparseVector::unit(vec![(0, 1.0), (3, 2.0)])?;
//! let resp = index.search(&SearchRequest::query(q).top_k(2))?;
//! assert_eq!(resp.hits()[0].index, 0);
//! # Ok::<(), plsh::Error>(())
//! ```

use std::io::{Read, Write};
use std::sync::Arc;

use plsh_cluster::ShardedIndex;
use plsh_core::engine::{EngineConfig, EngineStats, EpochInfo, MergeReport, WindowSpec};
use plsh_core::error::{PlshError, Result};
use plsh_core::params::PlshParams;
use plsh_core::query::QueryStrategy;
use plsh_core::search::{SearchHit, SearchRequest, SearchResponse};
use plsh_core::snapshot::Snapshot;
use plsh_core::sparse::SparseVector;
use plsh_core::streaming::{ShutdownReport, StreamingEngine};
use plsh_parallel::ThreadPool;
use plsh_server::{ServeBackend, Server, ServerConfig};
use plsh_text::Vectorizer;

/// Default node capacity when the builder does not set one (the paper's
/// per-node `C` is 10.5 M; this default keeps small deployments cheap).
const DEFAULT_CAPACITY: usize = 1 << 20;

/// The engine behind an [`Index`]: one streaming node, or a sharded
/// cluster of them behind the same call surface.
#[derive(Clone)]
enum Backend {
    Single(StreamingEngine),
    Sharded(Arc<ShardedIndex>),
}

/// A cheaply cloneable handle to one PLSH node: streaming ingest, epoch
/// consistency, background merging, text vectorization, and the unified
/// [`SearchRequest`] query door — all behind one type that owns its
/// thread pool. Clones share the same underlying index.
#[derive(Clone)]
pub struct Index {
    backend: Backend,
    vectorizer: Option<Arc<Vectorizer>>,
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("points", &self.len())
            .field("capacity", &self.capacity())
            .field("dim", &self.params().dim())
            .field("text", &self.vectorizer.is_some())
            .finish_non_exhaustive()
    }
}

/// Builder for [`Index`]: configuration beyond the LSH parameters is
/// optional and defaults to the paper's operating point (auto-merge at
/// `η = 0.1`, fully optimized query strategy, one worker per core).
pub struct IndexBuilder {
    params: PlshParams,
    capacity: usize,
    threads: Option<usize>,
    eta: Option<f64>,
    auto_merge: bool,
    strategy: Option<QueryStrategy>,
    seal_min_points: Option<usize>,
    vectorizer: Option<Vectorizer>,
    /// `None` = single node; `Some(None)` = model-driven shard count;
    /// `Some(Some(s))` = fixed shard count.
    sharding: Option<Option<usize>>,
    window: Option<WindowSpec>,
}

impl IndexBuilder {
    /// Node capacity `C` in points (default 1 M). Inserts beyond this
    /// fail; a multi-node deployment retires old nodes instead (see
    /// `plsh-cluster`).
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Worker threads for hashing, merging, and batch fan-out (default:
    /// one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Delta fraction `η` of capacity that triggers a background merge
    /// (default 0.1, the paper's choice).
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = Some(eta);
        self
    }

    /// Disables automatic background merges; call [`Index::merge`]
    /// explicitly.
    pub fn manual_merge(mut self) -> Self {
        self.auto_merge = false;
        self
    }

    /// Default query strategy for requests that don't override it.
    pub fn query_strategy(mut self, strategy: QueryStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Minimum open-generation size before inserts auto-seal (default 1:
    /// every batch becomes query-visible as soon as the call returns).
    pub fn seal_min_points(mut self, points: usize) -> Self {
        self.seal_min_points = Some(points);
        self
    }

    /// Attaches a frozen text pipeline so [`Index::add_text`] and
    /// [`Index::search_text`] work. Its dimensionality must match the
    /// parameters'.
    pub fn vectorizer(mut self, vectorizer: Vectorizer) -> Self {
        self.vectorizer = Some(vectorizer);
        self
    }

    /// Scales the index across `shards` shard-local streaming engines
    /// (hash-routed ingest, overlapping background merges, query fan-out)
    /// behind the same call surface. `capacity` becomes the *per-shard*
    /// capacity, as in the paper's per-node `C`. See
    /// [`ShardedIndex`] for routing and merge semantics; snapshots
    /// flatten into the single-engine format and durable directories get
    /// one subdirectory per shard.
    pub fn shards(mut self, shards: usize) -> Self {
        self.sharding = Some(Some(shards));
        self
    }

    /// Like [`shards`](Self::shards), but lets the Section-7 performance
    /// model pick the shard count for this machine
    /// ([`plsh_core::model::PerformanceModel::pick_shard_count`]).
    pub fn auto_shards(mut self) -> Self {
        self.sharding = Some(None);
        self
    }

    /// Enables sliding-window retirement: only the newest
    /// [`WindowSpec::Docs`]`(n)` documents — or those younger than
    /// [`WindowSpec::Duration`] — stay live; older points are retired by a
    /// single range-tombstone watermark and physically reclaimed by the
    /// next merge. On a sharded index the window is a consistent
    /// cross-shard cut at the global stream position. The window must
    /// leave capacity headroom for the un-merged delta (a good rule of
    /// thumb: `capacity ≈ 3 × window`).
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = Some(window);
        self
    }

    /// Builds the index (generates hyperplanes, spins up the pool).
    pub fn build(self) -> Result<Index> {
        if let Some(v) = &self.vectorizer {
            if v.dim() != self.params.dim() {
                return Err(PlshError::InvalidParams(format!(
                    "vectorizer dimensionality {} does not match params dimensionality {}",
                    v.dim(),
                    self.params.dim()
                )));
            }
        }
        let mut config = EngineConfig::new(self.params, self.capacity);
        if let Some(eta) = self.eta {
            config = config.with_eta(eta);
        }
        if !self.auto_merge {
            config = config.manual_merge();
        }
        if let Some(s) = self.strategy {
            config = config.with_query_strategy(s);
        }
        if let Some(p) = self.seal_min_points {
            config = config.with_seal_min_points(p);
        }
        if let Some(w) = self.window {
            config = config.with_window(w);
        }
        let backend = match self.sharding {
            None => {
                let pool = match self.threads {
                    Some(t) => ThreadPool::new(t),
                    None => ThreadPool::default(),
                };
                Backend::Single(StreamingEngine::new(config, pool)?)
            }
            Some(shards) => {
                let mut builder = ShardedIndex::builder(config);
                if let Some(s) = shards {
                    builder = builder.shards(s);
                }
                if let Some(t) = self.threads {
                    builder = builder.threads(t);
                }
                Backend::Sharded(Arc::new(builder.build().map_err(PlshError::from)?))
            }
        };
        Ok(Index {
            backend,
            vectorizer: self.vectorizer.map(Arc::new),
        })
    }
}

impl Index {
    /// Starts building an index for the given LSH parameters.
    pub fn builder(params: PlshParams) -> IndexBuilder {
        IndexBuilder {
            params,
            capacity: DEFAULT_CAPACITY,
            threads: None,
            eta: None,
            auto_merge: true,
            strategy: None,
            seal_min_points: None,
            vectorizer: None,
            sharding: None,
            window: None,
        }
    }

    /// Restores an index from a snapshot stream previously written by
    /// [`save_to`](Index::save_to), with a default-sized pool. The
    /// restored engine answers every query identically to the saved one.
    /// Like `Engine::load_from`, the restored index merges manually —
    /// call [`merge`](Index::merge) after bulk loading. The vectorizer is
    /// not part of the snapshot; re-attach one with
    /// [`with_vectorizer`](Index::with_vectorizer).
    pub fn restore_from<R: Read>(r: &mut R) -> Result<Index> {
        Self::restore_with(r, ThreadPool::default())
    }

    /// [`restore_from`](Index::restore_from) with an explicit pool.
    pub fn restore_with<R: Read>(r: &mut R, pool: ThreadPool) -> Result<Index> {
        let engine = Snapshot::read_from(r)?.restore(&pool)?;
        Ok(Index {
            backend: Backend::Single(StreamingEngine::from_engine(engine, pool)),
            vectorizer: None,
        })
    }

    /// Attaches a frozen text pipeline after construction (e.g. after a
    /// snapshot restore).
    pub fn with_vectorizer(mut self, vectorizer: Vectorizer) -> Self {
        self.vectorizer = Some(Arc::new(vectorizer));
        self
    }

    // ---- Ingest ----

    /// Inserts one vector; returns its id. On a single-node index the
    /// point is visible to queries on return; on a sharded index it
    /// becomes visible once its shard's firehose drains it
    /// ([`flush`](Index::flush) is the barrier). A background merge
    /// starts when a sealed delta crosses `η·C`.
    pub fn add(&self, v: SparseVector) -> Result<u32> {
        match &self.backend {
            Backend::Single(engine) => engine.insert(v),
            Backend::Sharded(sharded) => Ok(sharded.insert(v)?),
        }
    }

    /// Inserts a batch (the paper's firehose arrives in ~100 K-point
    /// chunks); all-or-nothing with respect to capacity.
    pub fn add_batch(&self, vs: &[SparseVector]) -> Result<Vec<u32>> {
        match &self.backend {
            Backend::Single(engine) => engine.insert_batch(vs),
            Backend::Sharded(sharded) => Ok(sharded.insert_batch(vs)?),
        }
    }

    /// Vectorizes one document and inserts it. Fails with
    /// [`Error::EmptyVector`](PlshError::EmptyVector) when the document is
    /// entirely out-of-vocabulary (the paper's dropped "0-length" case).
    pub fn add_text(&self, text: &str) -> Result<u32> {
        self.add(self.vectorize(text)?)
    }

    /// Vectorizes and inserts many documents in one sealed batch. Fully
    /// out-of-vocabulary documents are *dropped* (paper semantics) and
    /// reported as `None` in the returned id list, which is parallel to
    /// the input.
    pub fn add_texts<'a, I>(&self, texts: I) -> Result<Vec<Option<u32>>>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let vectorizer = self.require_vectorizer()?;
        let mut slots: Vec<Option<u32>> = Vec::new();
        let mut batch: Vec<SparseVector> = Vec::new();
        for text in texts {
            match vectorizer.to_vector(text) {
                Ok(v) => {
                    batch.push(v);
                    slots.push(Some(0)); // patched below with the real id
                }
                // Only the documented drop case is silent; any other
                // vectorization failure is a real error.
                Err(plsh_text::TextError::OutOfVocabulary) => slots.push(None),
                Err(e) => return Err(e.into()),
            }
        }
        let ids = self.add_batch(&batch)?;
        let mut next = ids.into_iter();
        for slot in slots.iter_mut().flatten() {
            *slot = next.next().expect("one id per vectorized document");
        }
        Ok(slots)
    }

    /// Tombstones a point; `Ok(false)` if already deleted or out of
    /// range. The point disappears from all future queries immediately
    /// and is purged from the tables at the next merge.
    ///
    /// On a sharded index a point still in flight in its shard's ingest
    /// queue is waited for (condvar, not polling); if that shard's ingest
    /// worker has died the wait fails fast with an error instead of
    /// hanging.
    pub fn delete(&self, id: u32) -> Result<bool> {
        match &self.backend {
            Backend::Single(engine) => Ok(engine.delete(id)),
            Backend::Sharded(sharded) => sharded.delete(id).map_err(PlshError::from),
        }
    }

    // ---- Search ----

    /// Answers one [`SearchRequest`] — radius or k-NN, single query or
    /// batch, with optional radius/strategy overrides, candidate budget,
    /// counters, and profiling. On a single node the whole request runs
    /// against one pinned epoch; on a sharded index each shard pins its
    /// own and the answers merge globally. Ingest and merges never block
    /// it either way.
    pub fn search(&self, req: &SearchRequest) -> Result<SearchResponse> {
        match &self.backend {
            Backend::Single(engine) => engine.search(req),
            Backend::Sharded(sharded) => sharded.search(req),
        }
    }

    /// Radius search for a single vector — the clone-free thin wrapper for
    /// hot per-point loops (same answers as
    /// `search(&SearchRequest::query(q))`).
    pub fn query(&self, q: &SparseVector) -> Result<Vec<SearchHit>> {
        if let Some(max) = q.max_index() {
            let dim = self.params().dim();
            if max >= dim {
                return Err(PlshError::DimensionOutOfRange { index: max, dim });
            }
        }
        match &self.backend {
            Backend::Single(engine) => {
                Ok(engine.query(q).into_iter().map(SearchHit::from).collect())
            }
            Backend::Sharded(sharded) => Ok(sharded
                .search(&SearchRequest::query(q.clone()))?
                .into_hits()),
        }
    }

    /// Vectorizes free text and runs a radius search for it.
    pub fn search_text(&self, text: &str) -> Result<SearchResponse> {
        self.search(&SearchRequest::query(self.vectorize(text)?))
    }

    /// Converts text through the attached vectorizer — for composing
    /// custom [`SearchRequest`]s (k-NN over text, batches, overrides).
    pub fn vectorize(&self, text: &str) -> Result<SparseVector> {
        let v = self.require_vectorizer()?;
        Ok(v.to_vector(text)?)
    }

    // ---- Maintenance & observability ----

    /// Merges all sealed delta generations into the next static epoch(s)
    /// on this thread (queries keep running; publication is one swap per
    /// engine). On a sharded index this first drains the shard queues,
    /// then folds every shard — failing fast (instead of hanging) if a
    /// shard's ingest worker has died with points undrained.
    pub fn merge(&self) -> Result<()> {
        match &self.backend {
            Backend::Single(engine) => engine.merge_now(),
            Backend::Sharded(sharded) => sharded.quiesce().map_err(PlshError::from)?,
        }
        Ok(())
    }

    /// Ingest barrier: seals any buffered open generation (draining the
    /// shard queues first on a sharded index, so every prior `add` is
    /// query-visible on return) and blocks until in-flight background
    /// merges have published. Fails fast with an error (instead of
    /// hanging) if a shard's ingest worker has died with points
    /// undrained.
    pub fn flush(&self) -> Result<()> {
        match &self.backend {
            Backend::Single(engine) => {
                engine.seal();
                engine.wait_for_merge();
            }
            Backend::Sharded(sharded) => {
                sharded.flush().map_err(PlshError::from)?;
                sharded.wait_for_merges();
            }
        }
        Ok(())
    }

    /// Liveness and degradation report across the whole index: per-worker
    /// state (merge threads, shard ingest threads), restart counts, WAL
    /// lag, persistence retries, and whether any engine has degraded to
    /// read-only. Never blocks on ingest or merges.
    pub fn health(&self) -> plsh_core::HealthReport {
        match &self.backend {
            Backend::Single(engine) => engine.health(),
            Backend::Sharded(sharded) => sharded.health(),
        }
    }

    /// Attempts to lift a degraded engine (or every degraded shard) back
    /// to read-write by re-syncing persistence from memory. Returns
    /// `true` when nothing remains degraded. No-op `true` on a healthy
    /// index.
    pub fn heal(&self) -> bool {
        match &self.backend {
            Backend::Single(engine) => engine.heal(),
            Backend::Sharded(sharded) => sharded.heal(),
        }
    }

    /// Deadline-bounded graceful drain: seal buffered rows, join (or
    /// abandon) background merges, and report what made it. On a sharded
    /// index the shard queues drain first and the report folds across
    /// shards. See [`plsh_core::streaming::StreamingEngine::shutdown`].
    pub fn shutdown(&self, deadline: std::time::Duration) -> ShutdownReport {
        match &self.backend {
            Backend::Single(engine) => engine.shutdown(deadline),
            Backend::Sharded(sharded) => sharded.shutdown(deadline),
        }
    }

    /// Serves this index over HTTP with default [`ServerConfig`] — the
    /// one-call path onto the wire surface (`POST /search`, `/ingest`,
    /// `/delete`, `GET /healthz`, `/metrics`, `POST /ctl/shutdown`).
    /// Bind port 0 for an ephemeral port; the clone handed to the server
    /// shares this index's data. See [`plsh_server`] for protocol,
    /// shedding, and drain semantics.
    pub fn serve(&self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<Server> {
        self.serve_with(addr, ServerConfig::default())
    }

    /// [`serve`](Index::serve) with explicit [`ServerConfig`] (handler
    /// threads, queue bound, body cap, shedding budgets, drain deadline).
    pub fn serve_with(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        plsh_server::serve(Arc::new(self.clone()), addr, config)
    }

    /// Stored points (live + deleted; on a sharded index this counts
    /// routed points, including any still in flight in shard queues).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Single(engine) => engine.len(),
            Backend::Sharded(sharded) => sharded.len(),
        }
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The index's LSH parameters.
    pub fn params(&self) -> &PlshParams {
        match &self.backend {
            Backend::Single(engine) => engine.engine().params(),
            Backend::Sharded(sharded) => sharded.shard(0).engine().params(),
        }
    }

    /// Total capacity `C` (per-shard capacity × shard count on a sharded
    /// index; hash routing keeps shard occupancy within a few percent of
    /// even, so the aggregate is effectively reachable).
    pub fn capacity(&self) -> usize {
        match &self.backend {
            Backend::Single(engine) => engine.engine().capacity(),
            Backend::Sharded(sharded) => {
                sharded.shard(0).engine().capacity() * sharded.num_shards()
            }
        }
    }

    /// Number of shards (1 for a single-node index).
    pub fn num_shards(&self) -> usize {
        match &self.backend {
            Backend::Single(_) => 1,
            Backend::Sharded(sharded) => sharded.num_shards(),
        }
    }

    /// Point and memory accounting (summed across shards when sharded).
    pub fn stats(&self) -> EngineStats {
        match &self.backend {
            Backend::Single(engine) => engine.stats(),
            Backend::Sharded(sharded) => {
                let stats = sharded.stats();
                let mut agg = EngineStats {
                    total_points: 0,
                    static_points: 0,
                    delta_points: 0,
                    deleted_points: 0,
                    purged_points: 0,
                    live_points: 0,
                    retired_points: 0,
                    retired_pending_purge: 0,
                    window_lag: 0,
                    sealed_generations: 0,
                    merges: 0,
                    pending_ingest: 0,
                    static_table_bytes: 0,
                    delta_table_bytes: 0,
                    sketch_bytes: 0,
                    hyperplane_bytes: 0,
                    host_threads: plsh_parallel::affinity::host_threads(),
                    pinned_workers: plsh_parallel::pinned_worker_count(),
                };
                for e in &stats.engines {
                    agg.total_points += e.total_points;
                    agg.static_points += e.static_points;
                    agg.delta_points += e.delta_points;
                    agg.deleted_points += e.deleted_points;
                    agg.purged_points += e.purged_points;
                    agg.live_points += e.live_points;
                    agg.retired_points += e.retired_points;
                    agg.retired_pending_purge += e.retired_pending_purge;
                    agg.window_lag += e.window_lag;
                    agg.sealed_generations += e.sealed_generations;
                    agg.merges += e.merges;
                    agg.pending_ingest += e.pending_ingest;
                    agg.static_table_bytes += e.static_table_bytes;
                    agg.delta_table_bytes += e.delta_table_bytes;
                    agg.sketch_bytes += e.sketch_bytes;
                    agg.hyperplane_bytes += e.hyperplane_bytes;
                }
                agg
            }
        }
    }

    /// Shape of the currently published epoch. Sharded indexes aggregate:
    /// point counts sum across shards and `generation` is the largest
    /// per-shard epoch counter.
    pub fn epoch_info(&self) -> EpochInfo {
        match &self.backend {
            Backend::Single(engine) => engine.epoch_info(),
            Backend::Sharded(sharded) => {
                let mut agg = EpochInfo {
                    generation: 0,
                    static_points: 0,
                    sealed_generations: 0,
                    sealed_points: 0,
                    visible_points: 0,
                    static_base: 0,
                    retired_below: 0,
                };
                for i in 0..sharded.num_shards() {
                    let info = sharded.shard(i).epoch_info();
                    agg.generation = agg.generation.max(info.generation);
                    agg.static_points += info.static_points;
                    agg.sealed_generations += info.sealed_generations;
                    agg.sealed_points += info.sealed_points;
                    agg.visible_points += info.visible_points;
                    // Per-shard id spaces are disjoint; sum the retired
                    // spans so the aggregate reads as "rows compacted /
                    // retired across the cluster".
                    agg.static_base += info.static_base;
                    agg.retired_below += info.retired_below;
                }
                agg
            }
        }
    }

    /// Timings of the most recent merge. Sharded indexes aggregate the
    /// per-shard reports: point counts sum, build/publish windows take
    /// the per-shard maximum (merges overlap, so the max is the wall
    /// cost).
    pub fn last_merge(&self) -> MergeReport {
        match &self.backend {
            Backend::Single(engine) => engine.last_merge(),
            Backend::Sharded(sharded) => {
                let mut agg = MergeReport::default();
                for report in sharded.last_merges() {
                    agg.merged_points += report.merged_points;
                    agg.purged_points += report.purged_points;
                    agg.build = agg.build.max(report.build);
                    agg.publish = agg.publish.max(report.publish);
                }
                agg
            }
        }
    }

    /// The stored vector for `id` (`None` when out of range or purged).
    pub fn vector(&self, id: u32) -> Option<SparseVector> {
        match &self.backend {
            Backend::Single(engine) => engine.engine().vector(id),
            Backend::Sharded(sharded) => sharded.vector(id),
        }
    }

    /// The underlying streaming handle, for advanced drivers (firehose
    /// pumps, cluster experiments) that need the raw engine or pool.
    /// `None` when the index is sharded — use
    /// [`sharded_backend`](Index::sharded_backend) there.
    pub fn backend(&self) -> Option<&StreamingEngine> {
        match &self.backend {
            Backend::Single(engine) => Some(engine),
            Backend::Sharded(_) => None,
        }
    }

    /// The underlying sharded index, when this index was built with
    /// [`shards`](IndexBuilder::shards) / [`auto_shards`](IndexBuilder::auto_shards).
    pub fn sharded_backend(&self) -> Option<&ShardedIndex> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(sharded) => Some(sharded),
        }
    }

    // ---- Persistence ----

    /// Writes a snapshot of the index (parameters, rows, static/delta
    /// split, tombstones) to any byte sink. Safe to call while other
    /// threads keep inserting and merging. Every backend round-trips: a
    /// sharded index flattens into the same single-engine format
    /// (restoring it yields a single-node index with identical answers).
    pub fn save_to<W: Write>(&self, w: &mut W) -> Result<()> {
        Ok(self.snapshot()?.write_to(w)?)
    }

    /// Captures the index's state as an in-memory [`Snapshot`]. A sharded
    /// index drains its shard queues first, then captures every shard and
    /// flattens the corpus into global-id order
    /// ([`ShardedIndex::snapshot`]).
    pub fn snapshot(&self) -> Result<Snapshot> {
        match &self.backend {
            Backend::Single(engine) => Ok(Snapshot::capture(engine.engine())),
            Backend::Sharded(sharded) => Ok(sharded.snapshot()),
        }
    }

    /// Attaches incremental durability: writes a baseline of the current
    /// contents into `dir` (a WAL-plus-segments directory per engine —
    /// see [`plsh_core::persist`]; one `shard-<i>/` subdirectory each on
    /// a sharded index), then keeps the directory in sync from every
    /// insert, seal, delete, and merge. Recover with
    /// [`recover_from`](Index::recover_from).
    pub fn persist_to(&self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        match &self.backend {
            Backend::Single(engine) => engine.persist_to(dir),
            Backend::Sharded(sharded) => sharded.persist_to(dir).map_err(PlshError::from),
        }
    }

    /// Recovers an index from a directory written by
    /// [`persist_to`](Index::persist_to) — single-node or sharded, told
    /// apart by the manifest magic — replaying segments, then the WAL
    /// tail, then tombstones, and re-attaching persistence so the
    /// recovered index keeps journaling. The vectorizer is not part of
    /// the directory; re-attach one with
    /// [`with_vectorizer`](Index::with_vectorizer).
    pub fn recover_from(dir: impl AsRef<std::path::Path>) -> Result<Index> {
        let dir = dir.as_ref();
        let manifest = std::fs::read(dir.join("MANIFEST"))
            .map_err(|e| PlshError::Io(format!("{}: no recoverable index ({e})", dir.display())))?;
        let backend = if manifest.starts_with(b"PLSC") {
            Backend::Sharded(Arc::new(
                ShardedIndex::recover_from(dir).map_err(PlshError::from)?,
            ))
        } else {
            Backend::Single(StreamingEngine::recover_from(dir, ThreadPool::default())?)
        };
        Ok(Index {
            backend,
            vectorizer: None,
        })
    }

    fn require_vectorizer(&self) -> Result<&Vectorizer> {
        self.vectorizer.as_deref().ok_or_else(|| {
            PlshError::InvalidParams(
                "no vectorizer attached: build the index with .vectorizer(...) \
                 or call with_vectorizer(...) to use the text API"
                    .into(),
            )
        })
    }
}

/// What lets an [`Index`] sit behind the `plsh-server` wire surface —
/// every endpoint delegates to the matching inherent method, so HTTP
/// answers are byte-for-byte the in-process answers.
impl ServeBackend for Index {
    fn search(&self, req: &SearchRequest) -> Result<SearchResponse> {
        Index::search(self, req)
    }

    fn insert_batch(&self, vs: &[SparseVector]) -> Result<Vec<u32>> {
        Index::add_batch(self, vs)
    }

    fn delete(&self, id: u32) -> Result<bool> {
        Index::delete(self, id)
    }

    fn health(&self) -> plsh_core::HealthReport {
        Index::health(self)
    }

    fn stats(&self) -> EngineStats {
        Index::stats(self)
    }

    fn epoch_info(&self) -> EpochInfo {
        Index::epoch_info(self)
    }

    fn shutdown(&self, deadline: std::time::Duration) -> ShutdownReport {
        Index::shutdown(self, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plsh_text::{CorpusBuilder, Tokenizer};

    fn params(dim: u32) -> PlshParams {
        PlshParams::builder(dim)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(3)
            .build()
            .unwrap()
    }

    fn text_index() -> Index {
        let docs = [
            "storm hits the coast tonight",
            "storm hits coast tonight again",
            "sourdough bread rises slowly",
        ];
        let mut b = CorpusBuilder::new(Tokenizer::default());
        for d in docs {
            b.add_document(d);
        }
        let vectorizer = b.finish();
        let index = Index::builder(params(vectorizer.dim()))
            .capacity(64)
            .threads(1)
            .vectorizer(vectorizer)
            .build()
            .unwrap();
        for d in docs {
            index.add_text(d).unwrap();
        }
        index
    }

    #[test]
    fn add_and_search_vectors() {
        let index = Index::builder(params(32))
            .capacity(100)
            .threads(1)
            .build()
            .unwrap();
        let a = SparseVector::unit(vec![(0, 1.0), (5, 1.0)]).unwrap();
        let b = SparseVector::unit(vec![(0, 1.0), (5, 0.95)]).unwrap();
        let ids = index.add_batch(&[a.clone(), b]).unwrap();
        assert_eq!(ids, vec![0, 1]);
        let hits = index.query(&a).unwrap();
        assert!(hits.iter().any(|h| h.index == 1 && h.node == 0));
        assert_eq!(index.len(), 2);
        assert!(index.epoch_info().visible_points == 2);
    }

    #[test]
    fn text_round_trip_and_oov_error() {
        let index = text_index();
        let resp = index.search_text("storm on the coast tonight").unwrap();
        assert!(resp.hits().iter().any(|h| h.index == 0));
        assert_eq!(
            index.search_text("zzz qqq").unwrap_err(),
            PlshError::EmptyVector,
            "fully out-of-vocabulary text surfaces the core error type"
        );
        // Batch path drops OOV docs as None, parallel to the input.
        let slots = index.add_texts(["coast storm", "zzz qqq"]).unwrap();
        assert!(slots[0].is_some());
        assert!(slots[1].is_none());
    }

    #[test]
    fn text_api_without_vectorizer_errors() {
        let index = Index::builder(params(8))
            .capacity(8)
            .threads(1)
            .build()
            .unwrap();
        assert!(matches!(
            index.add_text("anything"),
            Err(PlshError::InvalidParams(_))
        ));
    }

    #[test]
    fn vectorizer_dimension_mismatch_is_rejected() {
        let mut b = CorpusBuilder::new(Tokenizer::default());
        b.add_document("one two three");
        let vectorizer = b.finish();
        let err = Index::builder(params(1000))
            .vectorizer(vectorizer)
            .build()
            .unwrap_err();
        assert!(matches!(err, PlshError::InvalidParams(_)));
    }

    #[test]
    fn snapshot_round_trip_preserves_answers() {
        let index = Index::builder(params(32))
            .capacity(100)
            .threads(1)
            .build()
            .unwrap();
        let vs: Vec<SparseVector> = (0..20)
            .map(|i| SparseVector::unit(vec![(i % 32, 1.0), ((i + 7) % 32, 0.5)]).unwrap())
            .collect();
        index.add_batch(&vs).unwrap();
        index.merge().unwrap();
        index.delete(3).unwrap();
        let mut bytes = Vec::new();
        index.save_to(&mut bytes).unwrap();
        let restored = Index::restore_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(restored.len(), index.len());
        for v in &vs {
            let mut a: Vec<u32> = index.query(v).unwrap().iter().map(|h| h.index).collect();
            let mut b: Vec<u32> = restored.query(v).unwrap().iter().map(|h| h.index).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        // Truncated snapshots surface as one error type, not a panic.
        assert!(matches!(
            Index::restore_from(&mut bytes[..10].as_ref()),
            Err(PlshError::Io(_))
        ));
    }

    #[test]
    fn sharded_index_serves_the_same_api() {
        let index = Index::builder(params(32))
            .capacity(500)
            .threads(2)
            .shards(3)
            .build()
            .unwrap();
        assert_eq!(index.num_shards(), 3);
        let vs: Vec<SparseVector> = (0..90)
            .map(|i| SparseVector::unit(vec![(i % 32, 1.0), ((i + 9) % 32, 0.6)]).unwrap())
            .collect();
        let ids = index.add_batch(&vs).unwrap();
        assert_eq!(ids, (0..90).collect::<Vec<u32>>());
        index.flush().unwrap();
        assert_eq!(index.len(), 90);
        assert_eq!(index.epoch_info().visible_points, 90);
        assert_eq!(index.capacity(), 1500);
        // Global ids round-trip through query, vector, and delete.
        let hits = index.query(&vs[5]).unwrap();
        assert!(hits.iter().any(|h| h.index == 5));
        assert_eq!(index.vector(5).as_ref(), Some(&vs[5]));
        assert!(index.delete(5).unwrap());
        assert!(index.query(&vs[5]).unwrap().iter().all(|h| h.index != 5));
        // Maintenance aggregates across shards.
        index.merge().unwrap();
        let stats = index.stats();
        assert_eq!(stats.static_points, 90);
        assert!(stats.merges >= 3, "every shard merged");
        assert!(index.last_merge().merged_points > 0);
        // Snapshots flatten the sharded corpus and restore to a
        // single-node index with identical answers.
        let mut sink = Vec::new();
        index.save_to(&mut sink).unwrap();
        let restored = Index::restore_from(&mut sink.as_slice()).unwrap();
        assert_eq!(restored.len(), 90);
        for q in vs.iter().step_by(13) {
            let mut a: Vec<u32> = index.query(q).unwrap().iter().map(|h| h.index).collect();
            let mut b: Vec<u32> = restored.query(q).unwrap().iter().map(|h| h.index).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "flattened snapshot must answer identically");
        }
        assert!(
            restored.query(&vs[5]).unwrap().iter().all(|h| h.index != 5),
            "tombstones survive the flattened round-trip"
        );
        assert!(index.backend().is_none());
        assert!(index.sharded_backend().is_some());
    }

    #[test]
    fn sharded_and_single_agree_on_answers() {
        let vs: Vec<SparseVector> = (0..120)
            .map(|i| SparseVector::unit(vec![(i % 32, 1.0), ((i + 7) % 32, 0.4)]).unwrap())
            .collect();
        let single = Index::builder(params(32))
            .capacity(200)
            .threads(1)
            .build()
            .unwrap();
        single.add_batch(&vs).unwrap();
        let sharded = Index::builder(params(32))
            .capacity(200)
            .threads(2)
            .shards(4)
            .build()
            .unwrap();
        sharded.add_batch(&vs).unwrap();
        sharded.flush().unwrap();
        for q in vs.iter().step_by(11) {
            let mut a: Vec<u32> = single.query(q).unwrap().iter().map(|h| h.index).collect();
            let mut b: Vec<u32> = sharded.query(q).unwrap().iter().map(|h| h.index).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn clones_share_state_and_flush_waits() {
        let index = Index::builder(params(32))
            .capacity(1000)
            .threads(2)
            .eta(0.05)
            .build()
            .unwrap();
        let other = index.clone();
        let vs: Vec<SparseVector> = (0..200)
            .map(|i| SparseVector::unit(vec![(i % 32, 1.0), ((i + 5) % 32, 0.7)]).unwrap())
            .collect();
        index.add_batch(&vs).unwrap();
        other.flush().unwrap();
        assert_eq!(other.len(), 200);
        assert!(
            other.stats().merges >= 1,
            "background merge must have fired"
        );
        let hits = other.query(&vs[0]).unwrap();
        assert!(hits.iter().any(|h| h.index == 0));
    }
}
