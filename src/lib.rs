//! # PLSH — Parallel Locality-Sensitive Hashing
//!
//! A Rust reproduction of *"Streaming Similarity Search over one Billion
//! Tweets using Parallel Locality-Sensitive Hashing"* (Sundaram et al.,
//! VLDB 2013).
//!
//! ## Quickstart
//!
//! Everything goes through one client, [`Index`], and one typed request,
//! [`SearchRequest`] — no thread-pool wiring, no method zoo:
//!
//! ```
//! use plsh::{Index, PlshParams, SearchRequest, SparseVector};
//!
//! // Three tiny "documents" as sparse unit vectors in an 8-dim space.
//! let docs = vec![
//!     SparseVector::unit(vec![(0, 1.0), (1, 1.0)])?,
//!     SparseVector::unit(vec![(0, 1.0), (1, 0.9)])?,
//!     SparseVector::unit(vec![(6, 1.0), (7, 1.0)])?,
//! ];
//! let params = PlshParams::builder(8).k(4).m(4).radius(0.9).seed(7).build()?;
//! let index = Index::builder(params).capacity(16).build()?;
//! index.add_batch(&docs)?;
//!
//! // Radius search (the paper's query): everything within R.
//! let near = index.search(&SearchRequest::query(docs[0].clone()))?;
//! assert!(near.hits().iter().any(|h| h.index == 1), "near-duplicate found");
//!
//! // The same door answers k-NN, batches, per-request overrides, stats:
//! let resp = index.search(
//!     &SearchRequest::batch(docs.clone()).top_k(2).with_stats(),
//! )?;
//! assert_eq!(resp.results.len(), 3);
//! assert!(resp.stats.unwrap().totals.distance_computations > 0);
//! # Ok::<(), plsh::Error>(())
//! ```
//!
//! For the tweet scenario, attach a [`text`] pipeline and use
//! [`Index::add_text`] / [`Index::search_text`]. To scale across cores,
//! add [`IndexBuilder::shards`] (or
//! [`auto_shards`](IndexBuilder::auto_shards) for the model-driven count)
//! and the same calls fan out over a [`ShardedIndex`] — hash-routed
//! ingest, per-shard background merges, bit-identical answers. The
//! windowed multi-node simulation `cluster::Cluster` answers the *same*
//! [`SearchRequest`] through the shared [`SearchBackend`] trait.
//!
//! ## Workspace layout
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`core`] — the PLSH algorithm: all-pairs hashing, cache-conscious
//!   static tables, streaming delta tables, the unified search API,
//!   parameter selection and the analytic performance model.
//! * [`parallel`] — the work-stealing task pool used by every component.
//! * [`text`] — tokenization, vocabulary and IDF vectorization of documents.
//! * [`workload`] — synthetic tweet-like corpora and query/ground-truth
//!   generators used by the evaluation.
//! * [`baselines`] — exhaustive-scan and inverted-index baselines
//!   (Table 2 of the paper).
//! * [`cluster`] — the shard-per-core [`ShardedIndex`] scaling backend,
//!   plus the multi-node coordinator / rolling-insert-window simulation
//!   (Figures 1 and 9).
//! * [`server`] — the HTTP/1.1 wire surface ([`Index::serve`]): search /
//!   ingest / delete / healthz / metrics endpoints, load shedding, and
//!   graceful drain.

mod index;

pub use index::{Index, IndexBuilder};

// The scaling backend behind `IndexBuilder::shards`.
pub use plsh_cluster::{ShardedIndex, ShardedIndexBuilder, ShardedStats};

// The wire surface behind `Index::serve`.
pub use plsh_server::{ServeBackend, Server, ServerConfig};

// The unified search surface and the types requests/responses carry.
pub use plsh_core::search::{SearchBackend, SearchHit, SearchMode, SearchRequest, SearchResponse};
pub use plsh_core::{
    BatchStats, EpochInfo, HealthReport, Neighbor, PlshParams, QueryPhaseTimings, QueryStats,
    QueryStrategy, ShutdownReport, Snapshot, SparseVector, WindowSpec, WorkerHealth,
};

/// The one error type every `plsh` operation returns — configuration,
/// ingest, search, text, cluster, and snapshot errors all convert into it.
pub use plsh_core::PlshError as Error;

/// Convenience alias used across the facade.
pub type Result<T> = std::result::Result<T, Error>;

pub use plsh_baselines as baselines;
pub use plsh_cluster as cluster;
pub use plsh_core as core;
pub use plsh_parallel as parallel;
pub use plsh_server as server;
pub use plsh_text as text;
pub use plsh_workload as workload;
