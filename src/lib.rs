//! # PLSH — Parallel Locality-Sensitive Hashing
//!
//! A Rust reproduction of *"Streaming Similarity Search over one Billion
//! Tweets using Parallel Locality-Sensitive Hashing"* (Sundaram et al.,
//! VLDB 2013).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`core`] — the PLSH algorithm: all-pairs hashing, cache-conscious
//!   static tables, streaming delta tables, parameter selection and the
//!   analytic performance model.
//! * [`parallel`] — the work-stealing task pool used by every component.
//! * [`text`] — tokenization, vocabulary and IDF vectorization of documents.
//! * [`workload`] — synthetic tweet-like corpora and query/ground-truth
//!   generators used by the evaluation.
//! * [`baselines`] — exhaustive-scan and inverted-index baselines
//!   (Table 2 of the paper).
//! * [`cluster`] — the multi-node coordinator / rolling-insert-window
//!   simulation (Figures 1 and 9).
//!
//! ## Quickstart
//!
//! ```
//! use plsh::core::{Engine, EngineConfig, PlshParams, SparseVector};
//! use plsh::parallel::ThreadPool;
//!
//! // Three tiny "documents" as sparse unit vectors in a 8-dim space.
//! let docs = vec![
//!     SparseVector::unit(vec![(0, 1.0), (1, 1.0)]).unwrap(),
//!     SparseVector::unit(vec![(0, 1.0), (1, 0.9)]).unwrap(),
//!     SparseVector::unit(vec![(6, 1.0), (7, 1.0)]).unwrap(),
//! ];
//! let params = PlshParams::builder(8)
//!     .k(4)
//!     .m(4)
//!     .radius(0.9)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let pool = ThreadPool::new(1);
//! let engine = Engine::new(EngineConfig::new(params, 16), &pool).unwrap();
//! engine.extend(docs.iter().cloned(), &pool).unwrap();
//! engine.merge_delta(&pool);
//!
//! let hits = engine.query(&docs[0]);
//! assert!(hits.iter().any(|h| h.index == 1), "near-duplicate should be found");
//! ```

pub use plsh_baselines as baselines;
pub use plsh_cluster as cluster;
pub use plsh_core as core;
pub use plsh_parallel as parallel;
pub use plsh_text as text;
pub use plsh_workload as workload;
