//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal substitute (see `vendor/README.md`). The
//! API mirrors the subset of `parking_lot` the workspace uses: a `Mutex`
//! whose `lock()` returns the guard directly (poisoning is ignored, which
//! matches `parking_lot` semantics closely enough for our uses) and an
//! `RwLock` with the same shape.

use std::sync::TryLockError;

/// A mutual-exclusion lock with `parking_lot`'s panic-tolerant API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic in another thread while holding the lock does
    /// not poison it for later users — `parking_lot` behaviour.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-tolerant API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
