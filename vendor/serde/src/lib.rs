//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal substitute (see `vendor/README.md`). The
//! codebase uses serde only for `#[derive(serde::Serialize)]`-style
//! annotations on metrics/config structs; no serializer is ever invoked.
//! This crate therefore provides just marker traits and the derive macro
//! re-exports, keeping the annotations compiling until the real `serde`
//! can be dropped in (the API subset used is identical).

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
