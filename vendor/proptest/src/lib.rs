//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal substitute (see `vendor/README.md`). It
//! implements the subset of the proptest API this workspace's property
//! suites use — integer/float range strategies, a regex-subset string
//! strategy, `collection::{vec, btree_map}`, `prop_map`, tuples,
//! `prop_oneof!`, `Just`, `any::<T>()`, `prop::sample::Index`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros — with one
//! deliberate difference: generation is **fully deterministic**. Each test
//! case's RNG is seeded from the test name and case index (overridable via
//! `PLSH_PROPTEST_SEED`), so a failure reproduces exactly on every run and
//! machine. There is no shrinking; failures report the case number and
//! seed instead.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded rejection is overkill for tests; a simple
        // widening multiply keeps the distribution close enough to uniform.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no shrink tree; a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?}: no value satisfied the predicate in 1000 draws",
            self.whence
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = hi as i128 - lo as i128 + 1;
                // A full-domain 64-bit range has span 2^64, which doesn't
                // fit in u64; sample the raw generator instead.
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.next_below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// `&str` literals act as regex strategies, as in real proptest. Supported
/// subset: concatenations of `.`, `[...]` character classes (ranges and
/// literal characters; no negation), and literal characters, each followed
/// by an optional `{m}` / `{m,n}` / `*` / `+` / `?` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = *lo as u64 + rng.next_below((*hi - *lo + 1) as u64);
            for _ in 0..n {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any char except newline (sampled from a printable mix plus a
    /// pinch of non-ASCII to exercise unicode handling).
    AnyChar,
    /// `[...]` or a literal character.
    OneOf(Vec<(char, char)>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::AnyChar => {
                // Mostly printable ASCII, occasionally unicode letters.
                match rng.next_below(20) {
                    0 => ['é', 'ß', '中', 'λ', 'Ж', '🦀'][rng.next_below(6) as usize],
                    _ => (0x20u8 + rng.next_below(0x5f) as u8) as char,
                }
            }
            Atom::OneOf(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u64 - *a as u64) + 1)
                    .sum();
                let mut pick = rng.next_below(total);
                for (a, b) in ranges {
                    let span = *b as u64 - *a as u64 + 1;
                    if pick < span {
                        return char::from_u32(*a as u32 + pick as u32).unwrap_or(*a);
                    }
                    pick -= span;
                }
                unreachable!()
            }
        }
    }
}

/// Parses the supported regex subset into `(atom, min, max)` repetitions.
fn parse_regex(pattern: &str) -> Vec<(Atom, u32, u32)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // consume ']'
                Atom::OneOf(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::OneOf(vec![(c, c)])
            }
            c => {
                i += 1;
                Atom::OneOf(vec![(c, c)])
            }
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .expect("unterminated {} repetition");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repetition lower bound"),
                            hi.trim().parse().expect("bad repetition upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push((atom, lo, hi));
    }
    out
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical generation strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        Atom::AnyChar.sample(rng)
    }
}

// ---------------------------------------------------------------------------
// sample (prop::sample::Index)
// ---------------------------------------------------------------------------

pub mod sample {
    //! Index sampling, mirroring `proptest::sample`.

    use super::{Arbitrary, TestRng};

    /// An abstract index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `size` elements.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with distinct keys.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates maps with keys from `key` and values from `value`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeMap::new();
            // Duplicate key draws shrink the map, like real proptest; a few
            // extra attempts keep the size distribution close to `target`.
            let mut attempts = 0;
            while out.len() < target && attempts < 4 * target + 16 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// An inclusive-exclusive size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi_exclusive, "empty size range");
        self.lo + rng.next_below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Weighted unions (prop_oneof!)
// ---------------------------------------------------------------------------

/// Weighted choice among boxed strategies; the expansion of `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new(variants: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        assert!(
            variants.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Self { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_below(total);
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

/// Boxes a strategy with its weight, with the union's value type inferred
/// at the call site (used by `prop_oneof!`).
pub fn boxed_weighted<T, S>(weight: u32, strategy: S) -> (u32, Box<dyn Strategy<Value = T>>)
where
    S: Strategy<Value = T> + 'static,
{
    (weight, Box::new(strategy))
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration; only `cases` matters to this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed or rejected test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failure — fails the property.
    Fail(String),
    /// A rejected case (`prop_assume!`) — discarded and redrawn.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected case; the runner discards it and draws a fresh one.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => f.write_str(m),
            Self::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// FNV-1a, used to give every property its own deterministic seed stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives one property: `cases` deterministic accepted executions of `f`.
///
/// The per-case seed is `hash(test name) + case`, XORed with
/// `PLSH_PROPTEST_SEED` when that environment variable is set, so a suite
/// can be re-run under a different (still deterministic) stream without
/// recompiling. `prop_assume!` rejections are discarded and redrawn (up
/// to a global cap, like real proptest) rather than failing the property.
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name)
        ^ std::env::var("PLSH_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
    let max_rejects = 16 * config.cases.max(1) as u64;
    let mut rejects = 0u64;
    let mut accepted = 0u32;
    let mut draw = 0u64;
    while accepted < config.cases {
        let seed = base.wrapping_add(draw.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        draw += 1;
        let mut rng = TestRng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(why))) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "property {name}: too many rejected cases ({rejects}, last: {why}); \
                         weaken the prop_assume! or strengthen the strategy"
                    );
                }
            }
            Ok(Err(e @ TestCaseError::Fail(_))) => panic!(
                "property {name} failed at case {accepted}/{} (seed {seed:#x}): {e}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "property {name} panicked at case {accepted}/{} (seed {seed:#x})",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; supports the subset of real proptest syntax
/// used in this workspace (an optional leading `#![proptest_config(..)]`
/// followed by `#[test] fn name(arg in strategy, ...) { .. }` items).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item-by-item expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_proptest(stringify!($name), &config, |__plsh_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __plsh_rng);)*
                let mut __plsh_case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __plsh_case()
            });
        }
        $crate::__proptest_items! { @config ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    // The no-message arm must not round-trip stringify!($cond) through
    // format!: a condition containing braces would be parsed as a format
    // string.
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Weighted choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_weighted($weight, $strategy)),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_weighted(1, $strategy)),+])
    };
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    pub mod prop {
        //! Mirrors the `prop::` module alias available in real proptest's
        //! prelude (`prop::sample::Index` et al.).
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_same_name_same_values() {
        let s = crate::collection::vec(0u32..100, 1..10);
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-z ]{1,40}".generate(&mut rng);
            assert!((1..=40).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            let t = "[a-zA-Z ,.!0-9]{0,20}".generate(&mut rng);
            assert!(t.chars().count() <= 20);
            let dot = ".{0,200}".generate(&mut rng);
            assert!(dot.chars().count() <= 200);
        }
    }

    #[test]
    fn btree_map_respects_bounds_and_key_types() {
        let mut rng = crate::TestRng::new(11);
        for _ in 0..100 {
            let m = crate::collection::btree_map(0u32..48, 1u32..100, 1..6).generate(&mut rng);
            assert!((1..6).contains(&m.len()));
            assert!(m.keys().all(|&k| k < 48));
        }
    }

    #[test]
    fn union_draws_all_positive_weight_variants() {
        let s = prop_oneof![4 => Just(1u8), 1 => Just(2u8)];
        let mut rng = crate::TestRng::new(1);
        let draws: Vec<u8> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }

    #[test]
    fn full_domain_inclusive_range_samples_whole_space() {
        let mut rng = crate::TestRng::new(5);
        let mut any_high = false;
        for _ in 0..100 {
            let v = (0u64..=u64::MAX).generate(&mut rng);
            any_high |= v > u64::MAX / 2;
        }
        assert!(any_high, "full-domain range never left the low half");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(a in 0u32..50, b in 0u32..50) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_discards_instead_of_failing(a in 0u32..4) {
            // Rejects ~25% of draws; must still complete 16 accepted cases.
            prop_assume!(a != 0);
            prop_assert!(a > 0);
        }
    }
}
