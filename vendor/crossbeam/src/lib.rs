//! Offline stand-in for `crossbeam`, backed entirely by `std`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal substitute (see `vendor/README.md`). It
//! mirrors the API subset the workspace uses:
//!
//! * [`deque`] — `Worker` / `Stealer` / `Steal` work-stealing deques
//!   (implemented with a mutex-protected `VecDeque`; correct, though
//!   without the lock-free fast path of the real crate).
//! * [`thread`] — `thread::scope` with crossbeam's `Result`-returning,
//!   scope-argument-passing signature, layered over `std::thread::scope`.
//! * [`channel`] — `bounded` MPMC-ish channels over `std::sync::mpsc`
//!   (single consumer, which is all the workspace needs).

pub mod deque {
    //! Work-stealing deques, API-compatible with `crossbeam::deque` for the
    //! subset used here: LIFO worker queues plus stealers.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Owner side of a work-stealing deque.
    #[derive(Debug)]
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Stealing side of a work-stealing deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The deque was empty.
        Empty,
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker deque (`push`/`pop` act on the same end).
        pub fn new_lifo() -> Self {
            Self {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        // Real crossbeam also offers `new_fifo()`; this stand-in omits it
        // so a future caller gets a compile error instead of silently
        // LIFO-ordered pops.

        /// Adds a task to the local deque.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Takes a task from the local (LIFO) end.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_back()
        }

        /// Whether the deque currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Creates a stealer handle for other workers.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one task from the opposite (FIFO) end.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the deque currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's signature: the closure receives the
    //! scope (so spawned threads can spawn more), and the outer call
    //! returns `Err` instead of unwinding when anything in the scope
    //! panics.
    //!
    //! Divergences from real crossbeam, acceptable for this workspace
    //! (every caller just `.expect()`s the result): the `Err` payload is
    //! `std::thread::scope`'s generic "a scoped thread panicked" message,
    //! not the child's own panic payload, and a panic in the caller's
    //! main closure also becomes `Err` (real crossbeam propagates it).

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scoped-thread batch: `Err` means something in the
    /// scope panicked (see the module docs for payload caveats).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again,
        /// crossbeam-style, so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// blocks until all spawned threads finish. A child panic is reported
    /// as `Err` rather than unwinding through the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    //! Bounded channels over `std::sync::mpsc::sync_channel`.

    use std::sync::mpsc;

    /// Sending side of a bounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving side of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned by [`Receiver::recv`] when all senders are gone.
    pub type RecvError = mpsc::RecvError;

    /// Creates a channel that holds at most `cap` in-flight messages
    /// (`cap == 0` is a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Receives without blocking, if a message is ready.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates until the channel closes.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn deque_push_pop_lifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn scope_joins_and_propagates_result() {
        let counter = AtomicUsize::new(0);
        let r = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            7
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn bounded_channel_delivers_in_order() {
        let (tx, rx) = super::channel::bounded(2);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rx.recv().is_err());
    }
}
