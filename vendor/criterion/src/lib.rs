//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal substitute (see `vendor/README.md`). It
//! exposes the API subset the bench targets use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_with_setup, iter_batched}`,
//! `BenchmarkId`, `Throughput`, `BatchSize` — and measures each benchmark
//! with a short fixed-iteration wall-clock loop, printing mean time per
//! iteration. No statistics, no HTML reports; swap in the real crate for
//! publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many timed iterations each benchmark runs (after one warm-up).
/// Overridable via `PLSH_BENCH_ITERS`.
fn iters() -> u64 {
    std::env::var("PLSH_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        let _ = self;
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in always runs a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the per-iteration workload size (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.as_ref()), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iterations: iters(),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iterations > 0 {
        b.elapsed / b.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<50} {per_iter:>12.2?}/iter ({} iters)",
        b.iterations
    );
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine`, excluding per-iteration `setup`.
    pub fn iter_with_setup<S, R, FS, FR>(&mut self, mut setup: FS, mut routine: FR)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Times `routine` over batched inputs, excluding `setup`.
    pub fn iter_batched<S, R, FS, FR>(&mut self, setup: FS, routine: FR, _size: BatchSize)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> R,
    {
        self.iter_with_setup(setup, routine);
    }

    /// Like [`iter_batched`](Self::iter_batched) but hands the routine a
    /// mutable reference to the setup value.
    pub fn iter_batched_ref<S, R, FS, FR>(
        &mut self,
        mut setup: FS,
        mut routine: FR,
        _size: BatchSize,
    ) where
        FS: FnMut() -> S,
        FR: FnMut(&mut S) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id like `"name/param"`.
    pub fn new(name: impl AsRef<str>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.as_ref(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Workload size declaration; accepted and ignored by the stand-in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`; ignored by the stand-in.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup every iteration.
    PerIteration,
}

/// Opaque-value hint, re-exported for compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // one warm-up + iters() timed calls
        assert_eq!(calls, iters() + 1);
    }

    #[test]
    fn group_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut setups = 0u64;
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, iters());
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("build", 4).0, "build/4");
        assert_eq!(BenchmarkId::from_parameter(10).0, "10");
    }
}
