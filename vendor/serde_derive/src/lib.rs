//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal substitute (see `vendor/README.md`). The
//! codebase only *annotates* types with `#[derive(serde::Serialize)]` /
//! `#[derive(serde::Deserialize)]` — nothing calls a serializer — so the
//! derive macros here accept the input and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
