//! JSON ⇄ PLSH wire types.
//!
//! The wire schema (documented per-endpoint in the README):
//!
//! * Sparse vectors are `[[dim, weight], ...]` pair lists. Weights pass
//!   through bit-exactly — Rust prints the shortest round-trippable float,
//!   so an already-unit vector survives HTTP unchanged and a served answer
//!   can be compared hit-for-hit against an in-process run. Clients with
//!   raw term weights set `"normalize": true` to have the server scale to
//!   unit length.
//! * `/search` bodies: `{"queries": [vec, ...]}` plus optional `top_k`
//!   (k-NN mode; absent = the paper's radius mode), `radius`,
//!   `max_candidates`, `shard_deadline_ms`, `normalize`.
//! * `/ingest` bodies: `{"vectors": [vec, ...]}` (+ `normalize`);
//!   `/delete` bodies: `{"id": n}`.
//!
//! Decoding errors are [`WireError`]s carrying the HTTP status they map
//! to — always a 4xx; 5xx mapping happens in the server from backend
//! errors.

use crate::json::Json;
use plsh_core::health::HealthReport;
use plsh_core::search::{SearchRequest, SearchResponse};
use plsh_core::sparse::SparseVector;
use plsh_core::PlshError;
use std::time::Duration;

/// A request body the wire layer refused, with the status to answer.
#[derive(Debug)]
pub struct WireError {
    pub status: u16,
    pub message: String,
}

impl WireError {
    fn bad(msg: impl Into<String>) -> WireError {
        WireError {
            status: 400,
            message: msg.into(),
        }
    }
}

/// Caps a `/search` body; a batch bigger than this sheds as a 400 rather
/// than monopolizing the handler thread.
pub const MAX_QUERIES_PER_REQUEST: usize = 1024;

/// Caps an `/ingest` body for the same reason.
pub const MAX_VECTORS_PER_INGEST: usize = 4096;

fn parse_vector(v: &Json, normalize: bool) -> Result<SparseVector, WireError> {
    let pairs = v
        .as_arr()
        .ok_or_else(|| WireError::bad("vector must be an array of [dim, weight] pairs"))?;
    let mut out = Vec::with_capacity(pairs.len());
    for pair in pairs {
        let p = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| WireError::bad("vector entry must be a [dim, weight] pair"))?;
        let dim = p[0]
            .as_u64()
            .filter(|&d| d <= u32::MAX as u64)
            .ok_or_else(|| WireError::bad("vector dimension must be a u32"))?;
        let weight = p[1]
            .as_f64()
            .ok_or_else(|| WireError::bad("vector weight must be a number"))?;
        out.push((dim as u32, weight as f32));
    }
    let build = if normalize {
        SparseVector::unit(out)
    } else {
        SparseVector::new(out)
    };
    build.map_err(|e| WireError::bad(format!("invalid vector: {e}")))
}

fn parse_vector_list(body: &Json, key: &str, cap: usize) -> Result<Vec<SparseVector>, WireError> {
    let normalize = body
        .get("normalize")
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| WireError::bad("normalize must be a bool"))
        })
        .transpose()?
        .unwrap_or(false);
    let list = body
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| WireError::bad(format!("missing '{key}' array")))?;
    if list.is_empty() {
        return Err(WireError::bad(format!("'{key}' must not be empty")));
    }
    if list.len() > cap {
        return Err(WireError::bad(format!(
            "'{key}' holds {} vectors; cap is {cap}",
            list.len()
        )));
    }
    list.iter().map(|v| parse_vector(v, normalize)).collect()
}

/// Decode a `/search` body into a [`SearchRequest`].
pub fn parse_search(body: &Json) -> Result<SearchRequest, WireError> {
    let queries = parse_vector_list(body, "queries", MAX_QUERIES_PER_REQUEST)?;
    let mut req = SearchRequest::batch(queries);
    if let Some(k) = body.get("top_k") {
        let k = k
            .as_u64()
            .filter(|&k| k >= 1)
            .ok_or_else(|| WireError::bad("top_k must be a positive integer"))?;
        req = req.top_k(k as usize);
    }
    if let Some(r) = body.get("radius") {
        let r = r
            .as_f64()
            .filter(|r| r.is_finite() && *r > 0.0)
            .ok_or_else(|| WireError::bad("radius must be a positive number"))?;
        req = req.with_radius(r as f32);
    }
    if let Some(b) = body.get("max_candidates") {
        let b = b
            .as_u64()
            .filter(|&b| b >= 1)
            .ok_or_else(|| WireError::bad("max_candidates must be a positive integer"))?;
        req = req.with_max_candidates(b as usize);
    }
    if let Some(d) = body.get("shard_deadline_ms") {
        let d = d
            .as_u64()
            .filter(|&d| d >= 1)
            .ok_or_else(|| WireError::bad("shard_deadline_ms must be a positive integer"))?;
        req = req.with_shard_deadline(Duration::from_millis(d));
    }
    Ok(req)
}

/// Decode an `/ingest` body into the batch to insert.
pub fn parse_ingest(body: &Json) -> Result<Vec<SparseVector>, WireError> {
    parse_vector_list(body, "vectors", MAX_VECTORS_PER_INGEST)
}

/// Decode a `/delete` body into the point id to tombstone.
pub fn parse_delete(body: &Json) -> Result<u32, WireError> {
    body.get("id")
        .and_then(Json::as_u64)
        .filter(|&id| id <= u32::MAX as u64)
        .ok_or_else(|| WireError::bad("missing or invalid 'id'"))
        .map(|id| id as u32)
}

/// Encode a [`SearchResponse`]: per-query hit lists, the timed-out shard
/// set (empty = complete answer), and the pinned epoch's generation.
pub fn encode_search_response(resp: &SearchResponse) -> Json {
    let results = Json::Arr(
        resp.results
            .iter()
            .map(|hits| {
                Json::Arr(
                    hits.iter()
                        .map(|h| {
                            Json::obj(vec![
                                ("node", Json::Num(h.node as f64)),
                                ("index", Json::Num(h.index as f64)),
                                ("distance", Json::Num(h.distance as f64)),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    let timed_out = Json::Arr(
        resp.timed_out_shards
            .iter()
            .map(|&s| Json::Num(s as f64))
            .collect(),
    );
    Json::obj(vec![
        ("results", results),
        ("timed_out_shards", timed_out),
        (
            "epoch_generation",
            resp.epoch
                .as_ref()
                .map_or(Json::Null, |e| Json::Num(e.generation as f64)),
        ),
    ])
}

/// Encode a [`HealthReport`] — `/healthz`'s body, 200 or 503.
pub fn encode_health(report: &HealthReport) -> Json {
    let workers = Json::Arr(
        report
            .workers
            .iter()
            .map(|w| {
                Json::obj(vec![
                    ("name", Json::Str(w.name.clone())),
                    ("alive", Json::Bool(w.alive)),
                    ("restarts", Json::Num(w.restarts as f64)),
                    (
                        "last_panic",
                        w.last_panic
                            .as_ref()
                            .map_or(Json::Null, |p| Json::Str(p.clone())),
                    ),
                    (
                        "pinned_core",
                        w.pinned_core.map_or(Json::Null, |c| Json::Num(c as f64)),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("healthy", Json::Bool(report.healthy())),
        ("degraded", Json::Bool(report.degraded)),
        (
            "degraded_reason",
            report
                .degraded_reason
                .as_ref()
                .map_or(Json::Null, |r| Json::Str(r.clone())),
        ),
        ("wal_lag_rows", Json::Num(report.wal_lag_rows as f64)),
        ("persist_retries", Json::Num(report.persist_retries as f64)),
        ("pending_ingest", Json::Num(report.pending_ingest as f64)),
        ("merge_backlog", Json::Num(report.merge_backlog as f64)),
        ("live_points", Json::Num(report.live_points as f64)),
        (
            "retired_pending_purge",
            Json::Num(report.retired_pending_purge as f64),
        ),
        ("window_lag", Json::Num(report.window_lag as f64)),
        ("workers", workers),
    ])
}

/// Map a backend [`PlshError`] to the status a client should see:
/// degraded/capacity pressure is 503 (retryable), everything else the
/// client sent is 400.
pub fn backend_error_status(err: &PlshError) -> u16 {
    match err {
        PlshError::Degraded(_) | PlshError::CapacityExceeded { .. } => 503,
        PlshError::Io(_) => 500,
        _ => 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn search_round_trip_builds_request() {
        let body = json::parse(
            r#"{"queries": [[[0, 0.6], [7, 0.8]]], "top_k": 3, "max_candidates": 100, "shard_deadline_ms": 50}"#,
        )
        .unwrap();
        let req = parse_search(&body).unwrap();
        assert_eq!(req.queries().len(), 1);
        assert_eq!(req.queries()[0].indices(), &[0, 7]);
        assert_eq!(req.max_candidates(), Some(100));
        assert_eq!(req.shard_deadline(), Some(Duration::from_millis(50)));
    }

    #[test]
    fn normalize_flag_scales_to_unit() {
        let body =
            json::parse(r#"{"queries": [[[0, 3.0], [1, 4.0]]], "normalize": true}"#).unwrap();
        let req = parse_search(&body).unwrap();
        let norm = req.queries()[0].norm();
        assert!((norm - 1.0).abs() < 1e-6, "norm {norm}");
    }

    #[test]
    fn rejects_malformed_bodies() {
        for text in [
            r#"{}"#,
            r#"{"queries": []}"#,
            r#"{"queries": [[[0]]]}"#,
            r#"{"queries": [[[0, 1.0]]], "top_k": 0}"#,
            r#"{"queries": [[[0, 1.0]]], "radius": -1}"#,
            r#"{"queries": "nope"}"#,
        ] {
            let body = json::parse(text).unwrap();
            let err = parse_search(&body).unwrap_err();
            assert_eq!(err.status, 400, "{text}");
        }
    }

    #[test]
    fn delete_parses_id() {
        let body = json::parse(r#"{"id": 42}"#).unwrap();
        assert_eq!(parse_delete(&body).unwrap(), 42);
        let bad = json::parse(r#"{"id": -1}"#).unwrap();
        assert!(parse_delete(&bad).is_err());
    }

    #[test]
    fn health_encoding_has_degraded_and_backlog() {
        let report = HealthReport {
            degraded: true,
            degraded_reason: Some("disk".into()),
            wal_lag_rows: 3,
            persist_retries: 1,
            pending_ingest: 7,
            merge_backlog: 2,
            live_points: 40,
            retired_pending_purge: 5,
            window_lag: 1,
            workers: vec![],
        };
        let j = encode_health(&report);
        assert_eq!(j.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("merge_backlog").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("pending_ingest").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("live_points").and_then(Json::as_u64), Some(40));
        assert_eq!(
            j.get("retired_pending_purge").and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(j.get("window_lag").and_then(Json::as_u64), Some(1));
    }
}
