//! Server-side request telemetry behind `GET /metrics`.
//!
//! Everything is lock-free atomics so the hot path costs a handful of
//! relaxed increments: per-status counters, a shed counter, a live queue
//! depth gauge, a log2-bucketed latency histogram for p50/p99, and a
//! 16-slot per-second ring for a trailing-10s qps estimate. Backend-side
//! gauges (epoch generation, merge backlog, worker restarts) are *not*
//! stored here — the `/metrics` handler reads them live off the index so
//! they can never go stale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// log2(µs) buckets; bucket 40 covers ~18 minutes, far past any deadline.
const HIST_BUCKETS: usize = 40;

/// Ring slots for the qps window. Only the trailing [`QPS_WINDOW_SECS`]
/// complete seconds are summed; extra slots absorb scrape/record races.
const RING_SLOTS: usize = 16;
const QPS_WINDOW_SECS: u64 = 10;

/// Shared, append-only request telemetry. One instance per server.
pub struct Metrics {
    start: Instant,
    requests_total: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    shed_total: AtomicU64,
    queue_depth: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
    ring_second: [AtomicU64; RING_SLOTS],
    ring_count: [AtomicU64; RING_SLOTS],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            requests_total: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
            ring_second: std::array::from_fn(|_| AtomicU64::new(0)),
            ring_count: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one answered request (any status) and its wall latency.
    pub fn record(&self, status: u16, latency: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        match status {
            400..=499 => {
                self.responses_4xx.fetch_add(1, Ordering::Relaxed);
            }
            500..=599 => {
                self.responses_5xx.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.hist[Self::bucket(latency)].fetch_add(1, Ordering::Relaxed);

        // Per-second ring: claim the slot for the current second, resetting
        // it if it still holds an older second's count. The CAS race on
        // rollover can drop a handful of counts; qps is an estimate.
        let sec = self.start.elapsed().as_secs();
        let slot = (sec % RING_SLOTS as u64) as usize;
        let stored = self.ring_second[slot].load(Ordering::Relaxed);
        if stored != sec
            && self.ring_second[slot]
                .compare_exchange(stored, sec, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.ring_count[slot].store(0, Ordering::Relaxed);
        }
        self.ring_count[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request rejected by load shedding (429/503 + Retry-After).
    /// The shed response itself is also `record`ed by the caller.
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn queue_entered(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub fn queue_left(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn bucket(latency: Duration) -> usize {
        let us = latency.as_micros().max(1) as u64;
        ((63 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Upper bound (ms) of the histogram bucket holding the `pct`-th
    /// percentile request, or 0 when nothing has been recorded.
    pub fn percentile_ms(&self, pct: f64) -> f64 {
        let counts: Vec<u64> = self
            .hist
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((pct / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return 2f64.powi(i as i32 + 1) / 1000.0;
            }
        }
        2f64.powi(HIST_BUCKETS as i32) / 1000.0
    }

    /// Requests per second over the trailing complete window.
    pub fn qps(&self) -> f64 {
        let now = self.start.elapsed().as_secs();
        // Skip the in-progress second; average over up to the previous 10.
        let window_end = now; // exclusive
        let window_start = window_end.saturating_sub(QPS_WINDOW_SECS);
        let mut sum = 0u64;
        for slot in 0..RING_SLOTS {
            let sec = self.ring_second[slot].load(Ordering::Relaxed);
            if sec >= window_start && sec < window_end {
                sum += self.ring_count[slot].load(Ordering::Relaxed);
            }
        }
        let elapsed = window_end.clamp(1, QPS_WINDOW_SECS);
        sum as f64 / elapsed as f64
    }

    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    pub fn responses_4xx(&self) -> u64 {
        self.responses_4xx.load(Ordering::Relaxed)
    }

    pub fn responses_5xx(&self) -> u64 {
        self.responses_5xx.load(Ordering::Relaxed)
    }

    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_recorded_latencies() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record(200, Duration::from_micros(100)); // bucket ~128µs
        }
        m.record(200, Duration::from_millis(50)); // far tail
        let p50 = m.percentile_ms(50.0);
        let p99 = m.percentile_ms(99.0);
        assert!(p50 <= 0.256, "p50 {p50}");
        assert!(
            p99 <= 0.256,
            "p99 {p99} should still sit in the fast bucket"
        );
        let p100 = m.percentile_ms(100.0);
        assert!(p100 >= 50.0, "p100 {p100} must reach the tail bucket");
    }

    #[test]
    fn status_classes_are_counted() {
        let m = Metrics::new();
        m.record(200, Duration::from_micros(10));
        m.record(404, Duration::from_micros(10));
        m.record(500, Duration::from_micros(10));
        m.record_shed();
        assert_eq!(m.requests_total(), 3);
        assert_eq!(m.responses_4xx(), 1);
        assert_eq!(m.responses_5xx(), 1);
        assert_eq!(m.shed_total(), 1);
    }

    #[test]
    fn queue_depth_gauges() {
        let m = Metrics::new();
        m.queue_entered();
        m.queue_entered();
        m.queue_left();
        assert_eq!(m.queue_depth(), 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let m = Metrics::new();
        assert_eq!(m.percentile_ms(99.0), 0.0);
        assert_eq!(m.qps(), 0.0);
    }
}
