//! Minimal JSON encode/decode for the wire types.
//!
//! The container has no crates.io access (the vendored `serde` is a
//! non-serializing stand-in), so the server carries its own ~300-line
//! recursive-descent parser and writer. It covers exactly what the wire
//! needs: the six JSON value kinds, `\uXXXX` escapes, and a depth limit so
//! a hostile body cannot blow the parser's stack. Numbers are kept as
//! `f64`, which is lossless for the `u32`/`f32` payloads PLSH exchanges.

use std::collections::BTreeMap;
use std::fmt;

/// Nesting depth at which [`parse`] gives up. Wire payloads are at most
/// three levels deep (`{"queries": [[[i, w], ...], ...]}`), so 32 leaves
/// headroom without letting `[[[[...` recurse to a stack overflow.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Objects use a `BTreeMap` so encoding is
/// deterministic — handy for tests that compare whole bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers, integral or not.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup that is `None` for non-objects and missing keys alike.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integral numbers only: rejects `1.5` rather than truncating it.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for object literals.
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/Inf; null is the conventional fallback.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse `input` as a single JSON value; trailing non-whitespace is an
/// error. The message names the byte offset so protocol tests can assert
/// something meaningful.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte 0x{:02x} at offset {}",
                b, self.pos
            )),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek();
                    // Every arm leaves `pos` just past what it consumed.
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..DFFF`; lone or mismatched
                            // surrogates become U+FFFD rather than an error.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_literal("\\u") {
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let combined =
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{FFFD}')
                                    } else {
                                        '\u{FFFD}'
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through unmodified; `input`
                    // was already validated as a &str.
                    let start = self.pos;
                    let s = &self.bytes[start..];
                    let len = utf8_len(s[0]);
                    let chunk = std::str::from_utf8(&s[..len.min(s.len())])
                        .map_err(|_| format!("invalid utf-8 at offset {start}"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let code =
            u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape at {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at offset {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Json::Num(n))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"queries": [[[0, 0.5], [3, 1.0]]], "top_k": 5}"#).unwrap();
        assert_eq!(v.get("top_k").and_then(Json::as_u64), Some(5));
        let q = v.get("queries").and_then(Json::as_arr).unwrap();
        assert_eq!(q[0].as_arr().unwrap().len(), 2);
    }

    #[test]
    fn escapes_survive_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u0041e\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAe\u{e9}"));
        let re = parse(&Json::Str("a\"b\\c\nd".into()).to_string()).unwrap();
        assert_eq!(re.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "[1] x", "\"\\q\"",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_blocks_deep_nesting() {
        let deep = "[".repeat(60) + &"]".repeat(60);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn f32_distances_round_trip_exactly() {
        // The bench harness relies on this: Rust's shortest-repr float
        // Display means f32 -> JSON -> f64 -> f32 is the identity.
        for x in [0.123_456_79_f32, 1.0, 0.999_999_9, 3.402_823_5e38] {
            let json = Json::Num(x as f64).to_string();
            let back = parse(&json).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back, x);
        }
    }
}
