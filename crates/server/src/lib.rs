//! `plsh-server` — the network wire surface over a PLSH index.
//!
//! The paper's workload is a live service: millions of users querying a
//! streaming tweet index while ingest runs. This crate is the serving
//! skin for that shape — a hand-rolled HTTP/1.1 server over
//! `std::net::TcpListener` (the container has no crates.io access, so no
//! hyper/axum/tokio) with its own minimal JSON codec:
//!
//! | Endpoint | Maps onto |
//! |---|---|
//! | `POST /search` | [`SearchRequest`](plsh_core::search::SearchRequest) ⇄ [`SearchResponse`](plsh_core::search::SearchResponse) |
//! | `POST /ingest` | `insert_batch` into the streaming write path |
//! | `POST /delete` | tombstone by id |
//! | `GET /healthz` | [`HealthReport`](plsh_core::health::HealthReport) — 503 when degraded |
//! | `GET /metrics` | qps, p50/p99, epoch generation, merge backlog, queue depth, shed count, worker restarts |
//! | `POST /ctl/shutdown` | request graceful drain |
//!
//! Load shedding is layered (bounded accept queue → stale-queue 429 →
//! per-request candidate budgets) and graceful drain hands what remains
//! to `StreamingEngine::shutdown` — the threading and shedding design is
//! documented on [`server`].
//!
//! Any backend implementing [`ServeBackend`] can sit behind the wire;
//! [`StreamingEngine`](plsh_core::streaming::StreamingEngine) does here,
//! and the root `plsh::Index` does in the facade crate (so
//! `Index::serve(addr)` is one call).

pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod wire;

pub use json::Json;
pub use metrics::Metrics;
pub use server::{serve, ServeBackend, Server, ServerConfig};
pub use wire::WireError;
