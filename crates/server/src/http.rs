//! HTTP/1.1 framing: request parsing with hard size caps, Content-Length
//! bodies, keep-alive, and response serialization.
//!
//! This is deliberately a small subset of RFC 9112 — enough for the PLSH
//! wire surface and its load-shedding semantics, not a general web server:
//!
//! * Only `Content-Length` framing. `Transfer-Encoding` is answered with
//!   501 so a chunked client fails fast instead of desyncing the stream.
//! * Header block capped at [`MAX_HEAD_BYTES`]; bodies capped by the
//!   caller's `max_body_bytes`, checked **before** the body is read so an
//!   oversized upload is rejected without buffering it.
//! * Keep-alive by default for HTTP/1.1, opt-in via `Connection:
//!   keep-alive` for 1.0, and any protocol error closes the connection
//!   after a best-effort 4xx/5xx response.

use std::io::{self, BufRead, Read, Write};

/// Cap on the request line + headers, matching common proxy defaults.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Cap on the number of header lines; prevents a slow drip of tiny headers
/// from pinning a handler thread inside the head cap.
const MAX_HEADERS: usize = 100;

/// A parsed request. Header names are lower-cased at parse time.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding.
    pub keep_alive: bool,
}

/// Why [`read_request`] did not produce a request.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed (or the socket failed / timed out) before a full
    /// request arrived. Nothing to answer; just drop the connection.
    ConnectionClosed,
    /// Protocol violation: answer with `response`, then close.
    Protocol(Response),
}

impl HttpError {
    fn bad_request(msg: &str) -> HttpError {
        HttpError::Protocol(Response::error(400, msg))
    }
}

/// Read one request off `reader`. Blocks until a request, EOF, or the
/// stream's read timeout.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body_bytes: usize,
) -> Result<Request, HttpError> {
    let mut head = String::new();
    let mut line = String::new();
    // Request line.
    match read_crlf_line(reader, &mut line, &mut head) {
        Ok(0) => return Err(HttpError::ConnectionClosed),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Err(HttpError::bad_request("request line too large"))
        }
        Err(_) => return Err(HttpError::ConnectionClosed),
    }
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_string(), p.to_string(), v.to_string())
        }
        _ => return Err(HttpError::bad_request("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request("unsupported HTTP version"));
    }
    let http_11 = version != "HTTP/1.0";

    // Headers.
    let mut content_length: Option<usize> = None;
    let mut keep_alive = http_11;
    let mut header_count = 0;
    loop {
        line.clear();
        match read_crlf_line(reader, &mut line, &mut head) {
            Ok(0) => return Err(HttpError::ConnectionClosed),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Err(HttpError::bad_request("header block too large"))
            }
            Err(_) => return Err(HttpError::ConnectionClosed),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADERS {
            return Err(HttpError::bad_request("too many headers"));
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::bad_request("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::bad_request("bad Content-Length"))?;
                if content_length.replace(n).is_some_and(|prev| prev != n) {
                    return Err(HttpError::bad_request("conflicting Content-Length"));
                }
            }
            "transfer-encoding" => {
                return Err(HttpError::Protocol(Response::error(
                    501,
                    "Transfer-Encoding is not supported; use Content-Length",
                )));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    // Body. The length check happens before any body byte is read, so an
    // oversized upload costs the client a rejected header block, not the
    // server `max_body_bytes` of buffering.
    let len = content_length.unwrap_or(0);
    if len > max_body_bytes {
        return Err(HttpError::Protocol(Response::error(
            413,
            &format!("body exceeds max_body_bytes={max_body_bytes}"),
        )));
    }
    let mut body = vec![0u8; len];
    if len > 0 && reader.read_exact(&mut body).is_err() {
        return Err(HttpError::ConnectionClosed);
    }
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// `read_line` with the cumulative head-size cap folded in. Returns the
/// number of bytes read (0 on EOF); `InvalidData` when the cap is blown.
fn read_crlf_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    head: &mut String,
) -> io::Result<usize> {
    line.clear();
    // Bound the single read so one giant line cannot bypass the cap.
    let budget = MAX_HEAD_BYTES.saturating_sub(head.len()) + 2;
    let n = reader.take(budget as u64).read_line(line)?;
    head.push_str(line);
    if head.len() > MAX_HEAD_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "head too large"));
    }
    Ok(n)
}

/// An outgoing response. `write_to` serializes status line, the few
/// headers the wire needs, and the body in one buffered write.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    /// Emitted as a `Retry-After: <seconds>` header — set on 429/503 shed
    /// responses so well-behaved clients back off.
    pub retry_after: Option<u64>,
    /// Force `Connection: close` even on a keep-alive connection.
    pub close: bool,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
            close: false,
        }
    }

    /// A JSON error body: `{"error": "<msg>"}`.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(
            status,
            format!(
                "{}",
                crate::json::Json::obj(vec![("error", crate::json::Json::Str(msg.to_string()))])
            ),
        )
    }

    pub fn retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        let close = self.close || !keep_alive;
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
        );
        if let Some(secs) = self.retry_after {
            out.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        out.push_str(if close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        out.push_str(&self.body);
        w.write_all(out.as_bytes())?;
        w.flush()
    }
}

/// Canonical reason phrases for the statuses the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /search HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/search");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req10 = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req10.keep_alive);
    }

    #[test]
    fn malformed_request_line_is_400() {
        for raw in [
            "NONSENSE\r\n\r\n",
            "GET\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
        ] {
            match parse(raw) {
                Err(HttpError::Protocol(resp)) => assert_eq!(resp.status, 400, "{raw:?}"),
                other => panic!("{raw:?}: expected 400, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_is_413_without_reading_it() {
        let raw = "POST /ingest HTTP/1.1\r\nContent-Length: 99999\r\n\r\n";
        match parse(raw) {
            Err(HttpError::Protocol(resp)) => assert_eq!(resp.status, 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn transfer_encoding_is_501() {
        let raw = "POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        match parse(raw) {
            Err(HttpError::Protocol(resp)) => assert_eq!(resp.status, 501),
            other => panic!("expected 501, got {other:?}"),
        }
    }

    #[test]
    fn eof_mid_body_closes() {
        let raw = "POST /search HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse(raw), Err(HttpError::ConnectionClosed)));
    }

    #[test]
    fn giant_head_is_rejected() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        match parse(&raw) {
            Err(HttpError::Protocol(resp)) => assert_eq!(resp.status, 400),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn response_serializes_with_retry_after() {
        let mut buf = Vec::new();
        Response::error(429, "shed")
            .retry_after(2)
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"error\":\"shed\"}"));
    }
}
