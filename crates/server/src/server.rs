//! The server proper: accept loop, bounded request queue, handler
//! threads, endpoint dispatch, load shedding, and graceful drain.
//!
//! ## Threading model
//!
//! Accepted connections land in a **bounded** queue
//! (`ServerConfig::max_pending`); a fixed set of handler threads pulls
//! from it and speaks HTTP. The CPU-heavy part of every request — the
//! hash/probe/rank fan-out — still runs on the shared
//! [`plsh_parallel::ThreadPool`] at foreground priority, because that is
//! what `backend.search()` submits to internally; the handler thread
//! participates in its own batch exactly like any other pool submitter,
//! so query work competes fairly with background merges under the pool's
//! two-class scheduler. (Connections cannot *be* pool tasks: every pool
//! entry point blocks the submitter until batch completion by design, so
//! parking open sockets there would wedge the pool. The handler threads
//! are the blocking-I/O skin around the pool, not a second compute pool.)
//!
//! ## Load shedding
//!
//! Two layers, both answering with `Retry-After`:
//!
//! * Accept-side: when the queue is full, the accept loop answers `503`
//!   immediately and closes — the queue can never grow unboundedly.
//! * Queue-side: a connection that waited longer than
//!   `max_queue_delay` before a handler picked it up is answered `429`
//!   and closed — by the time it would be served, the client has likely
//!   timed out; doing the work anyway is goodput zero.
//!
//! Per-request CPU is additionally bounded by
//! `default_max_candidates`/`default_shard_deadline`, applied to search
//! requests that did not set their own budget.
//!
//! ## Drain
//!
//! `SIGTERM` (opt-in), `POST /ctl/shutdown`, or [`Server::shutdown`] stop
//! the accept loop; queued connections are still answered; keep-alive
//! connections are closed after their in-flight request (`Connection:
//! close`); then the backend drains via `ServeBackend::shutdown` within
//! what remains of `drain_deadline`.

use crate::http::{self, HttpError, Request, Response};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::wire;
use plsh_core::engine::{EngineStats, EpochInfo};
use plsh_core::health::HealthReport;
use plsh_core::search::{SearchRequest, SearchResponse};
use plsh_core::sparse::SparseVector;
use plsh_core::streaming::{ShutdownReport, StreamingEngine};
use plsh_core::Result as CoreResult;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything a PLSH backend must answer to sit behind the wire surface.
/// Implemented here for [`StreamingEngine`]; the root `plsh::Index`
/// implements it over both its backends.
pub trait ServeBackend: Send + Sync {
    fn search(&self, req: &SearchRequest) -> CoreResult<SearchResponse>;
    fn insert_batch(&self, vs: &[SparseVector]) -> CoreResult<Vec<u32>>;
    /// `Ok(false)` when the id is unknown or already deleted.
    fn delete(&self, id: u32) -> CoreResult<bool>;
    fn health(&self) -> HealthReport;
    fn stats(&self) -> EngineStats;
    fn epoch_info(&self) -> EpochInfo;
    /// Graceful drain; see `StreamingEngine::shutdown`.
    fn shutdown(&self, deadline: Duration) -> ShutdownReport;
}

impl ServeBackend for StreamingEngine {
    fn search(&self, req: &SearchRequest) -> CoreResult<SearchResponse> {
        StreamingEngine::search(self, req)
    }

    fn insert_batch(&self, vs: &[SparseVector]) -> CoreResult<Vec<u32>> {
        StreamingEngine::insert_batch(self, vs)
    }

    fn delete(&self, id: u32) -> CoreResult<bool> {
        Ok(StreamingEngine::delete(self, id))
    }

    fn health(&self) -> HealthReport {
        StreamingEngine::health(self)
    }

    fn stats(&self) -> EngineStats {
        StreamingEngine::stats(self)
    }

    fn epoch_info(&self) -> EpochInfo {
        StreamingEngine::epoch_info(self)
    }

    fn shutdown(&self, deadline: Duration) -> ShutdownReport {
        StreamingEngine::shutdown(self, deadline)
    }
}

/// Server knobs. `Default` is sized for the test/bench machines in this
/// repo: a handful of handler threads, a queue a few times deeper, 1 MiB
/// bodies.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Handler threads (blocking-I/O skin; compute stays on the pool).
    pub workers: usize,
    /// Bounded queue of accepted-but-unhandled connections; the accept
    /// loop sheds 503 beyond this.
    pub max_pending: usize,
    /// Request bodies larger than this are answered 413 without reading.
    pub max_body_bytes: usize,
    /// Queued longer than this → shed 429 instead of serving stale work.
    pub max_queue_delay: Duration,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Candidate budget injected into `/search` requests that set none —
    /// the request-level half of load shedding. `None` = unbounded.
    pub default_max_candidates: Option<usize>,
    /// Shard deadline injected into `/search` requests that set none
    /// (sharded backends only; single-engine backends ignore it).
    pub default_shard_deadline: Option<Duration>,
    /// Budget for the backend drain performed by [`Server::shutdown`].
    pub drain_deadline: Duration,
    /// Install a process-wide SIGTERM handler that requests drain. Off by
    /// default: a process hosts many tests but only one signal handler.
    pub handle_sigterm: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_pending: 64,
            max_body_bytes: 1 << 20,
            max_queue_delay: Duration::from_millis(500),
            idle_timeout: Duration::from_secs(5),
            default_max_candidates: None,
            default_shard_deadline: None,
            drain_deadline: Duration::from_secs(5),
            handle_sigterm: false,
        }
    }
}

/// SIGTERM latch shared by every server in the process (signal handlers
/// are process-wide; each server polls, only one installs).
static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

fn install_sigterm_handler() {
    // Same libc-less pattern as `util.rs` madvise / `affinity.rs`
    // sched_setaffinity: declare the one symbol we need.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM_NO: i32 = 15;
    unsafe {
        signal(SIGTERM_NO, on_sigterm as *const () as usize);
    }
}

struct Shared {
    backend: Arc<dyn ServeBackend>,
    metrics: Metrics,
    config: ServerConfig,
    /// Set by SIGTERM, `/ctl/shutdown`, or [`Server::shutdown`]; the
    /// accept loop and keep-alive loops poll it.
    stop: AtomicBool,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
            || (self.config.handle_sigterm && SIGTERM.load(Ordering::SeqCst))
    }
}

/// A running server. Dropping it without calling
/// [`shutdown`](Server::shutdown) aborts the accept thread without
/// draining the backend — call `shutdown` for the graceful path.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Start serving `backend` on `addr` (use port 0 for an ephemeral port;
/// the bound address is [`Server::addr`]).
pub fn serve(
    backend: Arc<dyn ServeBackend>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    if config.handle_sigterm {
        install_sigterm_handler();
    }
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        backend,
        metrics: Metrics::new(),
        config,
        stop: AtomicBool::new(false),
    });

    // std's sync_channel is the bounded queue: `try_send` is the shed
    // decision (the vendored crossbeam stand-in has no try_send).
    let (tx, rx) = std::sync::mpsc::sync_channel::<(TcpStream, Instant)>(shared.config.max_pending);
    let rx = Arc::new(Mutex::new(rx));

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("plsh-http-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn handler thread")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("plsh-http-accept".into())
            .spawn(move || accept_loop(&shared, &listener, &tx))
            .expect("spawn accept thread")
    };

    Ok(Server {
        addr,
        shared,
        accept: Some(accept),
        workers: worker_handles,
    })
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-side request telemetry (live; also rendered by `/metrics`).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Ask the server to stop accepting; returns immediately. SIGTERM and
    /// `POST /ctl/shutdown` end up here too.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested (by any path).
    pub fn stop_requested(&self) -> bool {
        self.shared.stopping()
    }

    /// Block until a stop is requested (SIGTERM or `/ctl/shutdown`);
    /// pair with [`shutdown`](Server::shutdown) to then drain.
    pub fn wait_for_stop(&self) {
        while !self.shared.stopping() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Graceful drain: stop accepting, answer everything already queued,
    /// close keep-alive connections after their in-flight request, join
    /// every thread, then drain the backend within `drain_deadline`.
    pub fn shutdown(mut self) -> ShutdownReport {
        let drain_start = Instant::now();
        self.request_stop();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The accept thread dropped the sender; workers finish the queue
        // and exit on the disconnected channel.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let remaining = self
            .shared
            .config
            .drain_deadline
            .saturating_sub(drain_start.elapsed());
        self.shared.backend.shutdown(remaining)
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<(TcpStream, Instant)>) {
    loop {
        if shared.stopping() {
            return; // drops tx; workers drain and exit
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.queue_entered();
                match tx.try_send((stream, Instant::now())) {
                    Ok(()) => {}
                    Err(
                        TrySendError::Full((stream, _)) | TrySendError::Disconnected((stream, _)),
                    ) => {
                        // Queue full: shed right here with Retry-After
                        // rather than queueing unboundedly.
                        shared.metrics.queue_left();
                        shared.metrics.record_shed();
                        shed_connection(shared, stream, 503, "request queue full");
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Best-effort one-shot shed response on a connection we will not serve.
///
/// The client usually wrote its whole request before we decided to shed;
/// closing with those bytes unread makes the kernel send RST, which can
/// discard the in-flight 429/503 before the client reads it. So: write
/// the response, half-close our side (FIN), then drain the unread input
/// for up to a short timeout before dropping — on a detached thread, so
/// a slow client's drain can never stall the accept loop.
fn shed_connection(shared: &Shared, mut stream: TcpStream, status: u16, msg: &'static str) {
    shared.metrics.record(status, Duration::ZERO);
    std::thread::spawn(move || {
        let mut resp = Response::error(status, msg).retry_after(1);
        resp.close = true;
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        if resp.write_to(&mut stream, false).is_err() {
            return;
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut sink = [0u8; 4096];
        while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
    });
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<(TcpStream, Instant)>>>) {
    loop {
        let next = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok((stream, enqueued)) = next else {
            return; // accept loop gone and queue drained
        };
        shared.metrics.queue_left();
        if enqueued.elapsed() > shared.config.max_queue_delay {
            // Stale: the client has likely given up; serving it now is
            // wasted compute. Shed with Retry-After.
            shared.metrics.record_shed();
            shed_connection(shared, stream, 429, "queued past max_queue_delay");
            continue;
        }
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.idle_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = http::read_request(&mut reader, shared.config.max_body_bytes);
        let start = Instant::now();
        match request {
            Ok(req) => {
                // A panic anywhere in dispatch (a poisoned backend, a bug)
                // maps to 500 on this one request; the handler thread and
                // its connection loop survive.
                let mut resp = catch_unwind(AssertUnwindSafe(|| dispatch(shared, &req)))
                    .unwrap_or_else(|_| {
                        Response::error(500, "internal panic while serving request")
                    });
                // Close keep-alive connections once drain starts.
                let keep_alive = req.keep_alive && !shared.stopping();
                resp.close = resp.close || !keep_alive;
                let closing = resp.close;
                shared.metrics.record(resp.status, start.elapsed());
                if resp.write_to(&mut writer, !closing).is_err() {
                    return; // peer went away mid-response; nothing to do
                }
                if closing {
                    return;
                }
            }
            Err(HttpError::ConnectionClosed) => return,
            Err(HttpError::Protocol(mut resp)) => {
                // Protocol errors always close: the stream may be
                // desynced (e.g. an unread oversized body).
                resp.close = true;
                shared.metrics.record(resp.status, start.elapsed());
                let _ = resp.write_to(&mut writer, false);
                return;
            }
        }
        let _ = writer.flush();
    }
}

fn dispatch(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/search") => with_body(req, |body| search(shared, body)),
        ("POST", "/ingest") => with_body(req, |body| ingest(shared, body)),
        ("POST", "/delete") => with_body(req, |body| delete(shared, body)),
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics_page(shared),
        ("POST", "/ctl/shutdown") => {
            shared.stop.store(true, Ordering::SeqCst);
            let mut resp = Response::json(
                200,
                Json::obj(vec![("draining", Json::Bool(true))]).to_string(),
            );
            resp.close = true;
            resp
        }
        (
            "POST" | "GET",
            "/search" | "/ingest" | "/delete" | "/healthz" | "/metrics" | "/ctl/shutdown",
        ) => Response::error(405, "method not allowed for this route"),
        _ => Response::error(404, "unknown route"),
    }
}

/// Parse the body as JSON and hand it to `f`; truncated or invalid JSON
/// is a 400 here, before any endpoint logic runs.
fn with_body(req: &Request, f: impl FnOnce(&Json) -> Response) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not valid UTF-8"),
    };
    match json::parse(text) {
        Ok(body) => f(&body),
        Err(e) => Response::error(400, &format!("invalid JSON body: {e}")),
    }
}

fn wire_error(e: wire::WireError) -> Response {
    Response::error(e.status, &e.message)
}

fn search(shared: &Shared, body: &Json) -> Response {
    let mut sreq = match wire::parse_search(body) {
        Ok(r) => r,
        Err(e) => return wire_error(e),
    };
    // Request-level shedding budget: cap candidates (and bound shard
    // fan-out) for clients that did not pick their own limits.
    if sreq.max_candidates().is_none() {
        if let Some(budget) = shared.config.default_max_candidates {
            sreq = sreq.with_max_candidates(budget);
        }
    }
    if sreq.shard_deadline().is_none() {
        if let Some(deadline) = shared.config.default_shard_deadline {
            sreq = sreq.with_shard_deadline(deadline);
        }
    }
    match shared.backend.search(&sreq) {
        Ok(resp) => Response::json(200, wire::encode_search_response(&resp).to_string()),
        Err(e) => backend_error(&e),
    }
}

fn ingest(shared: &Shared, body: &Json) -> Response {
    let vectors = match wire::parse_ingest(body) {
        Ok(v) => v,
        Err(e) => return wire_error(e),
    };
    match shared.backend.insert_batch(&vectors) {
        Ok(ids) => {
            let ids = Json::Arr(ids.iter().map(|&id| Json::Num(id as f64)).collect());
            Response::json(200, Json::obj(vec![("ids", ids)]).to_string())
        }
        Err(e) => backend_error(&e),
    }
}

fn delete(shared: &Shared, body: &Json) -> Response {
    let id = match wire::parse_delete(body) {
        Ok(id) => id,
        Err(e) => return wire_error(e),
    };
    match shared.backend.delete(id) {
        Ok(deleted) => Response::json(
            200,
            Json::obj(vec![("deleted", Json::Bool(deleted))]).to_string(),
        ),
        Err(e) => backend_error(&e),
    }
}

fn backend_error(e: &plsh_core::PlshError) -> Response {
    let status = wire::backend_error_status(e);
    let mut resp = Response::error(status, &e.to_string());
    if status == 503 {
        resp = resp.retry_after(1);
    }
    resp
}

fn healthz(shared: &Shared) -> Response {
    let report = shared.backend.health();
    let status = if report.healthy() { 200 } else { 503 };
    let mut resp = Response::json(status, wire::encode_health(&report).to_string());
    if status == 503 {
        resp = resp.retry_after(1);
    }
    resp
}

fn metrics_page(shared: &Shared) -> Response {
    let m = &shared.metrics;
    let health = shared.backend.health();
    let stats = shared.backend.stats();
    let epoch = shared.backend.epoch_info();
    let workers = Json::Arr(
        health
            .workers
            .iter()
            .map(|w| {
                Json::obj(vec![
                    ("name", Json::Str(w.name.clone())),
                    ("alive", Json::Bool(w.alive)),
                    ("restarts", Json::Num(w.restarts as f64)),
                ])
            })
            .collect(),
    );
    let body = Json::obj(vec![
        ("qps", Json::Num(m.qps())),
        ("p50_ms", Json::Num(m.percentile_ms(50.0))),
        ("p99_ms", Json::Num(m.percentile_ms(99.0))),
        ("requests_total", Json::Num(m.requests_total() as f64)),
        ("responses_4xx", Json::Num(m.responses_4xx() as f64)),
        ("responses_5xx", Json::Num(m.responses_5xx() as f64)),
        ("shed_total", Json::Num(m.shed_total() as f64)),
        ("queue_depth", Json::Num(m.queue_depth() as f64)),
        ("epoch_generation", Json::Num(epoch.generation as f64)),
        ("visible_points", Json::Num(epoch.visible_points as f64)),
        ("merge_backlog", Json::Num(health.merge_backlog as f64)),
        ("pending_ingest", Json::Num(stats.pending_ingest as f64)),
        ("worker_restarts", Json::Num(health.total_restarts() as f64)),
        ("workers", workers),
    ]);
    Response::json(200, body.to_string())
}
