//! Protocol-robustness suite: hostile and broken clients against a live
//! server over real sockets. Every scenario must end in a clean 4xx/5xx
//! or a clean close — never a wedged connection, never a dead handler
//! thread (the final sanity request in each test proves the server still
//! answers).

use plsh_core::engine::EngineConfig;
use plsh_core::streaming::StreamingEngine;
use plsh_core::{PlshParams, SparseVector};
use plsh_parallel::ThreadPool;
use plsh_server::{serve, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn params(dim: u32) -> PlshParams {
    PlshParams::builder(dim)
        .k(6)
        .m(6)
        .radius(0.9)
        .seed(3)
        .build()
        .unwrap()
}

fn vectors(n: usize, dim: u32) -> Vec<SparseVector> {
    (0..n)
        .map(|i| {
            SparseVector::unit(vec![
                (i as u32 % dim, 1.0),
                ((i as u32 + 1) % dim, 0.5),
                ((i as u32 + 3) % dim, 0.25),
            ])
            .unwrap()
        })
        .collect()
}

fn start_server(config: ServerConfig) -> Server {
    let engine =
        StreamingEngine::new(EngineConfig::new(params(16), 1_024), ThreadPool::new(2)).unwrap();
    engine.insert_batch(&vectors(64, 16)).unwrap();
    serve(Arc::new(engine), "127.0.0.1:0", config).expect("bind")
}

fn send_raw(server: &Server, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"))
}

fn post(server: &Server, path: &str, body: &str) -> String {
    send_raw(
        server,
        format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The server must still answer real traffic — the "no worker died"
/// probe run at the end of every scenario.
fn assert_alive(server: &Server) {
    let resp = post(
        server,
        "/search",
        r#"{"queries": [[[0, 1.0]]], "top_k": 1}"#,
    );
    assert_eq!(status_of(&resp), 200, "server no longer serves: {resp}");
}

#[test]
fn malformed_request_line_gets_400_and_close() {
    let server = start_server(ServerConfig::default());
    let resp = send_raw(&server, b"COMPLETE GARBAGE\r\n\r\n");
    assert_eq!(status_of(&resp), 400);
    assert!(resp.contains("Connection: close"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_body_gets_413_without_buffering() {
    let server = start_server(ServerConfig {
        max_body_bytes: 1_024,
        ..ServerConfig::default()
    });
    // Claim a huge body but never send it: the cap check runs off the
    // header alone, so the 413 must come back immediately.
    let resp = send_raw(
        &server,
        b"POST /ingest HTTP/1.1\r\nContent-Length: 10000000\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 413);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn truncated_json_gets_400() {
    let server = start_server(ServerConfig::default());
    let resp = post(&server, "/search", r#"{"queries": [[[0, 1.0"#);
    assert_eq!(status_of(&resp), 400);
    assert!(resp.contains("invalid JSON"), "{resp}");
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn unknown_route_gets_404_and_wrong_method_gets_405() {
    let server = start_server(ServerConfig::default());
    let resp = send_raw(&server, b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status_of(&resp), 404);
    let resp = send_raw(
        &server,
        b"GET /search HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 405);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn premature_disconnect_leaves_server_healthy() {
    let server = start_server(ServerConfig::default());
    // Half a request, then hang up; repeat to hit multiple workers.
    for _ in 0..8 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /search HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"quer")
            .unwrap();
        drop(stream); // vanish mid-body
    }
    // Also vanish mid-*response*: ask for work, read one byte, hang up.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let body = r#"{"queries": [[[0, 1.0]]], "top_k": 5}"#;
    stream
        .write_all(
            format!(
                "POST /search HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut one = [0u8; 1];
    let _ = stream.read(&mut one);
    drop(stream);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn keep_alive_carries_multiple_requests() {
    let server = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = r#"{"queries": [[[0, 1.0]]], "top_k": 1}"#;
    let req = format!(
        "POST /search HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    for round in 0..3 {
        stream.write_all(req.as_bytes()).unwrap();
        // Read one full response off the stream (headers + body by
        // Content-Length) without closing the connection.
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            assert_eq!(stream.read(&mut byte).unwrap(), 1, "round {round}");
            buf.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&buf);
        assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
        assert!(head.contains("Connection: keep-alive"), "{head}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body_buf = vec![0u8; len];
        stream.read_exact(&mut body_buf).unwrap();
    }
    server.shutdown();
}

#[test]
fn queue_overflow_sheds_with_retry_after() {
    // One worker, a one-slot queue, and a request that holds the worker:
    // the surplus connections must shed 503 + Retry-After instead of
    // queueing unboundedly.
    let server = start_server(ServerConfig {
        workers: 1,
        max_pending: 1,
        ..ServerConfig::default()
    });
    // Park the lone worker on a connection that sends nothing (it idles
    // inside read_request until idle_timeout); the queue_depth gauge
    // makes the sequencing deterministic.
    let parked_worker = TcpStream::connect(server.addr()).unwrap();
    // Ample time for the 2ms-poll accept loop to enqueue it and for the
    // worker to claim it (it then blocks in read_request for idle_timeout).
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        server.metrics().queue_depth(),
        0,
        "worker should have claimed it"
    );
    let parked_queue = TcpStream::connect(server.addr()).unwrap();
    {
        // The second parked connection must come to rest *in* the queue:
        // the lone worker is busy, so depth rises to 1 and stays there.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.metrics().queue_depth() != 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "second connection never occupied the queue slot"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    for _ in 0..4 {
        let resp = post(
            &server,
            "/search",
            r#"{"queries": [[[0, 1.0]]], "top_k": 1}"#,
        );
        assert_eq!(status_of(&resp), 503, "{resp}");
        assert!(resp.contains("Retry-After:"), "{resp}");
    }
    assert!(server.metrics().shed_total() >= 4);
    // Free the worker (EOF) so shutdown doesn't wait out idle_timeout.
    drop(parked_worker);
    drop(parked_queue);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_reports() {
    let server = start_server(ServerConfig::default());
    // A ctl-endpoint drain: request it over the wire like an operator.
    let resp = post(&server, "/ctl/shutdown", "");
    assert_eq!(status_of(&resp), 200);
    assert!(resp.contains("\"draining\":true"));
    assert!(server.stop_requested());
    server.wait_for_stop();
    let report = server.shutdown();
    assert!(report.drained, "engine should drain within the deadline");
}

/// A backend whose search panics on demand — the crate-level stand-in
/// for any bug or poisoned state below the wire. (The end-to-end fault
/// version, arming `query.shard` on a sharded index via the `fault`
/// framework, lives in the root crate's `tests/server_http.rs`.)
struct PanickyBackend {
    inner: StreamingEngine,
    panic_searches: std::sync::atomic::AtomicUsize,
}

impl plsh_server::ServeBackend for PanickyBackend {
    fn search(
        &self,
        req: &plsh_core::search::SearchRequest,
    ) -> plsh_core::Result<plsh_core::search::SearchResponse> {
        use std::sync::atomic::Ordering;
        let remaining = self.panic_searches.load(Ordering::SeqCst);
        if remaining > 0 {
            self.panic_searches.fetch_sub(1, Ordering::SeqCst);
            panic!("injected backend panic");
        }
        self.inner.search(req)
    }

    fn insert_batch(&self, vs: &[SparseVector]) -> plsh_core::Result<Vec<u32>> {
        self.inner.insert_batch(vs)
    }

    fn delete(&self, id: u32) -> plsh_core::Result<bool> {
        Ok(self.inner.delete(id))
    }

    fn health(&self) -> plsh_core::HealthReport {
        self.inner.health()
    }

    fn stats(&self) -> plsh_core::engine::EngineStats {
        self.inner.stats()
    }

    fn epoch_info(&self) -> plsh_core::engine::EpochInfo {
        self.inner.epoch_info()
    }

    fn shutdown(&self, deadline: Duration) -> plsh_core::ShutdownReport {
        self.inner.shutdown(deadline)
    }
}

#[test]
fn backend_panic_maps_to_500_and_server_survives() {
    let engine =
        StreamingEngine::new(EngineConfig::new(params(16), 1_024), ThreadPool::new(2)).unwrap();
    engine.insert_batch(&vectors(64, 16)).unwrap();
    let backend = Arc::new(PanickyBackend {
        inner: engine,
        panic_searches: std::sync::atomic::AtomicUsize::new(2),
    });
    let server = serve(backend, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    for _ in 0..2 {
        let resp = post(
            &server,
            "/search",
            r#"{"queries": [[[0, 1.0]]], "top_k": 1}"#,
        );
        assert_eq!(status_of(&resp), 500, "{resp}");
        assert!(resp.contains("internal panic"), "{resp}");
    }
    assert!(server.metrics().responses_5xx() >= 2);
    // The handler threads absorbed both panics; the server still serves.
    assert_alive(&server);
    server.shutdown();
}
