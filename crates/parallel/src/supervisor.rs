//! Supervision primitives for background workers: bounded exponential
//! backoff with jitter, and shared worker-status cells.
//!
//! The streaming stack runs two kinds of long-lived workers — background
//! merge threads and per-shard ingest threads. Both run their work under
//! `catch_unwind` and, on a panic, consult a [`Backoff`] for how long to
//! wait before restarting and a [`WorkerStatus`] to record what happened
//! so `health()` callers can see it. The restart budget is bounded: a
//! worker that keeps panicking is marked dead rather than spun forever.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Bounded exponential backoff with deterministic jitter.
///
/// Delays start at `base`, double per consultation, and cap at `cap`;
/// each delay gets up to +50% jitter from a seeded SplitMix64 stream so
/// restarting workers don't stampede in lockstep, while runs with the
/// same seed reproduce exactly.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    next: Duration,
    rng: u64,
}

impl Backoff {
    /// A backoff starting at `base`, capped at `cap`, jittered by `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            next: base,
            rng: seed,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele et al.) — tiny, seedable, good enough for
        // jitter; inlined to keep this crate dependency-free.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The delay to sleep before the next restart attempt (and advances
    /// the schedule).
    pub fn next_delay(&mut self) -> Duration {
        let current = self.next;
        self.next = (self.next * 2).min(self.cap);
        let jitter_ns = if current.is_zero() {
            0
        } else {
            self.next_u64() % (current.as_nanos() as u64 / 2).max(1)
        };
        current + Duration::from_nanos(jitter_ns)
    }

    /// Resets the schedule to `base` (call after a healthy stretch).
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

/// Shared status cell for one supervised worker. The worker (or its
/// supervisor loop) writes; `health()` readers snapshot.
#[derive(Debug, Default)]
pub struct WorkerStatus {
    dead: AtomicBool,
    restarts: AtomicU64,
    last_panic: Mutex<Option<String>>,
}

impl WorkerStatus {
    /// A fresh, alive status.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the worker can still make progress (`false` once the
    /// supervisor exhausted its restart budget).
    pub fn alive(&self) -> bool {
        !self.dead.load(Ordering::Relaxed)
    }

    /// The supervisor gave this worker up.
    pub fn mark_dead(&self) {
        self.dead.store(true, Ordering::Relaxed);
    }

    /// Revive after an external recovery (e.g. a heal + fresh spawn).
    pub fn mark_alive(&self) {
        self.dead.store(false, Ordering::Relaxed);
    }

    /// Panics absorbed and restarted from.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Record one absorbed panic (call before the backoff sleep).
    pub fn record_restart(&self, payload: &(dyn Any + Send)) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
        *self.last_panic.lock().unwrap_or_else(|e| e.into_inner()) = Some(panic_message(payload));
    }

    /// Message of the most recent absorbed panic.
    pub fn last_panic(&self) -> Option<String> {
        self.last_panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_bounded() {
        let base = Duration::from_millis(4);
        let cap = Duration::from_millis(20);
        let mut b = Backoff::new(base, cap, 7);
        let d1 = b.next_delay();
        assert!(d1 >= base && d1 < base + base / 2 + Duration::from_nanos(1));
        let d2 = b.next_delay();
        assert!(d2 >= base * 2 && d2 < base * 3);
        let _ = b.next_delay();
        let d4 = b.next_delay();
        assert!(
            d4 >= cap && d4 < cap + cap / 2 + Duration::from_nanos(1),
            "capped at {cap:?}, got {d4:?}"
        );
        b.reset();
        assert!(b.next_delay() < base * 2);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = || {
            let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(8), 42);
            (0..5).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn worker_status_lifecycle() {
        let s = WorkerStatus::new();
        assert!(s.alive());
        assert_eq!(s.restarts(), 0);
        let payload = std::panic::catch_unwind(|| panic!("kaboom {}", 1)).unwrap_err();
        s.record_restart(payload.as_ref());
        assert_eq!(s.restarts(), 1);
        assert_eq!(s.last_panic().as_deref(), Some("kaboom 1"));
        s.mark_dead();
        assert!(!s.alive());
        s.mark_alive();
        assert!(s.alive());
    }

    #[test]
    fn panic_message_handles_str_and_string() {
        let p = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(3u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
