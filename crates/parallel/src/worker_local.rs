//! Lock-free per-worker state slots.
//!
//! The query pipeline reuses large scratch structures (hash accumulators,
//! candidate bitvectors over the whole point-id space) across queries. A
//! `Mutex<Vec<T>>` pool serializes every borrow/return through one lock —
//! exactly the kind of contention the PLSH paper's shared-nothing design
//! avoids. [`WorkerLocal`] replaces it with a fixed array of cache-padded
//! slots claimed by a single compare-and-swap: workers never block and
//! never queue. Claims scan linearly from slot 0, so a lone worker reuses
//! the same warm slot every time; under concurrency a failed claim costs
//! one CAS per occupied slot and values may migrate between slots — an
//! accepted trade for keeping the primitive free of thread identity
//! (workers here are scoped per batch).
//!
//! The pool's threads are scoped per batch (no stable worker identity), so
//! slots are claimed by CAS rather than indexed by a thread id; the
//! fast path is one uncontended CAS on a slot the worker already owns in
//! cache.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// One padded slot: the claim flag and value share a cache line that no
/// other slot touches, so claiming never false-shares with a neighbor.
#[repr(align(128))]
struct Slot<T> {
    busy: AtomicBool,
    value: UnsafeCell<Option<T>>,
}

/// A fixed set of lock-free slots holding per-worker values of type `T`.
///
/// ```
/// use plsh_parallel::{ThreadPool, WorkerLocal};
///
/// let mut locals: WorkerLocal<Vec<u64>> = WorkerLocal::new(4);
/// let pool = ThreadPool::new(4);
/// pool.parallel_tasks(0..100u64, |i| {
///     locals.with(Vec::new, |buf| buf.push(i));
/// });
/// let mut all: Vec<u64> = locals.drain().into_iter().flatten().collect();
/// all.sort_unstable();
/// assert_eq!(all, (0..100).collect::<Vec<u64>>());
/// ```
pub struct WorkerLocal<T> {
    slots: Box<[Slot<T>]>,
}

// SAFETY: a slot's value is only reached while its `busy` flag is held
// (acquire/release pairs order the accesses), so values move between
// threads but are never aliased.
unsafe impl<T: Send> Sync for WorkerLocal<T> {}
unsafe impl<T: Send> Send for WorkerLocal<T> {}

/// Releases a claimed slot even if the caller's closure panics.
struct ClaimGuard<'a>(&'a AtomicBool);

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

impl<T> WorkerLocal<T> {
    /// Creates `slots` empty slots (at least one). Size it to the worker
    /// count of the pool that will use it; extra concurrent users fall back
    /// to caller-provided fresh values, they never block.
    pub fn new(slots: usize) -> Self {
        Self {
            slots: (0..slots.max(1))
                .map(|_| Slot {
                    busy: AtomicBool::new(false),
                    value: UnsafeCell::new(None),
                })
                .collect(),
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Runs `f` with exclusive access to a slot's value, initializing the
    /// slot with `init` on first use. If every slot is momentarily claimed
    /// (more concurrent callers than slots), runs `f` on a fresh `init()`
    /// value and stores it back into a slot afterwards if one freed up —
    /// the call never blocks.
    pub fn with<R>(&self, init: impl FnOnce() -> T, f: impl FnOnce(&mut T) -> R) -> R {
        for slot in self.slots.iter() {
            if slot
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let _guard = ClaimGuard(&slot.busy);
                // SAFETY: the CAS above grants exclusive access until the
                // guard releases `busy`.
                let value = unsafe { &mut *slot.value.get() };
                if value.is_none() {
                    *value = Some(init());
                }
                return f(value.as_mut().expect("just initialized"));
            }
        }
        // All slots busy: degrade to a throwaway value, then try to park it.
        let mut value = init();
        let r = f(&mut value);
        let _ = self.put(value);
        r
    }

    /// Removes and returns a stored value, if any slot holds one.
    pub fn take(&self) -> Option<T> {
        for slot in self.slots.iter() {
            if slot
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let _guard = ClaimGuard(&slot.busy);
                // SAFETY: exclusive access via the claimed `busy` flag.
                let v = unsafe { (*slot.value.get()).take() };
                if v.is_some() {
                    return v;
                }
            }
        }
        None
    }

    /// Stores `value` into the first empty slot; hands it back if every
    /// slot is full or claimed.
    pub fn put(&self, value: T) -> Option<T> {
        for slot in self.slots.iter() {
            if slot
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let _guard = ClaimGuard(&slot.busy);
                // SAFETY: exclusive access via the claimed `busy` flag.
                let stored = unsafe { &mut *slot.value.get() };
                if stored.is_none() {
                    *stored = Some(value);
                    return None;
                }
            }
        }
        Some(value)
    }

    /// Drains every stored value (exclusive access, so no atomics needed).
    pub fn drain(&mut self) -> Vec<T> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.value.get_mut().take())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn take_put_round_trip() {
        let wl: WorkerLocal<String> = WorkerLocal::new(2);
        assert!(wl.take().is_none());
        assert!(wl.put("a".into()).is_none());
        assert!(wl.put("b".into()).is_none());
        // Both slots full: the value comes back.
        assert_eq!(wl.put("c".into()), Some("c".to_string()));
        let mut got = vec![wl.take().unwrap(), wl.take().unwrap()];
        got.sort();
        assert_eq!(got, vec!["a".to_string(), "b".to_string()]);
        assert!(wl.take().is_none());
    }

    #[test]
    fn with_initializes_once_per_slot() {
        let inits = AtomicUsize::new(0);
        let wl: WorkerLocal<usize> = WorkerLocal::new(1);
        for _ in 0..10 {
            wl.with(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0
                },
                |v| *v += 1,
            );
        }
        assert_eq!(inits.load(Ordering::Relaxed), 1, "slot value is reused");
        let mut wl = wl;
        assert_eq!(wl.drain(), vec![10]);
    }

    #[test]
    fn concurrent_with_never_loses_updates() {
        let pool = ThreadPool::new(4);
        let wl: WorkerLocal<u64> = WorkerLocal::new(4);
        pool.parallel_tasks(0..1000u64, |_| {
            wl.with(|| 0, |v| *v += 1);
        });
        let mut wl = wl;
        let total: u64 = wl.drain().into_iter().sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn overflow_falls_back_without_blocking() {
        // One slot, many threads: everything still completes.
        let pool = ThreadPool::new(4);
        let wl: WorkerLocal<Vec<u64>> = WorkerLocal::new(1);
        let done = AtomicUsize::new(0);
        pool.parallel_tasks(0..200u64, |i| {
            wl.with(Vec::new, |buf| buf.push(i));
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn zero_slots_clamps_to_one() {
        let wl: WorkerLocal<u8> = WorkerLocal::new(0);
        assert_eq!(wl.num_slots(), 1);
        assert!(wl.put(7).is_none());
        assert_eq!(wl.take(), Some(7));
    }
}
