//! A small synchronous work-stealing pool.
//!
//! Every entry point blocks until the submitted batch of work has fully
//! completed, so closures may freely borrow from the caller's stack frame.
//! Internally each batch is executed on `crossbeam::thread::scope` threads;
//! per-item work is distributed round-robin into per-worker deques and idle
//! workers steal from their peers, which is exactly the "task queueing with
//! work stealing" scheme the PLSH paper uses for load balancing across
//! queries and first-level partitions.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::deque::{Steal, Stealer, Worker};

/// A fixed-size pool of worker threads with work stealing.
///
/// The pool is cheap to construct (threads are spawned per batch through
/// scoped threads, so an idle pool consumes no OS resources) and is `Sync`,
/// so it can be shared behind a reference by every component of a PLSH node.
///
/// # Examples
///
/// ```
/// let pool = plsh_parallel::ThreadPool::new(4);
/// let mut squares = pool.parallel_map(0..8usize, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// squares.clear();
/// ```
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Returns a sensible default worker count for this machine.
///
/// This is `std::thread::available_parallelism()` with a fallback of 1, the
/// value `T` in the paper's performance model (Section 5, "T: number of
/// hardware threads").
pub fn current_num_threads_hint() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::new(current_num_threads_hint())
    }
}

impl ThreadPool {
    /// Creates a pool that runs batches on `num_threads` workers.
    ///
    /// A value of `1` (or `0`, which is clamped to `1`) executes all work
    /// inline on the calling thread with no synchronization overhead; this
    /// is the baseline of the thread-scaling experiment (Figure 8).
    pub fn new(num_threads: usize) -> Self {
        Self {
            num_threads: num_threads.max(1),
        }
    }

    /// Number of worker threads used for each batch.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` over every item of `items`, one task per item, with work
    /// stealing between workers.
    ///
    /// Items are distributed round-robin across per-worker deques; each
    /// worker drains its own deque and then steals from peers. Use this for
    /// coarse, variable-cost tasks (a query, a first-level partition).
    pub fn parallel_tasks<T, I, F>(&self, items: I, f: F)
    where
        T: Send,
        I: IntoIterator<Item = T>,
        F: Fn(T) + Sync,
    {
        let items: Vec<T> = items.into_iter().collect();
        if items.is_empty() {
            return;
        }
        if self.num_threads == 1 || items.len() == 1 {
            for item in items {
                f(item);
            }
            return;
        }

        let workers: Vec<Worker<T>> = (0..self.num_threads).map(|_| Worker::new_lifo()).collect();
        for (i, item) in items.into_iter().enumerate() {
            workers[i % workers.len()].push(item);
        }
        let stealers: Vec<Stealer<T>> = workers.iter().map(Worker::stealer).collect();
        let stealers = &stealers;
        let f = &f;

        crossbeam::thread::scope(|scope| {
            for (me, worker) in workers.into_iter().enumerate() {
                scope.spawn(move |_| {
                    // Drain the local deque first, then steal round-robin.
                    while let Some(item) = worker.pop() {
                        f(item);
                    }
                    'steal: loop {
                        for (other, stealer) in stealers.iter().enumerate() {
                            if other == me {
                                continue;
                            }
                            loop {
                                match stealer.steal() {
                                    Steal::Success(item) => {
                                        f(item);
                                        // Go back to the local deque in case
                                        // the task spawned follow-up work.
                                        while let Some(item) = worker.pop() {
                                            f(item);
                                        }
                                    }
                                    Steal::Empty => break,
                                    Steal::Retry => continue,
                                }
                            }
                        }
                        // One full pass found every peer empty: done.
                        if stealers
                            .iter()
                            .enumerate()
                            .all(|(other, s)| other == me || s.is_empty())
                        {
                            break 'steal;
                        }
                    }
                });
            }
        })
        .expect("plsh-parallel worker panicked");
    }

    /// Runs `f` over `items` and collects the results in input order.
    ///
    /// Like [`parallel_tasks`](Self::parallel_tasks) but each task produces a
    /// value; per-worker results are gathered locally and merged once at the
    /// end, so there is no per-item synchronization on the result vector.
    pub fn parallel_map<T, R, I, F>(&self, items: I, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        I: IntoIterator<Item = T>,
        F: Fn(T) -> R + Sync,
    {
        let items: Vec<T> = items.into_iter().collect();
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.num_threads == 1 || n == 1 {
            return items.into_iter().map(f).collect();
        }

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        {
            let slot_refs: Vec<SlotPtr<R>> = slots.iter_mut().map(SlotPtr::new).collect();
            self.parallel_tasks(
                items.into_iter().zip(slot_refs),
                |(item, slot): (T, SlotPtr<R>)| {
                    // SAFETY: each slot pointer is moved into exactly one
                    // task, so every slot is written by at most one worker,
                    // and `parallel_tasks` blocks until all tasks finish.
                    unsafe { slot.write(f(item)) };
                },
            );
        }
        slots
            .into_iter()
            .map(|r| r.expect("parallel_map task did not produce a result"))
            .collect()
    }

    /// Splits `start..end` into chunks of at most `grain` indices and runs
    /// `f` on each chunk, handing chunks out dynamically.
    ///
    /// This is the primitive behind the histogram and scatter passes of the
    /// table builder: uniform-cost loops over data items where static
    /// chunking would suffice, but dynamic chunking also absorbs OS noise.
    pub fn parallel_for<F>(&self, start: usize, end: usize, grain: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if start >= end {
            return;
        }
        let grain = grain.max(1);
        if self.num_threads == 1 || end - start <= grain {
            f(start..end);
            return;
        }
        let cursor = AtomicUsize::new(start);
        let cursor = &cursor;
        let f = &f;
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.num_threads {
                scope.spawn(move |_| loop {
                    let lo = cursor.fetch_add(grain, Ordering::Relaxed);
                    if lo >= end {
                        break;
                    }
                    let hi = (lo + grain).min(end);
                    f(lo..hi);
                });
            }
        })
        .expect("plsh-parallel worker panicked");
    }

    /// Runs `nthreads` copies of `f`, passing each its worker index.
    ///
    /// This is the "thread owns a contiguous slice of the input plus a
    /// private histogram" pattern from the parallel partitioning algorithm
    /// of Kim et al. \[21\] that PLSH construction Step I1 follows.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.num_threads == 1 {
            f(0);
            return;
        }
        let f = &f;
        crossbeam::thread::scope(|scope| {
            for t in 0..self.num_threads {
                scope.spawn(move |_| f(t));
            }
        })
        .expect("plsh-parallel worker panicked");
    }

    /// Evenly splits `0..len` into one contiguous range per worker.
    ///
    /// Helper for [`broadcast`](Self::broadcast)-style algorithms; ranges
    /// differ in length by at most one and concatenate to `0..len`.
    pub fn even_ranges(&self, len: usize) -> Vec<Range<usize>> {
        even_ranges(len, self.num_threads)
    }
}

/// Evenly splits `0..len` into `parts` contiguous ranges (some possibly
/// empty when `len < parts`).
pub(crate) fn even_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for t in 0..parts {
        let sz = base + usize::from(t < extra);
        out.push(lo..lo + sz);
        lo += sz;
    }
    debug_assert_eq!(lo, len);
    out
}

/// A send-able raw pointer to a result slot; see `parallel_map`.
struct SlotPtr<R>(*mut Option<R>);

impl<R> SlotPtr<R> {
    fn new(slot: &mut Option<R>) -> Self {
        Self(slot as *mut Option<R>)
    }

    /// # Safety
    /// Caller must guarantee the slot outlives the write and that no other
    /// thread accesses the same slot concurrently.
    unsafe fn write(self, value: R) {
        *self.0 = Some(value);
    }
}

// SAFETY: the pointer is only dereferenced inside `parallel_map`, which
// moves each SlotPtr into exactly one task and joins all tasks before the
// backing vector is touched again.
unsafe impl<R: Send> Send for SlotPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.parallel_map(0..257usize, |i| i * 3);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn parallel_map_empty() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.parallel_map(std::iter::empty::<usize>(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn broadcast_runs_each_worker_once() {
        let pool = ThreadPool::new(5);
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn even_ranges_cover_and_balance() {
        for len in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = even_ranges(len, parts);
                assert_eq!(ranges.len(), parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn pool_zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_threads(), 1);
    }

    #[test]
    fn tasks_with_uneven_costs_all_complete() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        pool.parallel_tasks(0..64usize, |i| {
            // Simulate skewed task costs (hot buckets in LSH partitions).
            let spins = if i % 16 == 0 { 10_000 } else { 10 };
            let mut acc = 0u64;
            for s in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
            }
            std::hint::black_box(acc);
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }
}
