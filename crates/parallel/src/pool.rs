//! A synchronous pool with persistent workers and two priority classes.
//!
//! Every entry point blocks until the submitted batch of work has fully
//! completed, so closures may freely borrow from the caller's stack frame.
//! Unlike the first-generation pool (which spawned scoped threads per
//! batch), workers are spawned once at construction and parked on a
//! condvar between batches; a submitted batch becomes a shared claim
//! counter that the submitter *and* the workers drain together, which is
//! the "task queueing with work stealing" scheme the PLSH paper uses for
//! load balancing, minus the per-batch thread start/stop cost.
//!
//! Batches carry a [`Priority`]. Foreground batches (query fan-out) are
//! always claimed ahead of background batches (merge steps), and a worker
//! executing background work re-checks for foreground arrivals between
//! items, so a long compaction cannot occupy the machine while queries
//! wait — the interference discipline behind the paper's claim that
//! streaming PLSH sustains query rates *during* ingestion.

use std::any::Any;
use std::collections::VecDeque;
use std::mem::ManuallyDrop;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::affinity;

/// Scheduling class of a submitted batch.
///
/// Foreground batches are always dispatched ahead of background batches,
/// and workers executing a background batch yield to newly arrived
/// foreground work between items (the background batch's submitter keeps
/// draining it, so background work still makes progress — it just stops
/// monopolizing the workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive work: query fan-out, ingest hashing.
    #[default]
    Foreground,
    /// Throughput work that must not crowd out queries: merge steps,
    /// background rebuilds.
    Background,
}

/// Returns a sensible default worker count for this machine.
///
/// This is `std::thread::available_parallelism()` with a fallback of 1, the
/// value `T` in the paper's performance model (Section 5, "T: number of
/// hardware threads").
pub fn current_num_threads_hint() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A fixed-size pool of persistent worker threads with priority-aware
/// work claiming.
///
/// `new(n)` spawns `n - 1` long-lived workers; the thread that submits a
/// batch acts as the n-th executor, so closures never outlive the call
/// and no result needs to be sent across threads. A pool of one thread
/// (or zero, which clamps to one) runs everything inline with no
/// synchronization at all. Clones share the same workers; use
/// [`background`](Self::background) to obtain a handle that submits at
/// background priority.
///
/// # Examples
///
/// ```
/// let pool = plsh_parallel::ThreadPool::new(4);
/// let mut squares = pool.parallel_map(0..8usize, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// squares.clear();
/// ```
pub struct ThreadPool {
    num_threads: usize,
    priority: Priority,
    shared: Option<Arc<PoolCore>>,
}

impl Clone for ThreadPool {
    fn clone(&self) -> Self {
        Self {
            num_threads: self.num_threads,
            priority: self.priority,
            shared: self.shared.clone(),
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads)
            .field("priority", &self.priority)
            .field("persistent", &self.shared.is_some())
            .finish()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::new(current_num_threads_hint())
    }
}

impl ThreadPool {
    /// Creates a pool that runs batches on `num_threads` workers.
    ///
    /// A value of `1` (or `0`, which is clamped to `1`) executes all work
    /// inline on the calling thread with no synchronization overhead; this
    /// is the baseline of the thread-scaling experiment (Figure 8). Larger
    /// values spawn `num_threads - 1` persistent workers (the submitter is
    /// the remaining executor).
    pub fn new(num_threads: usize) -> Self {
        Self::with_affinity(num_threads, &[])
    }

    /// Like [`new`](Self::new), but worker thread `i` pins itself to
    /// `cores[i % cores.len()]` at startup (round-robin over `cores`).
    ///
    /// Pinning is best-effort: it silently degrades to unpinned workers
    /// when `PLSH_PIN=off`, on a single-threaded host, or when the kernel
    /// rejects the mask (see the crate's `affinity` module). An empty
    /// `cores` slice spawns unpinned workers.
    pub fn with_affinity(num_threads: usize, cores: &[usize]) -> Self {
        let num_threads = num_threads.max(1);
        let shared = if num_threads > 1 {
            Some(Arc::new(PoolCore::spawn(num_threads - 1, cores)))
        } else {
            None
        };
        Self {
            num_threads,
            priority: Priority::Foreground,
            shared,
        }
    }

    /// Number of worker threads used for each batch (including the
    /// submitting thread).
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The priority class this handle submits at.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// A handle to the same workers that submits at `priority`.
    pub fn with_priority(&self, priority: Priority) -> ThreadPool {
        let mut p = self.clone();
        p.priority = priority;
        p
    }

    /// A handle to the same workers that submits at background priority:
    /// its batches run only when no foreground batch is pending, and
    /// workers abandon them between items when foreground work arrives.
    pub fn background(&self) -> ThreadPool {
        self.with_priority(Priority::Background)
    }

    /// How many of this pool's workers successfully pinned themselves to
    /// a core (0 for inline pools or when pinning is disabled).
    pub fn pinned_workers(&self) -> usize {
        self.shared
            .as_ref()
            .map_or(0, |s| s.inner.pinned.load(Ordering::Relaxed))
    }

    /// True when this handle executes everything inline on the caller.
    fn inline(&self) -> bool {
        self.num_threads <= 1 || self.shared.is_none()
    }

    /// Submits `n` index-addressed work items and blocks until all have
    /// executed. The submitting thread participates in execution, so
    /// progress is guaranteed even if every worker is busy elsewhere.
    ///
    /// This is the single primitive under every public entry point.
    fn run_batch<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.inline() || n == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let core = self.shared.as_ref().expect("checked by inline()");
        // SAFETY contract for the type-erased batch: `ctx` borrows `f`,
        // which lives on this stack frame. `run_batch` must not return
        // before every claim on the batch has finished, which the
        // completion wait below guarantees; after `next >= n` no further
        // `run` call can start, so a stale Arc left in the queue is inert.
        let batch = Arc::new(BatchCore {
            run: run_erased::<F>,
            ctx: &f as *const F as *const (),
            n,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        core.inner.enqueue(batch.clone(), self.priority);
        // The submitter drains its own batch non-preemptibly: yielding to
        // foreground work is the workers' job, while the submitter's only
        // path to returning is finishing this batch.
        execute_batch(&batch, None);
        let mut done = batch.done.lock().expect("pool poisoned");
        while !*done {
            done = batch.done_cv.wait(done).expect("pool poisoned");
        }
        drop(done);
        let payload = batch.panic.lock().expect("pool poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs `f` over every item of `items`, one task per item.
    ///
    /// Items are claimed dynamically by the submitter and the pool's
    /// workers, so variable-cost tasks (a query, a first-level partition)
    /// balance automatically.
    pub fn parallel_tasks<T, I, F>(&self, items: I, f: F)
    where
        T: Send,
        I: IntoIterator<Item = T>,
        F: Fn(T) + Sync,
    {
        let items: Vec<T> = items.into_iter().collect();
        if items.is_empty() {
            return;
        }
        if self.inline() || items.len() == 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let mut items: Vec<ManuallyDrop<T>> = items.into_iter().map(ManuallyDrop::new).collect();
        let n = items.len();
        let base = ItemsPtr(items.as_mut_ptr());
        let base = &base;
        self.run_batch(n, move |i| {
            // SAFETY: run_batch hands out each index in 0..n exactly once
            // (a fetch_add claim counter), and a batch always drains fully
            // — even past a panicking item — so every element is taken
            // exactly once and the ManuallyDrop vec frees only storage.
            let item = unsafe { ManuallyDrop::take(&mut *base.0.add(i)) };
            f(item);
        });
    }

    /// Runs `f` over `items` and collects the results in input order.
    ///
    /// Like [`parallel_tasks`](Self::parallel_tasks) but each task
    /// produces a value, written straight into its pre-sized output slot
    /// with no per-item synchronization.
    pub fn parallel_map<T, R, I, F>(&self, items: I, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        I: IntoIterator<Item = T>,
        F: Fn(T) -> R + Sync,
    {
        let items: Vec<T> = items.into_iter().collect();
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.inline() || n == 1 {
            return items.into_iter().map(f).collect();
        }

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        {
            let slot_refs: Vec<SlotPtr<R>> = slots.iter_mut().map(SlotPtr::new).collect();
            self.parallel_tasks(
                items.into_iter().zip(slot_refs),
                |(item, slot): (T, SlotPtr<R>)| {
                    // SAFETY: each slot pointer is moved into exactly one
                    // task, so every slot is written by at most one worker,
                    // and `parallel_tasks` blocks until all tasks finish.
                    unsafe { slot.write(f(item)) };
                },
            );
        }
        slots
            .into_iter()
            .map(|r| r.expect("parallel_map task did not produce a result"))
            .collect()
    }

    /// Splits `start..end` into chunks of at most `grain` indices and runs
    /// `f` on each chunk, handing chunks out dynamically.
    ///
    /// This is the primitive behind the histogram and scatter passes of the
    /// table builder: uniform-cost loops over data items where static
    /// chunking would suffice, but dynamic chunking also absorbs OS noise.
    pub fn parallel_for<F>(&self, start: usize, end: usize, grain: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if start >= end {
            return;
        }
        let grain = grain.max(1);
        if self.inline() || end - start <= grain {
            f(start..end);
            return;
        }
        let chunks = (end - start).div_ceil(grain);
        self.run_batch(chunks, |c| {
            let lo = start + c * grain;
            let hi = (lo + grain).min(end);
            f(lo..hi);
        });
    }

    /// Runs `num_threads` copies of `f`, passing each its stripe index in
    /// `0..num_threads`.
    ///
    /// This is the "thread owns a contiguous slice of the input plus a
    /// private histogram" pattern from the parallel partitioning algorithm
    /// of Kim et al. \[21\] that PLSH construction Step I1 follows. Each
    /// stripe index runs exactly once; stripes must not synchronize with
    /// each other (no barriers), since an executor may run several
    /// stripes back to back.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.inline() {
            f(0);
            return;
        }
        self.run_batch(self.num_threads, f);
    }

    /// Evenly splits `0..len` into one contiguous range per worker.
    ///
    /// Helper for [`broadcast`](Self::broadcast)-style algorithms; ranges
    /// differ in length by at most one and concatenate to `0..len`.
    pub fn even_ranges(&self, len: usize) -> Vec<Range<usize>> {
        even_ranges(len, self.num_threads)
    }
}

/// Evenly splits `0..len` into `parts` contiguous ranges (some possibly
/// empty when `len < parts`).
pub(crate) fn even_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for t in 0..parts {
        let sz = base + usize::from(t < extra);
        out.push(lo..lo + sz);
        lo += sz;
    }
    debug_assert_eq!(lo, len);
    out
}

/// Type-erased trampoline: recovers the concrete closure from `ctx`.
///
/// # Safety
/// `ctx` must point at a live `F` for the whole time the owning batch has
/// unclaimed or running items; `run_batch` guarantees this by blocking
/// until the batch completes.
unsafe fn run_erased<F: Fn(usize) + Sync>(ctx: *const (), i: usize) {
    (*(ctx as *const F))(i);
}

/// The shared, type-erased state of one submitted batch.
///
/// `next` is the claim counter: an executor claims item `next++` and runs
/// it; once `next >= n` the batch is exhausted and only bookkeeping
/// remains. `completed` counts finished items; whoever finishes the last
/// one latches `done` and wakes the submitter. A panicking item is caught,
/// its payload stored (first wins), and the batch *still drains fully* so
/// sibling items — and the owned values behind `parallel_tasks` — are
/// never leaked; the submitter re-throws after the wait.
struct BatchCore {
    run: unsafe fn(*const (), usize),
    ctx: *const (),
    n: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `ctx` is only dereferenced through `run` for claimed item
// indices, and `run_batch` keeps the referent alive until the batch has
// fully completed. All other fields are Sync primitives.
unsafe impl Send for BatchCore {}
unsafe impl Sync for BatchCore {}

impl BatchCore {
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }
}

/// Claims and runs items of `batch` until it is exhausted — or, when
/// `yield_signal` is given (background execution on a worker), until
/// foreground work shows up, checked between items.
fn execute_batch(batch: &BatchCore, yield_signal: Option<&AtomicUsize>) {
    loop {
        if let Some(fg_pending) = yield_signal {
            if fg_pending.load(Ordering::Relaxed) > 0 {
                return;
            }
        }
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.n {
            return;
        }
        // SAFETY: index `i` was claimed exactly once and the batch (hence
        // `ctx`) is alive: its submitter is blocked until completion.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (batch.run)(batch.ctx, i) }));
        if let Err(payload) = outcome {
            let mut slot = batch.panic.lock().expect("pool poisoned");
            slot.get_or_insert(payload);
        }
        if batch.completed.fetch_add(1, Ordering::AcqRel) + 1 == batch.n {
            let mut done = batch.done.lock().expect("pool poisoned");
            *done = true;
            batch.done_cv.notify_all();
        }
    }
}

/// Two-class scheduler state: foreground batches are always dispatched
/// before background ones.
struct SchedState {
    fg: VecDeque<Arc<BatchCore>>,
    bg: VecDeque<Arc<BatchCore>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<SchedState>,
    work_cv: Condvar,
    /// Foreground batches enqueued and not yet observed exhausted; while
    /// nonzero, workers abandon background batches between items. May
    /// transiently overcount after a foreground batch drains (until a
    /// worker pops the husk), which only costs one spurious queue visit.
    fg_pending: AtomicUsize,
    /// Workers of this pool that successfully pinned to a core.
    pinned: AtomicUsize,
}

impl Inner {
    fn enqueue(&self, batch: Arc<BatchCore>, priority: Priority) {
        let mut s = self.state.lock().expect("pool poisoned");
        match priority {
            Priority::Foreground => {
                self.fg_pending.fetch_add(1, Ordering::Relaxed);
                s.fg.push_back(batch);
            }
            Priority::Background => s.bg.push_back(batch),
        }
        drop(s);
        self.work_cv.notify_all();
    }

    /// Pops exhausted batches, then returns the frontmost claimable batch
    /// (foreground first) with its priority.
    fn next_runnable(&self, s: &mut SchedState) -> Option<(Arc<BatchCore>, Priority)> {
        while let Some(b) = s.fg.front() {
            if b.exhausted() {
                s.fg.pop_front();
                self.fg_pending.fetch_sub(1, Ordering::Relaxed);
            } else {
                return Some((b.clone(), Priority::Foreground));
            }
        }
        while let Some(b) = s.bg.front() {
            if b.exhausted() {
                s.bg.pop_front();
            } else {
                return Some((b.clone(), Priority::Background));
            }
        }
        None
    }
}

/// The spawned side of a persistent pool: shared scheduler plus worker
/// join handles. Dropping the last pool handle shuts the workers down.
struct PoolCore {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl PoolCore {
    fn spawn(workers: usize, cores: &[usize]) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(SchedState {
                fg: VecDeque::new(),
                bg: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            fg_pending: AtomicUsize::new(0),
            pinned: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let inner = inner.clone();
            let pin_to = if cores.is_empty() {
                None
            } else {
                Some(cores[w % cores.len()])
            };
            let handle = std::thread::Builder::new()
                .name(format!("plsh-pool-{w}"))
                .spawn(move || worker_loop(inner, pin_to))
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        Self {
            inner,
            handles: Mutex::new(handles),
        }
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut s = self.inner.state.lock().expect("pool poisoned");
            s.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for h in self.handles.lock().expect("pool poisoned").drain(..) {
            let _ = h.join();
        }
    }
}

/// How many pool workers process-wide have successfully pinned.
static WORKERS_PINNED: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of pool workers currently pinned to a core.
pub fn pinned_worker_count() -> usize {
    WORKERS_PINNED.load(Ordering::Relaxed)
}

fn worker_loop(inner: Arc<Inner>, pin_to: Option<usize>) {
    let did_pin = pin_to.is_some_and(affinity::pin_current_thread);
    if did_pin {
        inner.pinned.fetch_add(1, Ordering::Relaxed);
        WORKERS_PINNED.fetch_add(1, Ordering::Relaxed);
    }
    loop {
        let claimed = {
            let mut s = inner.state.lock().expect("pool poisoned");
            loop {
                if let Some(c) = inner.next_runnable(&mut s) {
                    break Some(c);
                }
                if s.shutdown {
                    break None;
                }
                s = inner.work_cv.wait(s).expect("pool poisoned");
            }
        };
        let Some((batch, priority)) = claimed else {
            if did_pin {
                // Keep the global pinned gauge honest across pool drops.
                WORKERS_PINNED.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        };
        match priority {
            Priority::Foreground => execute_batch(&batch, None),
            Priority::Background => execute_batch(&batch, Some(&inner.fg_pending)),
        }
    }
}

/// A send-able raw pointer to a result slot; see `parallel_map`.
struct SlotPtr<R>(*mut Option<R>);

impl<R> SlotPtr<R> {
    fn new(slot: &mut Option<R>) -> Self {
        Self(slot as *mut Option<R>)
    }

    /// # Safety
    /// Caller must guarantee the slot outlives the write and that no other
    /// thread accesses the same slot concurrently.
    unsafe fn write(self, value: R) {
        *self.0 = Some(value);
    }
}

// SAFETY: the pointer is only dereferenced inside `parallel_map`, which
// moves each SlotPtr into exactly one task and joins all tasks before the
// backing vector is touched again.
unsafe impl<R: Send> Send for SlotPtr<R> {}

/// A shareable base pointer into the `ManuallyDrop` item buffer of
/// `parallel_tasks`.
struct ItemsPtr<T>(*mut ManuallyDrop<T>);

// SAFETY: each element behind the pointer is taken by exactly one claimed
// index (see `parallel_tasks`), and the buffer outlives the blocking
// `run_batch` call.
unsafe impl<T: Send> Send for ItemsPtr<T> {}
unsafe impl<T: Send> Sync for ItemsPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.parallel_map(0..257usize, |i| i * 3);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn parallel_map_empty() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.parallel_map(std::iter::empty::<usize>(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn broadcast_runs_each_stripe_once() {
        let pool = ThreadPool::new(5);
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn even_ranges_cover_and_balance() {
        for len in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = even_ranges(len, parts);
                assert_eq!(ranges.len(), parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn pool_zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_threads(), 1);
        assert_eq!(pool.pinned_workers(), 0);
    }

    #[test]
    fn tasks_with_uneven_costs_all_complete() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        pool.parallel_tasks(0..64usize, |i| {
            // Simulate skewed task costs (hot buckets in LSH partitions).
            let spins = if i % 16 == 0 { 10_000 } else { 10 };
            let mut acc = 0u64;
            for s in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
            }
            std::hint::black_box(acc);
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn owned_items_are_consumed_exactly_once() {
        let pool = ThreadPool::new(3);
        let drops = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let items: Vec<Counted> = (0..97).map(|_| Counted(drops.clone())).collect();
        pool.parallel_tasks(items, drop);
        assert_eq!(drops.load(Ordering::Relaxed), 97);
    }

    #[test]
    fn panic_in_task_propagates_and_batch_drains() {
        let pool = ThreadPool::new(4);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = ran.clone();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_tasks(0..40usize, |i| {
                if i == 7 {
                    panic!("task 7 exploded");
                }
                ran2.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Every non-panicking sibling still ran: the batch drains fully.
        assert_eq!(ran.load(Ordering::Relaxed), 39);
        // And the pool is still usable afterwards.
        let out = pool.parallel_map(0..8usize, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn background_batches_complete() {
        let pool = ThreadPool::new(4);
        let bg = pool.background();
        assert_eq!(bg.priority(), Priority::Background);
        let total = AtomicUsize::new(0);
        bg.parallel_tasks(0..128usize, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn foreground_preempts_background_between_items() {
        // A long-running background batch must not starve a foreground
        // batch submitted from another thread. The background submitter
        // keeps draining its own batch, so both finish.
        let pool = ThreadPool::new(2);
        let bg_pool = pool.background();
        let fg_done = Arc::new(AtomicUsize::new(0));
        let fg_done2 = fg_done.clone();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                bg_pool.parallel_tasks(0..256usize, |_| {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                });
            });
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                pool.parallel_map(0..32usize, |i| i);
                fg_done2.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(fg_done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = ThreadPool::new(3);
        let inner_pool = pool.clone();
        let total = AtomicUsize::new(0);
        pool.parallel_tasks(0..6usize, |_| {
            inner_pool.parallel_for(0, 50, 8, |r| {
                total.fetch_add(r.len(), Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 50);
    }

    #[test]
    fn clones_share_workers() {
        let pool = ThreadPool::new(4);
        let clone = pool.clone();
        drop(pool);
        // The clone keeps the workers alive and functional.
        let out = clone.parallel_map(0..16usize, |i| i * 2);
        assert_eq!(out[15], 30);
    }
}
