//! An epoch pointer: lock-free `Arc` snapshots with a generation counter.
//!
//! The streaming engine publishes immutable views (static tables + sealed
//! delta generations) that queries must pin consistently while inserts,
//! seals, and merges replace the view concurrently. [`EpochPtr`] provides
//! exactly that: writers install a new `Arc<T>` with [`store`], readers
//! obtain a consistent `Arc<T>` snapshot with [`load`] without ever
//! blocking, and a monotonically increasing generation number names each
//! published epoch.
//!
//! The implementation is the classic *left-right* scheme (no external
//! crates): two slots each hold an `Arc<T>` plus a reader count. The
//! generation's low bit selects the **current** slot; a writer installs the
//! next epoch into the *other* slot — after waiting for that slot's reader
//! count to drain — and then bumps the generation. A reader increments the
//! current slot's count, re-checks the generation, clones the `Arc`, and
//! decrements. The re-check makes the race harmless: if a writer published
//! in between, the reader observes the generation change, backs off, and
//! retries on the (new) current slot. Readers therefore never wait on a
//! lock and hold a slot only for the nanoseconds an `Arc` clone takes;
//! writers (already serialized by a tiny internal mutex — publishes are
//! rare: seals and merges) spin only until in-flight clones of the
//! *previous* epoch finish.
//!
//! All atomics use `SeqCst`: publishes are orders of magnitude rarer than
//! loads, and the straightforward ordering keeps the proof obligations
//! local to this file.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One slot of the left-right pair.
#[repr(align(128))]
struct Slot<T> {
    /// Readers currently cloning this slot's `Arc`.
    readers: AtomicUsize,
    /// The epoch value; written only by the (serialized) writer while the
    /// slot is not current and its reader count is zero.
    value: UnsafeCell<Arc<T>>,
}

/// An atomically swappable `Arc<T>` with lock-free readers and a
/// generation counter (see the module docs).
///
/// ```
/// use std::sync::Arc;
/// use plsh_parallel::EpochPtr;
///
/// let p = EpochPtr::new(Arc::new(vec![1, 2, 3]));
/// let (snapshot, gen0) = p.load();
/// assert_eq!(*snapshot, vec![1, 2, 3]);
/// let gen1 = p.store(Arc::new(vec![4]));
/// assert!(gen1 > gen0);
/// assert_eq!(*snapshot, vec![1, 2, 3], "pinned snapshots are immutable");
/// assert_eq!(*p.load().0, vec![4]);
/// ```
pub struct EpochPtr<T> {
    /// Monotonic epoch number; `gen & 1` selects the current slot.
    gen: AtomicU64,
    slots: [Slot<T>; 2],
    /// Serializes writers (publishes are rare; readers never touch this).
    writer: Mutex<()>,
}

// SAFETY: `value` is only written by the single writer (serialized by
// `writer`) while the target slot is non-current and has zero readers, and
// only read (cloned) by readers that registered in `readers` and re-checked
// the generation — the protocol in `load`/`store` below ensures the writer
// waits for those readers before reusing the slot.
unsafe impl<T: Send + Sync> Send for EpochPtr<T> {}
unsafe impl<T: Send + Sync> Sync for EpochPtr<T> {}

impl<T> EpochPtr<T> {
    /// Creates an epoch pointer at generation 0 holding `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            gen: AtomicU64::new(0),
            slots: [
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(initial.clone()),
                },
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(initial),
                },
            ],
            writer: Mutex::new(()),
        }
    }

    /// The generation of the most recently published epoch.
    pub fn generation(&self) -> u64 {
        self.gen.load(SeqCst)
    }

    /// Pins the current epoch: returns a clone of its `Arc` and the
    /// generation it was published at. Never blocks; retries only while a
    /// concurrent [`store`](Self::store) lands in between (rare and cheap).
    pub fn load(&self) -> (Arc<T>, u64) {
        loop {
            let g = self.gen.load(SeqCst);
            let slot = &self.slots[(g & 1) as usize];
            slot.readers.fetch_add(1, SeqCst);
            // Re-check: if the generation moved, a writer may be (or soon
            // be) rewriting the slot we registered on — back off and retry.
            if self.gen.load(SeqCst) == g {
                // SAFETY: we registered as a reader of the slot that is
                // still current, so a writer targeting this slot (which can
                // only happen after another generation bump) waits for our
                // count to drop before touching the value.
                let snapshot = unsafe { (*slot.value.get()).clone() };
                slot.readers.fetch_sub(1, SeqCst);
                return (snapshot, g);
            }
            slot.readers.fetch_sub(1, SeqCst);
        }
    }

    /// Convenience: pins the current epoch and discards the generation.
    pub fn snapshot(&self) -> Arc<T> {
        self.load().0
    }

    /// Publishes `next` as the new epoch; returns its generation.
    ///
    /// The swap itself is a single generation bump; the only waiting is for
    /// readers still cloning the epoch published two stores ago (a window
    /// of nanoseconds).
    pub fn store(&self, next: Arc<T>) -> u64 {
        let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let g = self.gen.load(SeqCst);
        let target = &self.slots[((g + 1) & 1) as usize];
        Self::await_readers(target);
        // SAFETY: the slot is non-current, reader-free, and we hold the
        // writer lock — nobody else can access `value` until the bump.
        unsafe { *target.value.get() = next };
        self.gen.store(g + 1, SeqCst);
        g + 1
    }

    /// Waits for stragglers still cloning the retired epoch out of the
    /// target slot. New readers register only on the current slot, so this
    /// count can only drain. Spin briefly, then yield: a straggler is a
    /// reader preempted mid-clone, and on few-core machines it needs the
    /// CPU this writer is occupying to finish.
    fn await_readers(slot: &Slot<T>) {
        let mut spins = 0u32;
        while slot.readers.load(SeqCst) != 0 {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Publishes the value produced by `f` from the current epoch, as one
    /// serialized read-modify-write (writers are mutually excluded, so the
    /// closure sees the latest epoch).
    pub fn rcu(&self, f: impl FnOnce(&T) -> Arc<T>) -> u64 {
        let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let g = self.gen.load(SeqCst);
        let current = &self.slots[(g & 1) as usize];
        // SAFETY: writers are serialized and readers only clone, so a
        // shared borrow of the current slot's value is safe here.
        let next = f(unsafe { &*current.value.get() });
        let target = &self.slots[((g + 1) & 1) as usize];
        Self::await_readers(target);
        // SAFETY: as in `store`.
        unsafe { *target.value.get() = next };
        self.gen.store(g + 1, SeqCst);
        g + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_store_round_trip() {
        let p = EpochPtr::new(Arc::new(1u32));
        assert_eq!(p.generation(), 0);
        let (v0, g0) = p.load();
        assert_eq!((*v0, g0), (1, 0));
        assert_eq!(p.store(Arc::new(2)), 1);
        assert_eq!(p.store(Arc::new(3)), 2);
        let (v, g) = p.load();
        assert_eq!((*v, g), (3, 2));
        assert_eq!(*v0, 1, "old pins stay valid");
    }

    #[test]
    fn rcu_sees_latest_epoch() {
        let p = EpochPtr::new(Arc::new(vec![0u32]));
        for i in 1..=5u32 {
            p.rcu(|prev| {
                let mut next = prev.clone();
                next.push(i);
                Arc::new(next)
            });
        }
        assert_eq!(*p.snapshot(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.generation(), 5);
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_epoch() {
        // Epochs are (gen, gen) pairs; a torn or stale-slot read would
        // surface as mismatched halves.
        let p = Arc::new(EpochPtr::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last_gen = 0u64;
                    while !stop.load(SeqCst) {
                        let (v, g) = p.load();
                        assert_eq!(v.0, v.1, "torn epoch");
                        assert!(g >= last_gen, "generation went backwards");
                        last_gen = g;
                    }
                })
            })
            .collect();
        for i in 1..=10_000u64 {
            p.store(Arc::new((i, i)));
        }
        stop.store(true, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(p.generation(), 10_000);
    }

    #[test]
    fn writers_are_serialized() {
        let p = Arc::new(EpochPtr::new(Arc::new(0u64)));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        p.rcu(|prev| Arc::new(*prev + 1));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(*p.snapshot(), 4000, "rcu increments must not be lost");
        assert_eq!(p.generation(), 4000);
    }
}
