//! Optional CPU affinity for long-lived workers.
//!
//! Shard-per-core deployments pin each shard's ingest and merge workers to
//! the shard's core so background work never migrates onto the cores
//! serving queries (the paper's "one thread per core" discipline from the
//! Section 5 experimental setup, applied to the streaming stack). Pinning
//! is strictly an optimization and must never be a correctness dependency:
//!
//! * the `PLSH_PIN=off` (or `0` / `false`) environment variable disables
//!   every pin request process-wide;
//! * a host with a single hardware thread has nothing to pin across, so
//!   requests are skipped;
//! * a failing `sched_setaffinity` (restricted cgroup cpusets, exotic
//!   kernels, non-Linux targets) degrades to a logged no-op — the first
//!   failure prints one diagnostic to stderr, later ones stay silent.
//!
//! The syscall is declared inline (the same pattern as the `madvise` hint
//! in `plsh-core`'s util module) so the crate stays free of FFI
//! dependencies.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Hardware threads the OS reports for this process (the paper's `T`).
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Tri-state cache of the `PLSH_PIN` decision: 0 = unresolved, 1 = on,
/// 2 = off.
static PIN_STATE: AtomicU8 = AtomicU8::new(0);

/// One-shot latch for the "pinning failed" diagnostic.
static PIN_WARNED: AtomicBool = AtomicBool::new(false);

/// Decides whether an explicit `PLSH_PIN` setting disables pinning.
/// Anything other than `off` / `0` / `false` (case-insensitive) leaves
/// pinning enabled; unset means enabled.
fn pin_allowed_from(env: Option<&str>) -> bool {
    match env {
        Some(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        None => true,
    }
}

/// Whether pin requests are currently honored: `PLSH_PIN` not set to
/// off, and the host actually has more than one hardware thread. The env
/// decision is cached on first call.
pub fn pinning_enabled() -> bool {
    let allowed = match PIN_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let allowed = pin_allowed_from(std::env::var("PLSH_PIN").ok().as_deref());
            PIN_STATE.store(if allowed { 1 } else { 2 }, Ordering::Relaxed);
            allowed
        }
    };
    allowed && host_threads() >= 2
}

/// Pins the calling thread to `core`. Returns `true` only when the
/// affinity mask was actually installed; every failure mode (pinning
/// disabled, single-threaded host, out-of-range core, denied syscall)
/// returns `false` and the caller proceeds unpinned.
pub fn pin_current_thread(core: usize) -> bool {
    if !pinning_enabled() {
        return false;
    }
    let ok = pin_syscall(core);
    if !ok && !PIN_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "plsh: pinning thread to core {core} failed (restricted cpuset?); \
             continuing unpinned"
        );
    }
    ok
}

#[cfg(target_os = "linux")]
fn pin_syscall(core: usize) -> bool {
    // Inline declaration instead of a libc dependency; glibc and musl both
    // export this symbol with the kernel's cpu_set_t ABI (a plain bitmask).
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    const MASK_WORDS: usize = 16; // 1024 CPUs, glibc's CPU_SETSIZE
    if core >= MASK_WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[core / 64] |= 1u64 << (core % 64);
    // SAFETY: the mask outlives the call and the size matches the buffer.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

#[cfg(not(target_os = "linux"))]
fn pin_syscall(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_off_values_disable_pinning() {
        for v in ["off", "OFF", "0", "false", " False "] {
            assert!(!pin_allowed_from(Some(v)), "{v:?} must disable pinning");
        }
        for v in ["on", "1", "true", ""] {
            assert!(pin_allowed_from(Some(v)), "{v:?} must keep pinning on");
        }
        assert!(pin_allowed_from(None));
    }

    #[test]
    fn out_of_range_core_degrades_to_noop() {
        // Whatever the host and env, a preposterous core id must come back
        // as a plain `false` — never a panic or an error.
        assert!(!pin_current_thread(usize::MAX));
    }

    #[test]
    fn pin_current_thread_never_panics_on_core_zero() {
        // On a pinnable host this succeeds; on a 1-thread host or under
        // PLSH_PIN=off it is a no-op. Both are fine — the contract is
        // "bool, no panic".
        let _ = pin_current_thread(0);
    }

    #[test]
    fn host_threads_is_positive() {
        assert!(host_threads() >= 1);
    }
}
