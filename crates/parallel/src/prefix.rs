//! Prefix-sum helpers for the radix-partition table builder.
//!
//! The three-step partitioning algorithm of Kim et al. \[21\] that PLSH uses
//! for hash-table construction needs an exclusive cumulative sum over the
//! (per-thread) bucket histograms to turn counts into scatter offsets. These
//! helpers are deliberately simple sequential kernels: histograms have at
//! most `T * 2^(k/2)` entries (a few thousand), so a parallel scan would be
//! pure overhead.

/// Replaces `counts` with its exclusive prefix sum and returns the total.
///
/// `counts[i]` becomes the sum of all original values at indices `< i`; the
/// returned value is the sum of every original element. This is the
/// "cumulative sum of the histogram to obtain starting offsets" step of the
/// partition pass (paper Section 5.1.2, step 2).
///
/// # Examples
///
/// ```
/// let mut h = vec![2u32, 0, 3, 1];
/// let total = plsh_parallel::exclusive_prefix_sum_in_place(&mut h);
/// assert_eq!(h, vec![0, 2, 2, 5]);
/// assert_eq!(total, 6);
/// ```
pub fn exclusive_prefix_sum_in_place(counts: &mut [u32]) -> u32 {
    let mut running = 0u32;
    for c in counts.iter_mut() {
        let v = *c;
        *c = running;
        running += v;
    }
    running
}

/// Returns the exclusive prefix sum of `counts` as a new vector with one
/// extra trailing element holding the grand total.
///
/// The result has `counts.len() + 1` entries, so `result[i]..result[i+1]`
/// is exactly the half-open range of output slots owned by bucket `i` —
/// the layout used for static LSH table offsets.
pub fn exclusive_prefix_sum(counts: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut running = 0u32;
    for &c in counts {
        out.push(running);
        running += c;
    }
    out.push(running);
    out
}

/// Replaces `values` with its inclusive prefix sum and returns the total.
pub fn inclusive_prefix_sum(values: &mut [u64]) -> u64 {
    let mut running = 0u64;
    for v in values.iter_mut() {
        running += *v;
        *v = running;
    }
    running
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exclusive_in_place_basic() {
        let mut h = vec![1u32, 2, 3];
        assert_eq!(exclusive_prefix_sum_in_place(&mut h), 6);
        assert_eq!(h, vec![0, 1, 3]);
    }

    #[test]
    fn exclusive_in_place_empty() {
        let mut h: Vec<u32> = vec![];
        assert_eq!(exclusive_prefix_sum_in_place(&mut h), 0);
    }

    #[test]
    fn exclusive_with_total_bucket_ranges() {
        let offs = exclusive_prefix_sum(&[2, 0, 3]);
        assert_eq!(offs, vec![0, 2, 2, 5]);
        // Bucket 1 is empty and bucket 2 owns slots 2..5.
        assert_eq!(offs[1]..offs[2], 2..2);
        assert_eq!(offs[2]..offs[3], 2..5);
    }

    #[test]
    fn inclusive_basic() {
        let mut v = vec![5u64, 1, 0, 4];
        assert_eq!(inclusive_prefix_sum(&mut v), 10);
        assert_eq!(v, vec![5, 6, 6, 10]);
    }

    proptest! {
        #[test]
        fn exclusive_matches_reference(counts in proptest::collection::vec(0u32..1000, 0..200)) {
            let offs = exclusive_prefix_sum(&counts);
            prop_assert_eq!(offs.len(), counts.len() + 1);
            let mut expect = 0u32;
            for (i, &c) in counts.iter().enumerate() {
                prop_assert_eq!(offs[i], expect);
                expect += c;
            }
            prop_assert_eq!(*offs.last().unwrap(), expect);

            let mut in_place = counts.clone();
            let total = exclusive_prefix_sum_in_place(&mut in_place);
            prop_assert_eq!(total, expect);
            prop_assert_eq!(&in_place[..], &offs[..counts.len()]);
        }
    }
}
