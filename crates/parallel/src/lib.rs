//! Work-stealing task pool and data-parallel primitives used throughout PLSH.
//!
//! The PLSH paper parallelizes table construction and query batches with the
//! "task queueing model" of Mohr et al. \[26\]: each unit of work (a
//! first-level partition during construction, a query during search) becomes
//! a task, and idle threads steal tasks from busy ones to keep load balanced.
//! This crate provides exactly that substrate:
//!
//! * [`ThreadPool`] — a fixed-size pool of *persistent* workers with a
//!   shared claim counter per batch and a two-class [`Priority`] scheduler:
//!   foreground batches (query fan-out) always dispatch ahead of background
//!   batches (merge steps), and workers abandon background work between
//!   items when foreground work arrives.
//! * [`ThreadPool::parallel_for`] — dynamic-chunked index-space parallelism
//!   used for the histogram/scatter passes of table construction.
//! * [`ThreadPool::parallel_tasks`] — one-task-per-item parallelism with
//!   dynamic claiming, used for per-query and per-partition work.
//! * [`affinity`] — best-effort `sched_setaffinity` core pinning for
//!   shard-per-core layouts, gated by `PLSH_PIN` and degrading to a logged
//!   no-op when the host or cgroup refuses.
//! * [`exclusive_prefix_sum`] and friends — the cumulative-sum step of the radix partition.
//! * [`WorkerLocal`] — lock-free cache-padded per-worker state slots, the
//!   zero-contention substrate for reusable query scratch.
//! * [`EpochPtr`] — an atomically swappable `Arc` with a generation
//!   counter and lock-free readers, the publication primitive behind the
//!   streaming engine's epoch-swapped tables.
//! * [`Backoff`] / [`WorkerStatus`] — bounded-exponential-backoff
//!   supervision primitives for the long-lived merge and ingest workers.
//!
//! The pool is deliberately small and synchronous: every entry point
//! blocks until all submitted work completes (the submitting thread
//! participates in execution), so callers never deal with futures or
//! detached lifetimes and closures may borrow the caller's stack. Panics
//! are caught per-task and re-thrown on the caller thread after the batch
//! drains, so a panicking task cannot deadlock the pool.

pub mod affinity;
mod epoch;
mod pool;
mod prefix;
mod supervisor;
mod worker_local;

pub use epoch::EpochPtr;
pub use pool::{current_num_threads_hint, pinned_worker_count, Priority, ThreadPool};
pub use prefix::{exclusive_prefix_sum, exclusive_prefix_sum_in_place, inclusive_prefix_sum};
pub use supervisor::{panic_message, Backoff, WorkerStatus};
pub use worker_local::WorkerLocal;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_simple_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.parallel_tasks(0..100usize, |_i| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0, hits.len(), 7, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        let pool = ThreadPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.parallel_for(5, 5, 16, |_range| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn single_threaded_pool_works() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.parallel_tasks(0..17usize, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 17);
    }
}
