//! Ablation benches for this implementation's own design choices (beyond
//! the paper's figures): delta-table bin layout (dense array vs hash map)
//! and hyperplane storage (materialized dense matrix vs on-the-fly
//! recomputation).

use criterion::{criterion_group, criterion_main, Criterion};
use plsh_bench::setup::{Fixture, Scale};
use plsh_core::engine::{Engine, EngineConfig};
use plsh_core::hash::{Hyperplanes, SketchMatrix};
use plsh_core::sparse::CrsMatrix;
use plsh_core::table::DeltaLayout;

fn bench_delta_layouts(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let n = f.corpus.len();
    let queries = &f.query_vecs()[..f.query_vecs().len().min(50)];

    let mut g = c.benchmark_group("ablation_delta_layout");
    g.sample_size(10);
    for (name, layout) in [
        ("direct_bins", DeltaLayout::Direct),
        ("sparse_bins", DeltaLayout::Sparse),
    ] {
        // Insert cost into an empty delta.
        g.bench_function(format!("{name}_insert_10pct"), |b| {
            b.iter_with_setup(
                || {
                    Engine::new(
                        EngineConfig::new(f.params.clone(), n)
                            .manual_merge()
                            .with_delta_layout(layout),
                        &f.pool,
                    )
                    .unwrap()
                },
                |e| {
                    e.insert_batch(&f.corpus.vectors()[..n / 10], &f.pool)
                        .unwrap();
                    e.delta_len()
                },
            )
        });
        // Query cost against a delta-only engine.
        let engine = Engine::new(
            EngineConfig::new(f.params.clone(), n)
                .manual_merge()
                .with_delta_layout(layout),
            &f.pool,
        )
        .unwrap();
        engine
            .insert_batch(&f.corpus.vectors()[..n / 10], &f.pool)
            .unwrap();
        g.bench_function(format!("{name}_query"), |b| {
            b.iter(|| engine.query_batch(queries, &f.pool).1.totals.matches)
        });
    }
    g.finish();
}

fn bench_hyperplane_storage(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let mut corpus = CrsMatrix::with_capacity(f.corpus.dim(), 2_000, 8);
    for v in &f.corpus.vectors()[..2_000] {
        corpus.push(v).unwrap();
    }
    let dense = Hyperplanes::new_dense(
        f.params.dim(),
        f.params.num_hashes(),
        f.params.seed(),
        &f.pool,
    );
    let lazy = Hyperplanes::new_on_the_fly(f.params.dim(), f.params.num_hashes(), f.params.seed());

    let mut g = c.benchmark_group("ablation_hyperplanes");
    g.sample_size(10);
    g.bench_function("dense_sketch_2k_docs", |b| {
        b.iter(|| {
            let mut sk = SketchMatrix::new(f.params.m(), f.params.half_bits());
            sk.append_from(&corpus, &dense, 0, &f.pool, true);
            sk.num_points()
        })
    });
    g.bench_function("on_the_fly_sketch_2k_docs", |b| {
        b.iter(|| {
            let mut sk = SketchMatrix::new(f.params.m(), f.params.half_bits());
            sk.append_from(&corpus, &lazy, 0, &f.pool, true);
            sk.num_points()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_delta_layouts, bench_hyperplane_storage);
criterion_main!(benches);
