//! Criterion micro-benchmark behind Figure 8: construction and query batch
//! across pool sizes. (On a single-core host the curve is flat; the bench
//! still exercises every parallel code path.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plsh_bench::setup::{Fixture, Scale};
use plsh_core::hash::{Hyperplanes, SketchMatrix};
use plsh_core::sparse::CrsMatrix;
use plsh_core::table::{BuildStrategy, StaticTables};
use plsh_parallel::ThreadPool;

fn bench_threads(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let mut corpus = CrsMatrix::with_capacity(f.corpus.dim(), f.corpus.len(), 8);
    for v in f.corpus.vectors() {
        corpus.push(v).unwrap();
    }
    let planes = Hyperplanes::new_dense(
        f.params.dim(),
        f.params.num_hashes(),
        f.params.seed(),
        &f.pool,
    );
    let mut sk = SketchMatrix::new(f.params.m(), f.params.half_bits());
    sk.append_from(&corpus, &planes, 0, &f.pool, true);
    let engine = f.static_engine();
    let queries = &f.query_vecs()[..f.query_vecs().len().min(100)];

    let mut g = c.benchmark_group("fig8_threads");
    g.sample_size(10);
    for t in [1usize, 2, 4] {
        let pool = ThreadPool::new(t);
        g.bench_with_input(BenchmarkId::new("build", t), &pool, |b, pool| {
            b.iter(|| StaticTables::build(&sk, BuildStrategy::TwoLevelShared, pool).memory_bytes())
        });
        g.bench_with_input(BenchmarkId::new("query_batch", t), &pool, |b, pool| {
            b.iter(|| engine.query_batch(queries, pool).1.totals.matches)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_threads);
criterion_main!(benches);
