//! Criterion micro-benchmark behind Figure 11 / Section 8.6: delta-table
//! insert chunks, merges, and queries against a mixed static+delta node.

use criterion::{criterion_group, criterion_main, Criterion};
use plsh_bench::setup::{Fixture, Scale};
use plsh_core::engine::{Engine, EngineConfig};

fn bench_streaming(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let n = f.corpus.len();
    let static_part = n * 9 / 10;
    let queries = &f.query_vecs()[..f.query_vecs().len().min(50)];

    let mut g = c.benchmark_group("fig11_streaming");
    g.sample_size(10);

    g.bench_function("insert_chunk_1pct", |b| {
        b.iter_with_setup(
            || {
                let mut e = Engine::new(
                    EngineConfig::new(f.params.clone(), n).manual_merge(),
                    &f.pool,
                )
                .unwrap();
                e.insert_batch(&f.corpus.vectors()[..static_part], &f.pool).unwrap();
                e.merge_delta(&f.pool);
                e
            },
            |mut e| {
                let chunk = n / 100;
                e.insert_batch(
                    &f.corpus.vectors()[static_part..static_part + chunk],
                    &f.pool,
                )
                .unwrap();
                e.delta_len()
            },
        )
    });

    g.bench_function("merge_full_delta", |b| {
        b.iter_with_setup(
            || {
                let mut e = Engine::new(
                    EngineConfig::new(f.params.clone(), n).manual_merge(),
                    &f.pool,
                )
                .unwrap();
                e.insert_batch(&f.corpus.vectors()[..static_part], &f.pool).unwrap();
                e.merge_delta(&f.pool);
                e.insert_batch(&f.corpus.vectors()[static_part..], &f.pool).unwrap();
                e
            },
            |mut e| {
                e.merge_delta(&f.pool);
                e.static_len()
            },
        )
    });

    // Query against a node with a full delta (worst case of Figure 11).
    let mut mixed = Engine::new(
        EngineConfig::new(f.params.clone(), n).manual_merge(),
        &f.pool,
    )
    .unwrap();
    mixed.insert_batch(&f.corpus.vectors()[..static_part], &f.pool).unwrap();
    mixed.merge_delta(&f.pool);
    mixed.insert_batch(&f.corpus.vectors()[static_part..], &f.pool).unwrap();
    let all_static = f.static_engine();

    g.bench_function("query_90pct_static_full_delta", |b| {
        b.iter(|| mixed.query_batch(queries, &f.pool).1.totals.matches)
    });
    g.bench_function("query_100pct_static", |b| {
        b.iter(|| all_static.query_batch(queries, &f.pool).1.totals.matches)
    });
    g.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
