//! Criterion micro-benchmark behind Figure 11 / Section 8.6: delta-table
//! insert chunks, merges, queries against a mixed static+delta node, and —
//! with the concurrent ingest path — query batches racing a live
//! background merge and a live ingest thread.

use criterion::{criterion_group, criterion_main, Criterion};
use plsh_bench::setup::{Fixture, Scale};
use plsh_core::engine::{Engine, EngineConfig};
use plsh_core::streaming::StreamingEngine;

fn bench_streaming(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let n = f.corpus.len();
    let static_part = n * 9 / 10;
    let queries = &f.query_vecs()[..f.query_vecs().len().min(50)];

    let mut g = c.benchmark_group("fig11_streaming");
    g.sample_size(10);

    g.bench_function("insert_chunk_1pct", |b| {
        b.iter_with_setup(
            || {
                let e = Engine::new(
                    EngineConfig::new(f.params.clone(), n).manual_merge(),
                    &f.pool,
                )
                .unwrap();
                e.insert_batch(&f.corpus.vectors()[..static_part], &f.pool)
                    .unwrap();
                e.merge_delta(&f.pool);
                e
            },
            |e| {
                let chunk = n / 100;
                e.insert_batch(
                    &f.corpus.vectors()[static_part..static_part + chunk],
                    &f.pool,
                )
                .unwrap();
                e.delta_len()
            },
        )
    });

    g.bench_function("merge_full_delta", |b| {
        b.iter_with_setup(
            || {
                let e = Engine::new(
                    EngineConfig::new(f.params.clone(), n).manual_merge(),
                    &f.pool,
                )
                .unwrap();
                e.insert_batch(&f.corpus.vectors()[..static_part], &f.pool)
                    .unwrap();
                e.merge_delta(&f.pool);
                e.insert_batch(&f.corpus.vectors()[static_part..], &f.pool)
                    .unwrap();
                e
            },
            |e| {
                e.merge_delta(&f.pool);
                e.static_len()
            },
        )
    });

    // Query against a node with a full delta (worst case of Figure 11).
    let mixed = Engine::new(
        EngineConfig::new(f.params.clone(), n).manual_merge(),
        &f.pool,
    )
    .unwrap();
    mixed
        .insert_batch(&f.corpus.vectors()[..static_part], &f.pool)
        .unwrap();
    mixed.merge_delta(&f.pool);
    mixed
        .insert_batch(&f.corpus.vectors()[static_part..], &f.pool)
        .unwrap();
    let all_static = f.static_engine();

    g.bench_function("query_90pct_static_full_delta", |b| {
        b.iter(|| mixed.query_batch(queries, &f.pool).1.totals.matches)
    });
    g.bench_function("query_100pct_static", |b| {
        b.iter(|| all_static.query_batch(queries, &f.pool).1.totals.matches)
    });

    // True overlap: query batches while a background merge of a full delta
    // builds on another thread. The merge is started once, outside the
    // timed region, and outlasts the sampled iterations (the build takes
    // several batch times); only `query_batch` is timed. Joins happen
    // after the measurement.
    let racing = StreamingEngine::new(
        EngineConfig::new(f.params.clone(), n).manual_merge(),
        f.pool.clone(),
    )
    .unwrap();
    racing
        .insert_batch(&f.corpus.vectors()[..static_part])
        .unwrap();
    racing.merge_now();
    racing
        .insert_batch(&f.corpus.vectors()[static_part..])
        .unwrap();
    racing.merge_in_background();
    g.bench_function("query_during_background_merge", |b| {
        b.iter(|| racing.query_batch(queries).1.totals.matches)
    });
    racing.wait_for_merge();

    // True overlap: query batches while an ingest thread streams the last
    // 10% in (insert ‖ query; auto-merges fire in the background at eta).
    // Again only `query_batch` is timed; the ingest is sized to outlast
    // the sampled iterations and joined after the measurement.
    let live = StreamingEngine::new(
        EngineConfig::new(f.params.clone(), n).with_eta(0.05),
        f.pool.clone(),
    )
    .unwrap();
    live.insert_batch(&f.corpus.vectors()[..static_part])
        .unwrap();
    live.wait_for_merge();
    let writer = {
        let ingest = live.clone();
        let tail: Vec<_> = f.corpus.vectors()[static_part..].to_vec();
        std::thread::spawn(move || {
            for chunk in tail.chunks(100) {
                ingest.insert_batch(chunk).unwrap();
            }
        })
    };
    g.bench_function("query_during_live_ingest", |b| {
        b.iter(|| live.query_batch(queries).1.totals.matches)
    });
    writer.join().unwrap();
    live.wait_for_merge();
    g.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
