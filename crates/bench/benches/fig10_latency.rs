//! Criterion micro-benchmark behind Figure 10: batch size vs batch time
//! (latency); throughput is batch/size over the measured time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plsh_bench::setup::{Fixture, Scale};

fn bench_latency(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let engine = f.static_engine();
    let queries = f.query_vecs();

    let mut g = c.benchmark_group("fig10_latency");
    g.sample_size(10);
    for batch in [10usize, 30, 100, 200] {
        let batch = batch.min(queries.len());
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                engine
                    .query_batch(&queries[..batch], &f.pool)
                    .1
                    .totals
                    .matches
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
