//! Criterion micro-benchmark behind Table 2: per-query latency of PLSH vs
//! the exhaustive and inverted-index baselines on the quick fixture.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use plsh_baselines::{ExhaustiveSearch, InvertedIndex};
use plsh_bench::setup::{Fixture, Scale};

fn bench_table2(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let engine = f.static_engine();
    let exhaustive = ExhaustiveSearch::new(f.corpus.dim(), f.corpus.vectors(), 0.9);
    let inverted = InvertedIndex::new(f.corpus.dim(), f.corpus.vectors(), 0.9);
    let queries = f.query_vecs();

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    let mut qi = 0usize;
    g.bench_function("plsh_per_query", |b| {
        b.iter_batched(
            || {
                qi = (qi + 1) % queries.len();
                &queries[qi]
            },
            |q| engine.query(q),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("inverted_per_query", |b| {
        b.iter_batched(
            || {
                qi = (qi + 1) % queries.len();
                &queries[qi]
            },
            |q| inverted.query(q),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("exhaustive_per_query", |b| {
        b.iter_batched(
            || {
                qi = (qi + 1) % queries.len();
                &queries[qi]
            },
            |q| exhaustive.query(q),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
