//! Criterion micro-benchmark behind Figure 4: static-table construction
//! under the four creation ablation levels.

use criterion::{criterion_group, criterion_main, Criterion};
use plsh_bench::setup::{Fixture, Scale};
use plsh_core::hash::{Hyperplanes, SketchMatrix};
use plsh_core::sparse::CrsMatrix;
use plsh_core::table::{BuildStrategy, StaticTables};

fn bench_creation(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let mut corpus = CrsMatrix::with_capacity(f.corpus.dim(), f.corpus.len(), 8);
    for v in f.corpus.vectors() {
        corpus.push(v).unwrap();
    }
    let planes = Hyperplanes::new_dense(
        f.params.dim(),
        f.params.num_hashes(),
        f.params.seed(),
        &f.pool,
    );
    let mut sk = SketchMatrix::new(f.params.m(), f.params.half_bits());
    sk.append_from(&corpus, &planes, 0, &f.pool, true);

    let mut g = c.benchmark_group("fig4_creation");
    g.sample_size(10);
    g.bench_function("hashing_vectorized", |b| {
        b.iter(|| {
            let mut s = SketchMatrix::new(f.params.m(), f.params.half_bits());
            s.append_from(&corpus, &planes, 0, &f.pool, true);
            s.num_points()
        })
    });
    g.bench_function("hashing_naive", |b| {
        b.iter(|| {
            let mut s = SketchMatrix::new(f.params.m(), f.params.half_bits());
            s.append_from(&corpus, &planes, 0, &f.pool, false);
            s.num_points()
        })
    });
    for (name, strategy) in [
        ("build_one_level", BuildStrategy::OneLevel),
        ("build_two_level", BuildStrategy::TwoLevel),
        ("build_two_level_shared", BuildStrategy::TwoLevelShared),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| StaticTables::build(&sk, strategy, &f.pool).memory_bytes())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_creation);
criterion_main!(benches);
