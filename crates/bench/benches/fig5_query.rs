//! Criterion micro-benchmark behind Figure 5: the query batch under each
//! cumulative optimization level.

use criterion::{criterion_group, criterion_main, Criterion};
use plsh_bench::setup::{Fixture, Scale};
use plsh_core::query::QueryStrategy;
use plsh_core::SearchRequest;

fn bench_query_levels(c: &mut Criterion) {
    let f = Fixture::build(Scale::Quick, 1);
    let engine = f.static_engine();
    let queries = &f.query_vecs()[..f.query_vecs().len().min(100)];

    let mut g = c.benchmark_group("fig5_query");
    g.sample_size(10);
    for (name, strategy) in QueryStrategy::ablation_levels() {
        let label = name.replace([' ', '+'], "_");
        let req = SearchRequest::batch(queries.to_vec())
            .with_strategy(strategy)
            .per_query_pipeline()
            .with_stats();
        g.bench_function(&label, |b| {
            b.iter(|| {
                let resp = engine.search(&req, &f.pool).expect("valid request");
                (
                    resp.results.len(),
                    resp.stats.expect("stats requested").totals.matches,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_query_levels);
criterion_main!(benches);
