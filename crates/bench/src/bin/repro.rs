//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run -p plsh-bench --release --bin repro -- all
//! cargo run -p plsh-bench --release --bin repro -- table2 fig5 recall
//! PLSH_SCALE=quick cargo run -p plsh-bench --release --bin repro -- all
//! ```

use plsh_bench::experiments::*;
use plsh_bench::setup::{Fixture, Scale};

const EXPERIMENTS: &[&str] = &[
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "streaming",
    "recall",
    "throughput",
    "scaling",
    "recovery",
    "serve",
    "faults",
    "soak",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--quick] <experiment>... | all");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        eprintln!("env: PLSH_SCALE=quick|full (default full), PLSH_THREADS=<n>");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    let mut scale = Scale::from_env();
    let mut selected: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other if EXPERIMENTS.contains(&other) => selected.push(other.to_string()),
            other => {
                eprintln!(
                    "unknown experiment '{other}'; known: {}",
                    EXPERIMENTS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    selected.dedup();

    let threads = std::env::var("PLSH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(plsh_parallel::current_num_threads_hint);

    eprintln!(
        "# PLSH reproduction — scale: {:?} (N={}, D={}, {} queries, k={}, m={}), {} thread(s)",
        scale,
        scale.num_docs(),
        scale.vocab(),
        scale.num_queries(),
        scale.k_m().0,
        scale.k_m().1,
        threads
    );
    eprintln!("# building fixture (corpus + queries)...");
    let fixture = Fixture::build(scale, threads);
    eprintln!(
        "# corpus ready: {} docs, avg {:.2} words/doc, L = {} tables\n",
        fixture.corpus.len(),
        fixture.corpus.avg_nnz(),
        fixture.params.l()
    );

    for name in &selected {
        eprintln!("# running {name}...");
        match name.as_str() {
            "table2" => table2::run(&fixture).print(),
            "fig4" => fig4_creation::run(&fixture).print(),
            "fig5" => fig5_query::run(&fixture).print(),
            "fig6" => fig6_model::run(&fixture).print(),
            "fig7" => fig7_params::run(&fixture).print(),
            "fig8" => fig8_threads::run(&fixture).print(),
            "fig9" => fig9_nodes::run(&fixture).print(),
            "fig10" => fig10_latency::run(&fixture).print(),
            "fig11" => fig11_streaming::run(&fixture).print(),
            "streaming" => {
                streaming_overhead::run(&fixture).print();
                let live = streaming_live::run(&fixture);
                live.print();
                let path = streaming_live::output_path();
                match live.write_json(&path) {
                    Ok(()) => eprintln!("# wrote {path}"),
                    Err(e) => {
                        eprintln!("# FAILED to write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "recall" => recall::run(&fixture).print(),
            "serve" => {
                let r = serve::run(&fixture);
                r.print();
                let path = serve::output_path();
                match r.write_json(&path) {
                    Ok(()) => eprintln!("# wrote {path}"),
                    Err(e) => {
                        eprintln!("# FAILED to write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "scaling" => {
                let r = scaling::run(&fixture);
                r.print();
                let path = scaling::output_path();
                match r.write_json(&path) {
                    Ok(()) => eprintln!("# wrote {path}"),
                    Err(e) => {
                        eprintln!("# FAILED to write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "throughput" => {
                let r = throughput::run(&fixture);
                r.print();
                let path = throughput::output_path();
                match r.write_json(&path) {
                    Ok(()) => eprintln!("# wrote {path}"),
                    Err(e) => {
                        eprintln!("# FAILED to write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "recovery" => {
                let r = recovery::run(&fixture);
                r.print();
                let path = recovery::output_path();
                match r.write_json(&path) {
                    Ok(()) => eprintln!("# wrote {path}"),
                    Err(e) => {
                        eprintln!("# FAILED to write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "faults" => {
                let r = faults::run(&fixture);
                r.print();
                let path = faults::output_path();
                match r.write_json(&path) {
                    Ok(()) => eprintln!("# wrote {path}"),
                    Err(e) => {
                        eprintln!("# FAILED to write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "soak" => {
                let r = soak::run(&fixture);
                r.print();
                let path = soak::output_path();
                match r.write_json(&path) {
                    Ok(()) => eprintln!("# wrote {path}"),
                    Err(e) => {
                        eprintln!("# FAILED to write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            _ => unreachable!("validated above"),
        }
    }
}
