//! Shared experiment fixtures: corpus, queries, engines, and scale presets.

use plsh_core::engine::{Engine, EngineConfig};
use plsh_core::params::PlshParams;
use plsh_core::sparse::SparseVector;
use plsh_parallel::ThreadPool;
use plsh_workload::{CorpusConfig, QuerySet, SyntheticCorpus};

/// Experiment scale. The paper's single-node workload is 10.5 M tweets
/// over a 500 K vocabulary with 1000 queries; these presets scale it to
/// what one container core can turn around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast preset for CI and criterion benches (N = 20 K, D = 20 K).
    Quick,
    /// The default experiment scale (N = 100 K, D = 50 K, 1000 queries).
    Full,
}

impl Scale {
    /// Reads `PLSH_SCALE=quick|full` from the environment (default full).
    pub fn from_env() -> Self {
        match std::env::var("PLSH_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Number of documents `N`.
    pub fn num_docs(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }

    /// Vocabulary size `D`.
    pub fn vocab(self) -> u32 {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 50_000,
        }
    }

    /// Query count (paper: 1000).
    pub fn num_queries(self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Full => 1000,
        }
    }

    /// Scaled `(k, m)` (the paper's 10.5 M-point node uses k=16, m=40;
    /// these keep expected bucket occupancy `N/2^k` in the same regime).
    pub fn k_m(self) -> (u32, u32) {
        match self {
            Scale::Quick => (12, 16),
            Scale::Full => (14, 16),
        }
    }
}

/// A ready-to-run experiment fixture.
pub struct Fixture {
    /// The synthetic corpus.
    pub corpus: SyntheticCorpus,
    /// The query set (random database subset, paper protocol).
    pub queries: QuerySet,
    /// The LSH parameters.
    pub params: PlshParams,
    /// The worker pool.
    pub pool: ThreadPool,
    /// The scale preset used.
    pub scale: Scale,
}

impl Fixture {
    /// Builds the standard fixture for `scale` with `threads` workers.
    pub fn build(scale: Scale, threads: usize) -> Self {
        let corpus = SyntheticCorpus::generate(CorpusConfig {
            num_docs: scale.num_docs(),
            vocab_size: scale.vocab(),
            mean_words: 7.2,
            zipf_exponent: 1.0,
            duplicate_fraction: 0.2,
            seed: 0xC0FFEE,
        });
        let queries = QuerySet::sample_from_corpus(&corpus, scale.num_queries(), 0xBEEF);
        let (k, m) = scale.k_m();
        let params = PlshParams::builder(corpus.dim())
            .k(k)
            .m(m)
            .radius(0.9)
            .delta(0.1)
            .seed(0x5EED)
            .build()
            .expect("preset parameters are valid");
        Self {
            corpus,
            queries,
            params,
            pool: ThreadPool::new(threads),
            scale,
        }
    }

    /// Query vectors as a slice.
    pub fn query_vecs(&self) -> &[SparseVector] {
        self.queries.queries()
    }

    /// Builds a fully-merged (all-static) engine over the whole corpus.
    pub fn static_engine(&self) -> Engine {
        self.engine_with(EngineConfig::new(self.params.clone(), self.corpus.len()).manual_merge())
    }

    /// Builds an engine with a custom config, loading the whole corpus and
    /// merging once.
    pub fn engine_with(&self, config: EngineConfig) -> Engine {
        let e = Engine::new(config, &self.pool).expect("fixture config is valid");
        e.insert_batch(self.corpus.vectors(), &self.pool)
            .expect("corpus fits engine capacity");
        e.merge_delta(&self.pool);
        e
    }
}

/// Formats a `Duration` as fractional milliseconds.
pub fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Durably writes a BENCH report: contents go to a `.tmp` sibling, are
/// fsynced, renamed over `path`, and the parent directory is fsynced so
/// the rename itself survives a crash. CI tails and the check scripts
/// therefore never observe a half-written report.
pub fn write_json_atomic(path: &str, json: &str) -> std::io::Result<()> {
    use std::io::Write;
    let target = std::path::Path::new(path);
    let tmp = target.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, target)?;
    if let Some(dir) = target.parent() {
        let dir = if dir.as_os_str().is_empty() {
            std::path::Path::new(".")
        } else {
            dir
        };
        // Directory fsync is advisory on some filesystems; a failure to
        // open the dir must not fail the write that already landed.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Nearest-rank percentile of a set of batch latencies, in fractional
/// milliseconds (0.0 for an empty sample). Sorts in place.
pub fn percentile_ms(latencies: &mut [std::time::Duration], pct: u32) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let rank = (latencies.len() * pct as usize).div_ceil(100);
    ms(latencies[rank.saturating_sub(1).min(latencies.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fixture_builds_and_answers() {
        let mut f = Fixture::build(Scale::Quick, 1);
        // Shrink further for a unit test.
        f.corpus = SyntheticCorpus::generate(CorpusConfig::tiny(500, 1));
        f.queries = QuerySet::sample_from_corpus(&f.corpus, 10, 2);
        f.params = PlshParams::builder(f.corpus.dim())
            .k(8)
            .m(8)
            .radius(0.9)
            .seed(3)
            .build()
            .unwrap();
        let e = f.static_engine();
        assert_eq!(e.static_len(), 500);
        for (i, q) in f.query_vecs().iter().enumerate() {
            let src = f.queries.source_id(i).unwrap();
            let hits = e.query(q);
            assert!(hits.iter().any(|h| h.index == src), "query {i}");
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        use std::time::Duration;
        let mut lat: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&mut lat, 99), 99.0);
        assert_eq!(percentile_ms(&mut lat, 50), 50.0);
        assert_eq!(percentile_ms(&mut lat, 100), 100.0);
        let mut one = vec![Duration::from_millis(7)];
        assert_eq!(percentile_ms(&mut one, 99), 7.0);
        assert_eq!(percentile_ms(&mut [], 99), 0.0);
    }

    #[test]
    fn scale_presets_are_consistent() {
        assert!(Scale::Quick.num_docs() < Scale::Full.num_docs());
        let (k, m) = Scale::Full.k_m();
        assert!(k % 2 == 0 && m >= 2);
    }
}
