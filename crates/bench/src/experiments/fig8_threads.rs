//! Figure 8: single-node scaling with thread count.
//!
//! Paper: 1 → 16 threads (8 cores × SMT) gives 7.2× on initialization and
//! 7.8× on querying. This container exposes a single core, so absolute
//! scaling cannot reproduce; the experiment still sweeps pool sizes to
//! exercise every parallel code path and reports the (flat, on one core)
//! curve, which EXPERIMENTS.md discusses.

use std::time::Duration;

use plsh_core::engine::EngineConfig;
use plsh_parallel::ThreadPool;

use crate::setup::{ms, Fixture, Scale};

/// One thread-count measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Pool size.
    pub threads: usize,
    /// Full index construction time (hashing + insertion).
    pub init: Duration,
    /// Query batch time.
    pub query: Duration,
}

/// The sweep results.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Points in thread order.
    pub points: Vec<Point>,
    /// Queries per batch.
    pub queries: usize,
}

/// Sweeps pool sizes, rebuilding the index with each.
pub fn run(f: &Fixture) -> Fig8 {
    let threads: &[usize] = match f.scale {
        Scale::Quick => &[1, 2, 4],
        Scale::Full => &[1, 2, 4, 8],
    };
    let points = threads
        .iter()
        .map(|&t| {
            let pool = ThreadPool::new(t);
            let config = EngineConfig::new(f.params.clone(), f.corpus.len()).manual_merge();
            let t0 = std::time::Instant::now();
            let engine = plsh_core::engine::Engine::new(config, &pool).expect("valid config");
            engine
                .insert_batch(f.corpus.vectors(), &pool)
                .expect("corpus fits");
            engine.merge_delta(&pool);
            let init = t0.elapsed();
            let _ = engine.query_batch(&f.query_vecs()[..f.query_vecs().len().min(32)], &pool);
            let (_, stats) = engine.query_batch(f.query_vecs(), &pool);
            Point {
                threads: t,
                init,
                query: stats.elapsed,
            }
        })
        .collect();
    Fig8 {
        points,
        queries: f.query_vecs().len(),
    }
}

impl Fig8 {
    /// Speedups of the last point over the first `(init, query)`.
    pub fn speedups(&self) -> (f64, f64) {
        let first = &self.points[0];
        let last = self.points.last().unwrap();
        (
            first.init.as_secs_f64() / last.init.as_secs_f64().max(1e-12),
            first.query.as_secs_f64() / last.query.as_secs_f64().max(1e-12),
        )
    }

    /// Prints the sweep.
    pub fn print(&self) {
        println!("## Figure 8 — thread scaling on a single node\n");
        println!(
            "| Threads | Initialization | Query batch ({}) |",
            self.queries
        );
        println!("|---:|---:|---:|");
        for p in &self.points {
            println!(
                "| {} | {:.0} ms | {:.0} ms |",
                p.threads,
                ms(p.init),
                ms(p.query)
            );
        }
        let (si, sq) = self.speedups();
        println!(
            "\nSpeedup {}→{} threads: init {:.2}x, query {:.2}x (paper on 8 physical cores: 7.2x / 7.8x; this host exposes {} core(s))\n",
            self.points[0].threads,
            self.points.last().unwrap().threads,
            si,
            sq,
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        );
    }
}
