//! Served-traffic experiment: the HTTP wire surface under concurrent
//! client load, recorded to `BENCH_server.json`.
//!
//! The in-process engine benchmarks measure what the algorithm can do;
//! this one measures what a *service* built on it delivers. A
//! `StreamingEngine` pre-loaded to 50% static sits behind `plsh_server`
//! on a real ephemeral-port listener, and N client threads speak raw
//! HTTP/1.1 at it over loopback sockets with keep-alive:
//!
//! * **during-ingest phase** — search clients hammer `POST /search`
//!   while a separate client streams the other 50% of the corpus in via
//!   paced `POST /ingest` batches (so the wire carries the write path
//!   too, and background merges fire mid-measurement),
//! * **quiesced phase** — the same search load after ingest drains and
//!   the final merge folds the delta.
//!
//! Client-side per-request latency gives p50/p99 (the server's own
//! histogram can't see connect/queue/socket time); shed (429/503) and
//! error responses are counted separately — at any scale the expected
//! error rate is zero, and shedding only appears if the host is too
//! slow for the configured load. A final `answers_match` pass replays
//! queries through a fresh connection and requires the wire hit lists
//! to be *bit-identical* (node, index, f32 distance) to in-process
//! `SearchBackend::search` answers on the same engine.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use plsh_core::engine::EngineConfig;
use plsh_core::search::SearchRequest;
use plsh_core::sparse::SparseVector;
use plsh_core::streaming::StreamingEngine;
use plsh_server::{serve, Json, Server, ServerConfig};

use crate::setup::{percentile_ms, Fixture, Scale};

/// Search client threads (the ingest stream adds one more connection).
const CLIENTS: usize = 4;

/// Hits requested per wire search.
const TOP_K: usize = 10;

/// Queries replayed for the exactness check.
const MATCH_QUERIES: usize = 32;

/// Wall-time target for draining the ingest half over HTTP, per scale
/// (same pacing philosophy as the `streaming` experiment: an arrival
/// process, not a bulk load).
fn ingest_target_secs(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 4.0,
        Scale::Full => 20.0,
    }
}

/// Per-client request budget for the quiesced phase.
fn quiesced_requests_per_client(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 200,
        Scale::Full => 1_000,
    }
}

/// What one client thread observed.
#[derive(Default)]
struct ClientTally {
    ok: u64,
    shed: u64,
    errors: u64,
    latencies: Vec<Duration>,
}

/// One keep-alive HTTP/1.1 connection that transparently reconnects
/// when the server closes it (shed responses always close).
struct Conn {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

impl Conn {
    fn new(addr: SocketAddr) -> Conn {
        Conn { addr, stream: None }
    }

    /// One round-trip; returns the status code. Drops the connection on
    /// any transport error so the next call starts clean.
    fn request(&mut self, raw: &[u8]) -> std::io::Result<(u16, String)> {
        let result = self.try_request(raw);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn try_request(&mut self, raw: &[u8]) -> std::io::Result<(u16, String)> {
        if self.stream.is_none() {
            let s = TcpStream::connect(self.addr)?;
            s.set_read_timeout(Some(Duration::from_secs(30)))?;
            s.set_nodelay(true)?;
            self.stream = Some(BufReader::new(s));
        }
        let reader = self.stream.as_mut().expect("just connected");
        reader.get_ref().write_all(raw)?;

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("Content-Length: ") {
                content_length = v.trim().parse().unwrap_or(0);
            }
            if line.eq_ignore_ascii_case("connection: close") {
                close = true;
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        if close {
            self.stream = None;
        }
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}

/// A vector as wire JSON pairs: `[[dim,weight],...]`.
fn vector_json(v: &SparseVector) -> String {
    let pairs: Vec<String> = v
        .indices()
        .iter()
        .zip(v.values())
        .map(|(d, w)| format!("[{d},{w}]"))
        .collect();
    format!("[{}]", pairs.join(","))
}

fn post_bytes(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn search_bytes(q: &SparseVector) -> Vec<u8> {
    post_bytes(
        "/search",
        &format!("{{\"queries\": [{}], \"top_k\": {TOP_K}}}", vector_json(q)),
    )
}

/// Classifies one response into the tally. 429/503 are load shedding by
/// contract (Retry-After); anything else non-2xx is an error.
fn tally(t: &mut ClientTally, status: u16, latency: Duration) {
    t.latencies.push(latency);
    match status {
        200 => t.ok += 1,
        429 | 503 => t.shed += 1,
        _ => t.errors += 1,
    }
}

/// The measured report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Points pre-loaded (and merged) before the server starts.
    pub preload_points: usize,
    /// Points streamed in over `POST /ingest` during the load phase.
    pub ingest_points: usize,
    /// Vectors per ingest request.
    pub ingest_batch: usize,
    /// Search client threads.
    pub clients: usize,
    /// Completed search requests while ingest was live.
    pub requests_during_ingest: u64,
    /// Search throughput (requests/s) while ingesting.
    pub qps_during_ingest: f64,
    /// Search throughput (requests/s) quiesced.
    pub qps_quiesced: f64,
    /// Client-observed p50 request latency during ingest, ms.
    pub p50_ms_during_ingest: f64,
    /// Client-observed p99 request latency during ingest, ms.
    pub p99_ms_during_ingest: f64,
    /// Client-observed p50 request latency quiesced, ms.
    pub p50_ms_quiesced: f64,
    /// Client-observed p99 request latency quiesced, ms.
    pub p99_ms_quiesced: f64,
    /// Fraction of search requests answered 429/503 (load shedding).
    pub shed_rate: f64,
    /// Fraction of search requests that failed (non-2xx, non-shed).
    pub error_rate: f64,
    /// Sheds the server itself counted (accept-queue + stale-queue).
    pub server_shed_total: u64,
    /// Wire hit lists bit-identical to in-process search answers.
    pub answers_match: bool,
    /// Background merges observed during the served-ingest phase.
    pub merges_during_ingest: u64,
    /// Worker threads in the engine pool.
    pub threads: usize,
    /// Hardware threads on the host that produced the report.
    pub host_threads: usize,
    /// Pool workers that successfully pinned to a core.
    pub pinned_workers: usize,
    /// Scale preset name.
    pub scale: &'static str,
}

/// Runs the served-traffic measurement.
pub fn run(f: &Fixture) -> ServeReport {
    let capacity = f.corpus.len();
    let preload = capacity / 2;
    let ingest_batch = (capacity / 100).max(250);

    let engine = StreamingEngine::new(
        EngineConfig::new(f.params.clone(), capacity).with_eta(0.1),
        f.pool.clone(),
    )
    .expect("valid config");
    engine
        .insert_batch(&f.corpus.vectors()[..preload])
        .expect("preload fits");
    engine.wait_for_merge();
    engine.merge_now();
    let merges_before = engine.stats().merges;

    // Handler threads are connection-per-worker for a keep-alive session:
    // provision for every persistent connection this experiment opens
    // (search clients + the ingest stream) or one of them starves.
    let server: Server = serve(
        Arc::new(engine.clone()),
        "127.0.0.1:0",
        ServerConfig {
            workers: CLIENTS + 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = server.addr();

    // Pre-encode every search request once; clients just replay bytes.
    let search_reqs: Arc<Vec<Vec<u8>>> =
        Arc::new(f.query_vecs().iter().map(search_bytes).collect());

    // ---- Phase 1: search clients vs a live HTTP ingest stream ----
    let ingesting = Arc::new(AtomicBool::new(true));
    let ingest_stream = {
        let rows = f.corpus.vectors()[preload..].to_vec();
        let target = ingest_target_secs(f.scale);
        let flag = Arc::clone(&ingesting);
        std::thread::spawn(move || {
            let chunks: Vec<&[SparseVector]> = rows.chunks(ingest_batch).collect();
            let per_chunk = Duration::from_secs_f64(target / chunks.len() as f64);
            let mut conn = Conn::new(addr);
            let start = Instant::now();
            let mut sent = 0usize;
            for (i, chunk) in chunks.iter().enumerate() {
                let vecs: Vec<String> = chunk.iter().map(vector_json).collect();
                let body = format!("{{\"vectors\": [{}]}}", vecs.join(","));
                match conn.request(&post_bytes("/ingest", &body)) {
                    Ok((200, _)) => sent += chunk.len(),
                    Ok((status, body)) => panic!("ingest got {status}: {body}"),
                    Err(e) => panic!("ingest transport error: {e}"),
                }
                // Pace to the schedule: an arrival process, not a flood.
                let due = per_chunk * (i as u32 + 1);
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
            }
            flag.store(false, Ordering::SeqCst);
            sent
        })
    };

    let run_clients =
        |stop: Option<Arc<AtomicBool>>, budget: usize| -> (Vec<ClientTally>, Duration) {
            let t0 = Instant::now();
            let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        let reqs = Arc::clone(&search_reqs);
                        let stop = stop.clone();
                        scope.spawn(move || {
                            let mut conn = Conn::new(addr);
                            let mut t = ClientTally::default();
                            let mut qi = c;
                            let keep_going = |done: usize| match &stop {
                                Some(flag) => flag.load(Ordering::SeqCst),
                                None => done < budget,
                            };
                            let mut done = 0usize;
                            while keep_going(done) {
                                let raw = &reqs[qi % reqs.len()];
                                qi += CLIENTS;
                                done += 1;
                                let t0 = Instant::now();
                                match conn.request(raw) {
                                    Ok((status, _)) => tally(&mut t, status, t0.elapsed()),
                                    Err(_) => t.errors += 1,
                                }
                            }
                            t
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect()
            });
            (tallies, t0.elapsed())
        };

    let (during_tallies, during_elapsed) = run_clients(Some(Arc::clone(&ingesting)), 0);
    let ingested = ingest_stream.join().expect("ingest thread");
    engine.wait_for_merge();
    let merges_during = engine.stats().merges - merges_before;
    engine.merge_now(); // quiesce: fold the sealed tail

    // ---- Phase 2: the same load against the quiesced engine ----
    let (quiesced_tallies, quiesced_elapsed) =
        run_clients(None, quiesced_requests_per_client(f.scale));

    // ---- Exactness: wire answers vs in-process answers ----
    let answers_match = check_answers(&engine, addr, f);

    let fold = |tallies: &[ClientTally]| -> (u64, u64, u64, Vec<Duration>) {
        let mut ok = 0;
        let mut shed = 0;
        let mut errors = 0;
        let mut lat = Vec::new();
        for t in tallies {
            ok += t.ok;
            shed += t.shed;
            errors += t.errors;
            lat.extend_from_slice(&t.latencies);
        }
        (ok, shed, errors, lat)
    };
    let (d_ok, d_shed, d_err, mut d_lat) = fold(&during_tallies);
    let (q_ok, q_shed, q_err, mut q_lat) = fold(&quiesced_tallies);
    let total = (d_ok + d_shed + d_err + q_ok + q_shed + q_err).max(1);
    let during_total = d_ok + d_shed + d_err;
    let quiesced_total = q_ok + q_shed + q_err;

    let report = ServeReport {
        preload_points: preload,
        ingest_points: ingested,
        ingest_batch,
        clients: CLIENTS,
        requests_during_ingest: during_total,
        qps_during_ingest: during_total as f64 / during_elapsed.as_secs_f64().max(1e-9),
        qps_quiesced: quiesced_total as f64 / quiesced_elapsed.as_secs_f64().max(1e-9),
        p50_ms_during_ingest: percentile_ms(&mut d_lat, 50),
        p99_ms_during_ingest: percentile_ms(&mut d_lat, 99),
        p50_ms_quiesced: percentile_ms(&mut q_lat, 50),
        p99_ms_quiesced: percentile_ms(&mut q_lat, 99),
        shed_rate: (d_shed + q_shed) as f64 / total as f64,
        error_rate: (d_err + q_err) as f64 / total as f64,
        server_shed_total: server.metrics().shed_total(),
        answers_match,
        merges_during_ingest: merges_during,
        threads: f.pool.num_threads(),
        host_threads: plsh_parallel::affinity::host_threads(),
        pinned_workers: plsh_parallel::pinned_worker_count(),
        scale: match f.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
    };
    server.shutdown();
    report
}

/// Replays [`MATCH_QUERIES`] queries over a fresh connection and
/// compares every wire hit against the in-process answer, field by
/// field. f32 distances must survive JSON encode → decode bit-exactly.
fn check_answers(engine: &StreamingEngine, addr: SocketAddr, f: &Fixture) -> bool {
    let mut conn = Conn::new(addr);
    for q in f.query_vecs().iter().take(MATCH_QUERIES) {
        let (status, body) = match conn.request(&search_bytes(q)) {
            Ok(r) => r,
            Err(_) => return false,
        };
        if status != 200 {
            return false;
        }
        let wire = match plsh_server::json::parse(&body) {
            Ok(j) => j,
            Err(_) => return false,
        };
        let expect = engine
            .search(&SearchRequest::query(q.clone()).top_k(TOP_K))
            .expect("in-process search");
        let hits = &expect.results[0];
        let wire_hits = match wire.get("results").and_then(Json::as_arr) {
            Some(rs) if rs.len() == 1 => match rs[0].as_arr() {
                Some(h) => h,
                None => return false,
            },
            _ => return false,
        };
        if wire_hits.len() != hits.len() {
            return false;
        }
        for (w, h) in wire_hits.iter().zip(hits) {
            let node = w.get("node").and_then(Json::as_u64);
            let index = w.get("index").and_then(Json::as_u64);
            let distance = w.get("distance").and_then(Json::as_f64);
            if node != Some(h.node as u64)
                || index != Some(h.index as u64)
                || distance != Some(h.distance as f64)
            {
                return false;
            }
        }
    }
    true
}

impl ServeReport {
    /// Served throughput during ingest as a fraction of quiesced.
    pub fn during_over_quiesced(&self) -> f64 {
        if self.qps_quiesced == 0.0 {
            0.0
        } else {
            self.qps_during_ingest / self.qps_quiesced
        }
    }

    /// Prints the report.
    pub fn print(&self) {
        println!(
            "## Served traffic — {} HTTP clients over loopback ({} engine threads)\n",
            self.clients, self.threads
        );
        println!("| Quantity | Measured |");
        println!("|---|---:|");
        println!(
            "| Corpus | {} preloaded + {} ingested over HTTP ({}/request) |",
            self.preload_points, self.ingest_points, self.ingest_batch
        );
        println!(
            "| Search qps during ingest | {:.0} ({} requests) |",
            self.qps_during_ingest, self.requests_during_ingest
        );
        println!("| Search qps quiesced | {:.0} |", self.qps_quiesced);
        println!(
            "| Request p50 / p99 during ingest | {:.2} ms / {:.2} ms |",
            self.p50_ms_during_ingest, self.p99_ms_during_ingest
        );
        println!(
            "| Request p50 / p99 quiesced | {:.2} ms / {:.2} ms |",
            self.p50_ms_quiesced, self.p99_ms_quiesced
        );
        println!("| During / quiesced | {:.2} |", self.during_over_quiesced());
        println!(
            "| Shed rate / error rate | {:.4} / {:.4} |",
            self.shed_rate, self.error_rate
        );
        println!("| Server-side sheds | {} |", self.server_shed_total);
        println!(
            "| Merges during served ingest | {} |",
            self.merges_during_ingest
        );
        println!("| Wire answers match in-process | {} |", self.answers_match);
        println!(
            "| Host threads / pinned workers | {} / {} |",
            self.host_threads, self.pinned_workers
        );
        println!();
    }

    /// Renders the report as JSON (hand-rolled: the vendored serde
    /// stand-in does not serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"serve\",\n  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"host_threads\": {},\n  \
             \"pinned_workers\": {},\n  \"clients\": {},\n  \
             \"preload_points\": {},\n  \"ingest_points\": {},\n  \
             \"ingest_batch\": {},\n  \
             \"requests_during_ingest\": {},\n  \
             \"qps_during_ingest\": {:.3},\n  \
             \"qps_quiesced\": {:.3},\n  \
             \"p50_ms_during_ingest\": {:.4},\n  \
             \"p99_ms_during_ingest\": {:.4},\n  \
             \"p50_ms_quiesced\": {:.4},\n  \
             \"p99_ms_quiesced\": {:.4},\n  \
             \"during_over_quiesced\": {:.4},\n  \
             \"shed_rate\": {:.6},\n  \"error_rate\": {:.6},\n  \
             \"server_shed_total\": {},\n  \
             \"merges_during_ingest\": {},\n  \
             \"answers_match\": {}\n}}\n",
            self.scale,
            self.threads,
            self.host_threads,
            self.pinned_workers,
            self.clients,
            self.preload_points,
            self.ingest_points,
            self.ingest_batch,
            self.requests_during_ingest,
            self.qps_during_ingest,
            self.qps_quiesced,
            self.p50_ms_during_ingest,
            self.p99_ms_during_ingest,
            self.p50_ms_quiesced,
            self.p99_ms_quiesced,
            self.during_over_quiesced(),
            self.shed_rate,
            self.error_rate,
            self.server_shed_total,
            self.merges_during_ingest,
            self.answers_match
        )
    }

    /// Writes the JSON report to `path` (fsync + atomic rename).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        crate::setup::write_json_atomic(path, &self.to_json())
    }
}

/// Report location: `PLSH_BENCH_SERVER_OUT`, defaulting to
/// `BENCH_server.json` in the working directory.
pub fn output_path() -> String {
    std::env::var("PLSH_BENCH_SERVER_OUT").unwrap_or_else(|_| "BENCH_server.json".to_string())
}
