//! Durability experiment: journaled ingest, crash, recovery — recorded to
//! `BENCH_recovery.json`.
//!
//! The paper's streaming node is in-memory; the persistence subsystem
//! bolts a WAL + segment-per-generation journal underneath it. This
//! experiment prices that journal and the restart it buys:
//!
//! * ingest throughput with journaling on vs off (the write-path tax:
//!   one buffered WAL record + fsync per batch, one segment write per
//!   seal, one manifest swap per merge),
//! * recovery wall time from a directory whose engine was dropped
//!   mid-stream — static segment + sealed generation segments + a live
//!   WAL tail that never made it into a segment,
//! * correctness: the recovered engine must answer every fixture query
//!   bit-identically to an in-memory twin that ran the same schedule
//!   (sealed, since recovery seals the replayed WAL tail), and every
//!   pre-crash tombstone must survive.

use std::time::Instant;

use plsh_core::engine::{Engine, EngineConfig};
use plsh_core::persist;

use crate::setup::{Fixture, Scale};

/// Ingest batch size for the journaled stream (one WAL record + fsync
/// per batch). Deliberately not a divisor of either scale's streamed
/// count: the crash must always catch a sub-threshold tail that exists
/// only in the WAL, so recovery exercises the replay path.
const BATCH: usize = 512;

/// Open-generation coalescing threshold: generations seal at 4 batches
/// (2048 points), which never divides the streamed count evenly.
const SEAL_MIN: usize = 2_000;

/// The measured report.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Corpus points journaled before the simulated crash.
    pub docs: usize,
    /// Fixture queries used for the equivalence check.
    pub queries: usize,
    /// Points in the durable static segment at crash time.
    pub static_points: usize,
    /// Sealed generation segments on disk at crash time.
    pub generation_segments: usize,
    /// Points recovered out of the live WAL tail (never sealed).
    pub wal_points: usize,
    /// Tombstones issued before the crash.
    pub tombstones: usize,
    /// Ingest throughput with the journal attached.
    pub ingest_qps_journaled: f64,
    /// Ingest throughput of the identical schedule without a journal.
    pub ingest_qps_memory: f64,
    /// Wall time of `Engine::recover_from`.
    pub recovery_ms: f64,
    /// Recovered points per second of recovery wall time.
    pub replay_points_per_sec: f64,
    /// Recovered answers are bit-identical to the in-memory twin's.
    pub answers_match: bool,
    /// Every pre-crash tombstone is still a tombstone after recovery.
    pub tombstones_survived: bool,
    /// Worker threads.
    pub threads: usize,
    /// Scale preset name.
    pub scale: &'static str,
}

fn sorted_answers(e: &Engine, qs: &[plsh_core::sparse::SparseVector]) -> Vec<Vec<(u32, u32)>> {
    qs.iter()
        .map(|q| {
            let mut hits: Vec<(u32, u32)> = e
                .query(q)
                .iter()
                .map(|h| (h.index, h.distance.to_bits()))
                .collect();
            hits.sort_unstable();
            hits
        })
        .collect()
}

/// The scripted pre-crash life, shared by the journaled and in-memory
/// runs: bulk-load 60% and merge it static, then stream the remaining
/// 40% in WAL-sized batches with a few deletes sprinkled in. Returns
/// (engine, tombstoned ids, ingest seconds spent inside the stream).
fn run_life(f: &Fixture, dir: Option<&std::path::Path>) -> (Engine, Vec<u32>, f64) {
    let capacity = f.corpus.len();
    let engine = Engine::new(
        EngineConfig::new(f.params.clone(), capacity)
            .manual_merge()
            .with_seal_min_points(SEAL_MIN),
        &f.pool,
    )
    .expect("valid config");
    if let Some(dir) = dir {
        engine.persist_to(dir).expect("fresh directory");
    }
    let static_cut = capacity * 3 / 5;
    engine
        .insert_batch(&f.corpus.vectors()[..static_cut], &f.pool)
        .expect("corpus fits");
    engine.delete(17);
    engine.merge_delta(&f.pool);

    let mut deleted = vec![17u32];
    let t0 = Instant::now();
    for (i, chunk) in f.corpus.vectors()[static_cut..].chunks(BATCH).enumerate() {
        engine.insert_batch(chunk, &f.pool).expect("corpus fits");
        if i % 16 == 7 {
            let id = (static_cut + i * BATCH / 2) as u32;
            if engine.delete(id) {
                deleted.push(id);
            }
        }
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    (engine, deleted, ingest_secs)
}

/// Runs the journaled-ingest / crash / recover measurement.
pub fn run(f: &Fixture) -> Recovery {
    let dir = std::env::temp_dir().join(format!("plsh-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let streamed = f.corpus.len() - f.corpus.len() * 3 / 5;

    // Untimed warm-up life first: the very first run pays first-touch
    // page faults for every fresh table allocation (multiple-x on the
    // insert path), which would otherwise be billed to whichever
    // measured run goes first and drown the journal tax being measured.
    let (warm, _, _) = run_life(f, None);
    drop(warm);

    // In-memory baseline (it doubles as the correctness reference: same
    // insertion schedule, same deletes, same seed — a bit-identical
    // twin of the journaled engine). Recovery seals the WAL tail it
    // replays, while the pre-crash engine's open generation was not yet
    // visible to queries, so the reference is the sealed twin.
    let queries = f.query_vecs();
    let (memory, _, memory_secs) = run_life(f, None);
    memory.seal();
    let reference = sorted_answers(&memory, queries);
    drop(memory);

    let (engine, deleted, journaled_secs) = run_life(f, Some(&dir));
    // Crash: the engine vanishes with its open tail still WAL-only.
    drop(engine);

    let st = persist::load_state(&dir).expect("directory is recoverable");
    let static_points = st.static_len();
    let generation_segments = st.segments();
    let wal_points = st.wal_rows();

    let t0 = Instant::now();
    let recovered = Engine::recover_from(&dir, &f.pool).expect("recovery succeeds");
    let recovery_secs = t0.elapsed().as_secs_f64();

    let answers_match = sorted_answers(&recovered, queries) == reference;
    let tombstones_survived = deleted.iter().all(|&id| recovered.is_deleted(id));
    let docs = recovered.len();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    let qps = |secs: f64| {
        if secs > 0.0 {
            streamed as f64 / secs
        } else {
            0.0
        }
    };
    Recovery {
        docs,
        queries: queries.len(),
        static_points,
        generation_segments,
        wal_points,
        tombstones: deleted.len(),
        ingest_qps_journaled: qps(journaled_secs),
        ingest_qps_memory: qps(memory_secs),
        recovery_ms: recovery_secs * 1e3,
        replay_points_per_sec: if recovery_secs > 0.0 {
            docs as f64 / recovery_secs
        } else {
            0.0
        },
        answers_match,
        tombstones_survived,
        threads: f.pool.num_threads(),
        scale: match f.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
    }
}

impl Recovery {
    /// Journaled ingest throughput as a fraction of pure in-memory.
    pub fn journal_overhead(&self) -> f64 {
        if self.ingest_qps_memory == 0.0 {
            0.0
        } else {
            self.ingest_qps_journaled / self.ingest_qps_memory
        }
    }

    /// Prints the report.
    pub fn print(&self) {
        println!(
            "## Durability — journaled ingest, crash, recovery ({} docs, {} threads)\n",
            self.docs, self.threads
        );
        println!("| Quantity | Measured |");
        println!("|---|---:|");
        println!(
            "| Durable layout at crash | {} static + {} generation segment(s) + {} WAL point(s) |",
            self.static_points, self.generation_segments, self.wal_points
        );
        println!(
            "| Ingest qps journaled / in-memory | {:.0} / {:.0} ({:.2}x) |",
            self.ingest_qps_journaled,
            self.ingest_qps_memory,
            self.journal_overhead()
        );
        println!("| Recovery wall time | {:.1} ms |", self.recovery_ms);
        println!(
            "| Replay rate | {:.0} points/s |",
            self.replay_points_per_sec
        );
        println!(
            "| Answers match pre-crash ({} queries) | {} |",
            self.queries, self.answers_match
        );
        println!(
            "| Tombstones survived ({}) | {} |",
            self.tombstones, self.tombstones_survived
        );
        println!();
    }

    /// Renders the report as JSON (hand-rolled: the vendored serde
    /// stand-in does not serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"recovery\",\n  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"host_threads\": {},\n  \
             \"pinned_workers\": {},\n  \"docs\": {},\n  \"queries\": {},\n  \
             \"static_points\": {},\n  \"generation_segments\": {},\n  \
             \"wal_points\": {},\n  \"tombstones\": {},\n  \
             \"ingest_qps_journaled\": {:.3},\n  \
             \"ingest_qps_memory\": {:.3},\n  \
             \"journal_overhead\": {:.4},\n  \
             \"recovery_ms\": {:.3},\n  \
             \"replay_points_per_sec\": {:.3},\n  \
             \"answers_match\": {},\n  \"tombstones_survived\": {}\n}}\n",
            self.scale,
            self.threads,
            plsh_parallel::affinity::host_threads(),
            plsh_parallel::pinned_worker_count(),
            self.docs,
            self.queries,
            self.static_points,
            self.generation_segments,
            self.wal_points,
            self.tombstones,
            self.ingest_qps_journaled,
            self.ingest_qps_memory,
            self.journal_overhead(),
            self.recovery_ms,
            self.replay_points_per_sec,
            self.answers_match,
            self.tombstones_survived
        )
    }

    /// Writes the JSON report to `path` (fsync + atomic rename).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        crate::setup::write_json_atomic(path, &self.to_json())
    }
}

/// Report location: `PLSH_BENCH_RECOVERY_OUT`, defaulting to
/// `BENCH_recovery.json` in the working directory.
pub fn output_path() -> String {
    std::env::var("PLSH_BENCH_RECOVERY_OUT").unwrap_or_else(|_| "BENCH_recovery.json".to_string())
}
