//! Query throughput trajectory: the Figure 5 ablation plus the batched
//! SIMD pipeline, recorded to `BENCH_query.json`.
//!
//! This experiment seeds the repository's performance trajectory: it runs
//! the five cumulative `QueryStrategy` levels through the per-query
//! pipeline, then the batched pipeline (`Engine::query_batch`: whole-batch
//! Q1 via `sketch_batch`, lock-free per-worker scratch) on top, and writes
//! queries/sec, per-phase timings, and candidate counters to a JSON report
//! so later PRs can be held to these numbers.

use plsh_core::simd;
use plsh_core::{BatchStats, SearchHit, SearchRequest};

use crate::setup::{Fixture, Scale};

/// Measured passes per ablation level; the best is reported (the batch is
/// deterministic, so the minimum isolates scheduler/container noise).
const REPS: usize = 5;

/// Interleaved A/B passes for the optimized-vs-batched comparison: the two
/// pipelines alternate within the same time window, so environment drift
/// (CPU steal on a shared host, thermal throttling) hits both sides alike.
const AB_REPS: usize = 7;

/// Batch executions per A/B pass. A pass's time is the sum over its calls,
/// so short steal spikes average out within a pass instead of poisoning a
/// single-call measurement; the reported time is the best pass.
const AB_PASS_CALLS: usize = 3;

/// One measured query configuration.
#[derive(Debug, Clone)]
pub struct LevelResult {
    /// Configuration label (paper name, or "batched pipeline").
    pub name: &'static str,
    /// Queries per second over the batch (best of `REPS` passes).
    pub qps: f64,
    /// Batch wall time in milliseconds (best of `REPS` passes).
    pub batch_ms: f64,
    /// Mean bucket entries read per query.
    pub avg_collisions: f64,
    /// Mean unique candidates per query.
    pub avg_unique: f64,
    /// Mean reported neighbors per query.
    pub avg_matches: f64,
}

impl LevelResult {
    fn from_stats(name: &'static str, stats: &BatchStats) -> Self {
        Self {
            name,
            qps: stats.throughput_qps(),
            batch_ms: stats.elapsed.as_secs_f64() * 1e3,
            avg_collisions: stats.avg_collisions(),
            avg_unique: stats.avg_unique(),
            avg_matches: stats.avg_matches(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"qps\": {:.3}, \"batch_ms\": {:.3}, \
             \"avg_collisions\": {:.3}, \"avg_unique_candidates\": {:.3}, \
             \"avg_matches\": {:.3}}}",
            self.name,
            self.qps,
            self.batch_ms,
            self.avg_collisions,
            self.avg_unique,
            self.avg_matches
        )
    }
}

/// The full throughput report.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// The five Figure 5 ablation levels (per-query pipeline), all
    /// measured best-of-`REPS`.
    pub levels: Vec<LevelResult>,
    /// The batched SIMD pipeline (fully optimized strategy), same
    /// best-of-`REPS` protocol as the levels.
    pub batched: LevelResult,
    /// Batched-over-optimized speedup from the interleaved A/B passes
    /// (drift-compensated; this is the comparison number, the table rows
    /// are the absolute ones).
    pub speedup: f64,
    /// Mean Step Q2 nanoseconds per query (sequential profile).
    pub q2_ns_per_query: f64,
    /// Mean Step Q3 nanoseconds per query (sequential profile).
    pub q3_ns_per_query: f64,
    /// SIMD level the kernels dispatched to.
    pub simd_level: &'static str,
    /// Corpus size.
    pub docs: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Worker threads.
    pub threads: usize,
    /// Scale preset name.
    pub scale: &'static str,
    /// Whether the batched pipeline returned exactly the same neighbor
    /// sets as the optimized per-query pipeline (it must).
    pub answers_match: bool,
}

/// `(id, distance-bits)` pairs sorted by id — the batched pipeline must
/// reproduce the per-query pipeline's answers *bit for bit*, distances
/// included.
fn sorted_hits(hits: &[SearchHit]) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = hits
        .iter()
        .map(|h| (h.index, h.distance.to_bits()))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Runs the ablation plus the batched pipeline against a fully static
/// engine, entirely through the unified [`SearchRequest`] API (the
/// ablation levels are request fields, not dedicated methods).
pub fn run(f: &Fixture) -> Throughput {
    let engine = f.static_engine();
    let queries = f.query_vecs();
    let warm_queries = queries[..queries.len().min(32)].to_vec();

    // All five levels: identical best-of-REPS protocol. (An earlier
    // revision measured the final level inside the A/B interleave below —
    // a mean over the best pass's calls, not a best single call — which
    // manufactured a phantom regression for "+large pages" against the
    // best-of-REPS "+sw prefetch" row. The trajectory is only meaningful
    // if every row is measured the same way.) The Figure 5 protocol
    // measures the *per-query* pipeline, so the request opts out of
    // batched Q1.
    let mut levels = Vec::new();
    let all_levels = plsh_core::QueryStrategy::ablation_levels();
    let (_, last_strategy) = all_levels[all_levels.len() - 1];
    for &(name, strategy) in all_levels.iter() {
        // Warm-up pass (page in tables, fill scratch slots), then best-of.
        let warm = SearchRequest::batch(warm_queries.clone())
            .with_strategy(strategy)
            .per_query_pipeline();
        let _ = engine
            .search(&warm, &f.pool)
            .expect("valid warm-up request");
        let req = SearchRequest::batch(queries.to_vec())
            .with_strategy(strategy)
            .per_query_pipeline()
            .with_stats();
        let mut best: Option<BatchStats> = None;
        for _ in 0..REPS {
            let stats = engine
                .search(&req, &f.pool)
                .expect("valid ablation request")
                .stats
                .expect("stats requested");
            if best.is_none_or(|b| stats.elapsed < b.elapsed) {
                best = Some(stats);
            }
        }
        levels.push(LevelResult::from_stats(name, &best.expect("REPS >= 1")));
    }

    // The batched pipeline row: same best-of-REPS protocol as the levels
    // table, with every rep's answers checked bit-for-bit against the
    // optimized per-query pipeline's.
    let opt_req = SearchRequest::batch(queries.to_vec())
        .with_strategy(last_strategy)
        .per_query_pipeline()
        .with_stats();
    let batched_req = SearchRequest::batch(queries.to_vec())
        .with_strategy(last_strategy)
        .with_stats();
    let optimized_answers: Vec<Vec<(u32, u32)>> = engine
        .search(&opt_req, &f.pool)
        .expect("valid optimized request")
        .results
        .iter()
        .map(|h| sorted_hits(h))
        .collect();
    let warm = SearchRequest::batch(warm_queries).with_strategy(last_strategy);
    let _ = engine
        .search(&warm, &f.pool)
        .expect("valid warm-up request");
    let mut answers_match = true;
    let mut best: Option<BatchStats> = None;
    for _ in 0..REPS {
        let resp = engine
            .search(&batched_req, &f.pool)
            .expect("valid batched request");
        let stats = resp.stats.expect("stats requested");
        answers_match &= resp
            .results
            .iter()
            .zip(&optimized_answers)
            .all(|(got, expect)| &sorted_hits(got) == expect);
        if best.is_none_or(|b| stats.elapsed < b.elapsed) {
            best = Some(stats);
        }
    }
    let batched = LevelResult::from_stats("batched pipeline", &best.expect("REPS >= 1"));

    // Batched-vs-optimized speedup: interleaved A/B passes so environment
    // drift (CPU steal, thermal throttling) hits both sides alike; each
    // pass sums several batch executions so short steal spikes average
    // out, and the ratio is taken between the best pass of each side.
    // This ratio is the *only* number the interleave produces — the table
    // rows above all come from the uniform best-of-REPS protocol.
    let mut best_opt: Option<std::time::Duration> = None;
    let mut best_batched: Option<std::time::Duration> = None;
    for _ in 0..AB_REPS {
        let mut pass = std::time::Duration::ZERO;
        for _ in 0..AB_PASS_CALLS {
            let stats = engine
                .search(&opt_req, &f.pool)
                .expect("valid A/B request")
                .stats
                .expect("stats requested");
            pass += stats.elapsed;
        }
        if best_opt.is_none_or(|b| pass < b) {
            best_opt = Some(pass);
        }
        let mut pass = std::time::Duration::ZERO;
        for _ in 0..AB_PASS_CALLS {
            let stats = engine
                .search(&batched_req, &f.pool)
                .expect("valid A/B request")
                .stats
                .expect("stats requested");
            pass += stats.elapsed;
        }
        if best_batched.is_none_or(|b| pass < b) {
            best_batched = Some(pass);
        }
    }
    let opt_pass = best_opt.expect("AB_REPS >= 1").as_secs_f64();
    let batched_pass = best_batched.expect("AB_REPS >= 1").as_secs_f64();
    let speedup = if batched_pass == 0.0 {
        0.0
    } else {
        opt_pass / batched_pass
    };

    // Per-phase breakdown (sequential, fully optimized pipeline).
    let profile_req = SearchRequest::batch(queries.to_vec()).with_profiling();
    let timings = engine
        .search(&profile_req, &f.pool)
        .expect("valid profiling request")
        .phase_timings
        .expect("profiling requested");
    let nq = queries.len().max(1) as f64;

    Throughput {
        levels,
        batched,
        speedup,
        q2_ns_per_query: timings.step_q2.as_nanos() as f64 / nq,
        q3_ns_per_query: timings.step_q3.as_nanos() as f64 / nq,
        simd_level: simd::level().name(),
        docs: engine.len(),
        queries: queries.len(),
        threads: f.pool.num_threads(),
        scale: match f.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        answers_match,
    }
}

impl Throughput {
    /// Speedup of the batched pipeline over the fully optimized per-query
    /// pipeline, from the interleaved A/B measurement.
    pub fn batched_speedup(&self) -> f64 {
        self.speedup
    }

    /// Prints the report as a markdown table.
    pub fn print(&self) {
        println!(
            "## Query throughput — Figure 5 ablation + batched SIMD pipeline \
             ({} queries, {} docs, {} thread(s), simd: {})\n",
            self.queries, self.docs, self.threads, self.simd_level
        );
        println!("| Configuration | Queries/s | Batch time | Unique cand./query | Matches/query |");
        println!("|---|---:|---:|---:|---:|");
        for l in self.levels.iter().chain(std::iter::once(&self.batched)) {
            println!(
                "| {} | {:.0} | {:.1} ms | {:.1} | {:.2} |",
                l.name, l.qps, l.batch_ms, l.avg_unique, l.avg_matches
            );
        }
        println!(
            "\nBatched pipeline vs optimized: {:.2}x; Q2 {:.0} ns/query, Q3 {:.0} ns/query; \
             answers match: {}\n",
            self.batched_speedup(),
            self.q2_ns_per_query,
            self.q3_ns_per_query,
            self.answers_match
        );
    }

    /// Renders the report as JSON (hand-rolled: the vendored serde
    /// stand-in does not serialize).
    pub fn to_json(&self) -> String {
        let levels: Vec<String> = self.levels.iter().map(LevelResult::json).collect();
        format!(
            "{{\n  \"experiment\": \"throughput\",\n  \"scale\": \"{}\",\n  \
             \"docs\": {},\n  \"queries\": {},\n  \"threads\": {},\n  \
             \"host_threads\": {},\n  \"pinned_workers\": {},\n  \
             \"simd_level\": \"{}\",\n  \"levels\": [\n    {}\n  ],\n  \
             \"batched_pipeline\": {},\n  \
             \"phase_ns_per_query\": {{\"q2\": {:.1}, \"q3\": {:.1}}},\n  \
             \"speedup_batched_vs_optimized\": {:.4},\n  \"answers_match\": {}\n}}\n",
            self.scale,
            self.docs,
            self.queries,
            self.threads,
            plsh_parallel::affinity::host_threads(),
            plsh_parallel::pinned_worker_count(),
            self.simd_level,
            levels.join(",\n    "),
            self.batched.json(),
            self.q2_ns_per_query,
            self.q3_ns_per_query,
            self.batched_speedup(),
            self.answers_match
        )
    }

    /// Writes the JSON report to `path` (fsync + atomic rename).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        crate::setup::write_json_atomic(path, &self.to_json())
    }
}

/// Report location: `PLSH_BENCH_OUT`, defaulting to `BENCH_query.json` in
/// the working directory.
pub fn output_path() -> String {
    std::env::var("PLSH_BENCH_OUT").unwrap_or_else(|_| "BENCH_query.json".to_string())
}
