//! Long-haul sliding-window soak: stream several window-lengths of
//! documents through a windowed [`StreamingEngine`] and prove the memory
//! ceiling stays flat, recorded to `BENCH_soak.json`.
//!
//! The tentpole claim of retire-by-age: with
//! `WindowSpec::Docs(W)` and `capacity ≈ 3 × W`, an infinite stream runs
//! in constant memory — the watermark retires one id per arriving doc,
//! the background merges compact the expired prefix, and nothing (rows,
//! generations, epochs, table bytes) accumulates with stream length. The
//! soak streams `INTERVALS × W/2` documents (several corpus passes), and
//! after every `W/2`-doc interval records
//!
//! * process RSS (`/proc/self/statm`) — the headline: after warm-up it
//!   must plateau, not grow with docs streamed,
//! * resident index bytes (static + delta + sketches),
//! * live / retired / retired-pending-purge points and the watermark,
//! * insert throughput for the interval and a sampled query qps.
//!
//! At the end the engine quiesces (final merge) and the report asserts
//! the zero-leak facts: `live == W` exactly, `retired == streamed − W`
//! exactly, no sealed generation and no retired row left resident.

use std::time::{Duration, Instant};

use plsh_core::engine::{EngineConfig, WindowSpec};
use plsh_core::streaming::StreamingEngine;

use crate::setup::{Fixture, Scale};

/// Sliding window size `W` per scale (capacity is `3 × W`; several
/// corpus passes stream through it).
fn window(scale: Scale) -> u32 {
    match scale {
        Scale::Quick => 6_000,
        Scale::Full => 30_000,
    }
}

/// Measurement intervals of `W/2` docs each: 8 window-lengths of stream,
/// i.e. the index turns over its whole contents eight times.
const INTERVALS: usize = 16;

/// Queries sampled per interval (cheap; the soak is ingest-bound).
const QUERY_SLICE: usize = 64;

/// One per-interval sample of the soak.
#[derive(Debug, Clone)]
pub struct SoakInterval {
    /// Docs streamed so far (cumulative).
    pub docs: usize,
    /// Process RSS in bytes (0 if `/proc/self/statm` is unreadable).
    pub rss_bytes: u64,
    /// Resident index bytes: static + delta tables + sketches.
    pub table_bytes: usize,
    /// Points answerable right now.
    pub live_points: usize,
    /// Retired points still physically resident (awaiting compaction).
    pub retired_pending_purge: usize,
    /// Insert throughput inside `insert_batch` for this interval.
    pub insert_qps: f64,
    /// Sampled query throughput at the end of the interval.
    pub query_qps: f64,
}

/// The measured report.
#[derive(Debug, Clone)]
pub struct Soak {
    /// Window size `W`.
    pub window: u32,
    /// Engine capacity (bounds the resident span, not the stream).
    pub capacity: usize,
    /// Total docs streamed.
    pub docs_streamed: usize,
    /// Wall time of the whole soak.
    pub elapsed: Duration,
    /// Per-interval samples.
    pub intervals: Vec<SoakInterval>,
    /// Intervals ignored by the flatness check (index still filling and
    /// the allocator finding its high-water mark).
    pub warmup_intervals: usize,
    /// RSS at the end of warm-up, bytes.
    pub rss_warmup_bytes: u64,
    /// RSS at the last interval, bytes.
    pub rss_final_bytes: u64,
    /// `rss_final / rss_warmup` — the flat-ceiling headline (a per-doc
    /// leak over 8 window turnovers would push this toward 2–3×).
    pub rss_growth: f64,
    /// The watermark never moved backwards across intervals.
    pub watermark_monotone: bool,
    /// `live + retired-pending-purge ≤ capacity` held at every sample.
    pub span_always_bounded: bool,
    /// Live points after the final quiescing merge (must equal `W`).
    pub final_live: usize,
    /// Watermark at the end (must equal `docs_streamed − W`).
    pub final_retired: usize,
    /// Sealed generations left after quiescing (must be 0 — a leak here
    /// means merges stopped keeping up or an epoch was never retired).
    pub final_sealed_generations: usize,
    /// Retired rows still resident after quiescing (must be 0 — a leak
    /// here means compaction skipped the expired prefix).
    pub final_retired_pending_purge: usize,
    /// Background merges over the whole soak.
    pub merges: u64,
    /// Worker threads.
    pub threads: usize,
    /// Hardware threads on the host that produced the report.
    pub host_threads: usize,
    /// Pool workers that successfully pinned to a core (0 when pinning
    /// is disabled or the host is single-core).
    pub pinned_workers: usize,
    /// Scale preset name.
    pub scale: &'static str,
}

/// Process resident set size in bytes via `/proc/self/statm` (Linux);
/// 0 where unavailable.
pub fn rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|pages| pages.parse::<u64>().ok())
        })
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

/// Runs the long-haul soak.
pub fn run(f: &Fixture) -> Soak {
    let w = window(f.scale) as usize;
    let capacity = 3 * w;
    let interval_docs = w / 2;
    let chunk = 500usize;

    let engine = StreamingEngine::new(
        EngineConfig::new(f.params.clone(), capacity)
            .with_eta(0.1)
            .with_window(WindowSpec::Docs(w as u32)),
        f.pool.clone(),
    )
    .expect("valid soak config");

    let corpus = f.corpus.vectors();
    let queries = &f.query_vecs()[..f.query_vecs().len().min(QUERY_SLICE)];
    let start = Instant::now();

    let mut intervals = Vec::with_capacity(INTERVALS);
    let mut streamed = 0usize;
    let mut last_watermark = 0usize;
    let mut watermark_monotone = true;
    let mut span_always_bounded = true;
    for _ in 0..INTERVALS {
        // Ingest one interval, cycling the corpus (ids keep growing —
        // the stream is infinite as far as the engine can tell).
        let mut insert_time = Duration::ZERO;
        let target = streamed + interval_docs;
        while streamed < target {
            let at = streamed % corpus.len();
            let take = chunk.min(target - streamed).min(corpus.len() - at);
            let t0 = Instant::now();
            engine
                .insert_batch(&corpus[at..at + take])
                .expect("windowed stream never exhausts capacity");
            insert_time += t0.elapsed();
            streamed += take;
        }

        // Sample the query path against whatever epoch is live.
        let t0 = Instant::now();
        let _ = engine.query_batch(queries);
        let query_elapsed = t0.elapsed();

        let stats = engine.stats();
        watermark_monotone &= stats.retired_points >= last_watermark;
        last_watermark = stats.retired_points;
        span_always_bounded &= stats.live_points + stats.retired_pending_purge <= capacity;
        intervals.push(SoakInterval {
            docs: streamed,
            rss_bytes: rss_bytes(),
            table_bytes: stats.static_table_bytes + stats.delta_table_bytes + stats.sketch_bytes,
            live_points: stats.live_points,
            retired_pending_purge: stats.retired_pending_purge,
            insert_qps: if insert_time.is_zero() {
                0.0
            } else {
                interval_docs as f64 / insert_time.as_secs_f64()
            },
            query_qps: if query_elapsed.is_zero() {
                0.0
            } else {
                queries.len() as f64 / query_elapsed.as_secs_f64()
            },
        });
    }

    // Quiesce: drain any in-flight merge, then fold the sealed tail and
    // compact the remaining expired prefix.
    engine.wait_for_merge();
    engine.merge_now();
    let elapsed = start.elapsed();
    let stats = engine.stats();
    let info = engine.epoch_info();

    // Warm-up: first quarter of the run, and at least until the index
    // has filled one full window.
    let warmup_intervals = intervals
        .iter()
        .position(|s| s.docs >= 2 * w)
        .unwrap_or(INTERVALS / 4)
        .max(INTERVALS / 4);
    let rss_warmup_bytes = intervals[warmup_intervals.min(intervals.len() - 1)].rss_bytes;
    let rss_final_bytes = intervals.last().map(|s| s.rss_bytes).unwrap_or(0);
    let rss_growth = if rss_warmup_bytes == 0 {
        0.0
    } else {
        rss_final_bytes as f64 / rss_warmup_bytes as f64
    };

    Soak {
        window: w as u32,
        capacity,
        docs_streamed: streamed,
        elapsed,
        intervals,
        warmup_intervals,
        rss_warmup_bytes,
        rss_final_bytes,
        rss_growth,
        watermark_monotone,
        span_always_bounded,
        final_live: stats.live_points,
        final_retired: stats.retired_points,
        final_sealed_generations: info.sealed_generations,
        final_retired_pending_purge: stats.retired_pending_purge,
        merges: stats.merges,
        threads: f.pool.num_threads(),
        host_threads: plsh_parallel::affinity::host_threads(),
        pinned_workers: plsh_parallel::pinned_worker_count(),
        scale: match f.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
    }
}

impl Soak {
    /// Prints the report.
    pub fn print(&self) {
        println!(
            "## Sliding-window soak — {} docs through a {}-doc window ({} threads)\n",
            self.docs_streamed, self.window, self.threads
        );
        println!("| Docs streamed | RSS (MB) | Index bytes (MB) | Live | Pending purge | Insert qps | Query qps |");
        println!("|---:|---:|---:|---:|---:|---:|---:|");
        for s in &self.intervals {
            println!(
                "| {} | {:.1} | {:.1} | {} | {} | {:.0} | {:.0} |",
                s.docs,
                s.rss_bytes as f64 / 1e6,
                s.table_bytes as f64 / 1e6,
                s.live_points,
                s.retired_pending_purge,
                s.insert_qps,
                s.query_qps
            );
        }
        println!();
        println!(
            "RSS growth after warm-up: {:.3}x ({:.1} MB -> {:.1} MB; bar: <= 1.25x)",
            self.rss_growth,
            self.rss_warmup_bytes as f64 / 1e6,
            self.rss_final_bytes as f64 / 1e6
        );
        println!(
            "quiesced: {} live (window {}), watermark {} (expected {}), {} sealed generations, {} retired rows resident, {} merges in {:.1} s",
            self.final_live,
            self.window,
            self.final_retired,
            self.docs_streamed - self.window as usize,
            self.final_sealed_generations,
            self.final_retired_pending_purge,
            self.merges,
            self.elapsed.as_secs_f64()
        );
        println!();
    }

    /// Renders the report as JSON (hand-rolled: the vendored serde
    /// stand-in does not serialize).
    pub fn to_json(&self) -> String {
        let num_series = |f: &dyn Fn(&SoakInterval) -> String| -> String {
            let vals: Vec<String> = self.intervals.iter().map(f).collect();
            vals.join(", ")
        };
        format!(
            "{{\n  \"experiment\": \"soak\",\n  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"host_threads\": {},\n  \
             \"pinned_workers\": {},\n  \"window\": {},\n  \"capacity\": {},\n  \
             \"docs_streamed\": {},\n  \"elapsed_s\": {:.3},\n  \
             \"intervals\": {},\n  \"warmup_intervals\": {},\n  \
             \"docs\": [{}],\n  \"rss_mb\": [{}],\n  \"table_mb\": [{}],\n  \
             \"live_points\": [{}],\n  \"retired_pending_purge\": [{}],\n  \
             \"insert_qps\": [{}],\n  \"query_qps\": [{}],\n  \
             \"rss_warmup_mb\": {:.3},\n  \"rss_final_mb\": {:.3},\n  \
             \"rss_growth\": {:.4},\n  \"watermark_monotone\": {},\n  \
             \"span_always_bounded\": {},\n  \"final_live\": {},\n  \
             \"final_retired\": {},\n  \"expected_retired\": {},\n  \
             \"final_sealed_generations\": {},\n  \
             \"final_retired_pending_purge\": {},\n  \"merges\": {}\n}}\n",
            self.scale,
            self.threads,
            self.host_threads,
            self.pinned_workers,
            self.window,
            self.capacity,
            self.docs_streamed,
            self.elapsed.as_secs_f64(),
            self.intervals.len(),
            self.warmup_intervals,
            num_series(&|s| s.docs.to_string()),
            num_series(&|s| format!("{:.3}", s.rss_bytes as f64 / 1e6)),
            num_series(&|s| format!("{:.3}", s.table_bytes as f64 / 1e6)),
            num_series(&|s| s.live_points.to_string()),
            num_series(&|s| s.retired_pending_purge.to_string()),
            num_series(&|s| format!("{:.1}", s.insert_qps)),
            num_series(&|s| format!("{:.1}", s.query_qps)),
            self.rss_warmup_bytes as f64 / 1e6,
            self.rss_final_bytes as f64 / 1e6,
            self.rss_growth,
            self.watermark_monotone,
            self.span_always_bounded,
            self.final_live,
            self.final_retired,
            self.docs_streamed - self.window as usize,
            self.final_sealed_generations,
            self.final_retired_pending_purge,
            self.merges
        )
    }

    /// Writes the JSON report to `path` (fsync + atomic rename).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        crate::setup::write_json_atomic(path, &self.to_json())
    }
}

/// Report location: `PLSH_BENCH_SOAK_OUT`, defaulting to
/// `BENCH_soak.json` in the working directory.
pub fn output_path() -> String {
    std::env::var("PLSH_BENCH_SOAK_OUT").unwrap_or_else(|_| "BENCH_soak.json".to_string())
}
