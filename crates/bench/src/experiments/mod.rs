//! One module per table/figure of the paper's evaluation (Section 8).
//!
//! Each experiment exposes `run(...)` returning a plain result struct and a
//! `print(...)` that renders it as a markdown table with the paper's
//! reported values alongside, so `repro all` regenerates the whole of
//! EXPERIMENTS.md's measured columns.

pub mod faults;
pub mod fig10_latency;
pub mod fig11_streaming;
pub mod fig4_creation;
pub mod fig5_query;
pub mod fig6_model;
pub mod fig7_params;
pub mod fig8_threads;
pub mod fig9_nodes;
pub mod recall;
pub mod recovery;
pub mod scaling;
pub mod serve;
pub mod soak;
pub mod streaming_live;
pub mod streaming_overhead;
pub mod table2;
pub mod throughput;
