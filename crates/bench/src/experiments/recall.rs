//! Accuracy: measured recall against exact ground truth.
//!
//! The paper reports 92% of exact `R`-near neighbors found at δ = 0.1
//! ("a conservative estimate — in reality the algorithm reports 92%").
//! Note the theoretical `P'(R, k, m)` evaluated at the radius is lower;
//! empirical recall is higher because most true neighbors sit far inside
//! the radius, where `P'` approaches 1 (see EXPERIMENTS.md).

use plsh_workload::GroundTruth;

use crate::setup::Fixture;

/// The measured accuracy report.
#[derive(Debug, Clone)]
pub struct RecallReport {
    /// Micro-averaged recall over all queries.
    pub recall: f64,
    /// Theoretical `P'` at the radius for the fixture parameters.
    pub recall_bound_at_radius: f64,
    /// Total exact neighbors across queries.
    pub total_neighbors: usize,
    /// False positives are impossible (every candidate is distance-checked);
    /// recorded to assert precision = 1.
    pub precision: f64,
}

/// Measures recall of the fully optimized engine against exhaustive truth.
pub fn run(f: &Fixture) -> RecallReport {
    let engine = f.static_engine();
    let queries = f.query_vecs();
    let truth = GroundTruth::compute(
        f.corpus.vectors(),
        queries,
        f.params.radius() as f32,
        &f.pool,
    );
    let (answers, _) = engine.query_batch(queries, &f.pool);
    let reported: Vec<Vec<u32>> = answers
        .iter()
        .map(|hits| hits.iter().map(|h| h.index).collect())
        .collect();
    let recall = truth.recall_of(&reported);

    // Precision: every reported neighbor must be a true neighbor.
    let mut reported_total = 0usize;
    let mut correct = 0usize;
    for (i, rep) in reported.iter().enumerate() {
        reported_total += rep.len();
        for id in rep {
            if truth.neighbors(i).contains(id) {
                correct += 1;
            }
        }
    }
    RecallReport {
        recall,
        recall_bound_at_radius: f.params.recall_at_radius(),
        total_neighbors: truth.total_neighbors(),
        precision: if reported_total == 0 {
            1.0
        } else {
            correct as f64 / reported_total as f64
        },
    }
}

impl RecallReport {
    /// Prints the report.
    pub fn print(&self) {
        println!("## Accuracy — recall vs exact ground truth\n");
        println!("| Quantity | Value |");
        println!("|---|---:|");
        println!(
            "| Exact neighbors across queries | {} |",
            self.total_neighbors
        );
        println!(
            "| Measured recall | {:.1}% (paper: 92%) |",
            self.recall * 100.0
        );
        println!(
            "| P'(R) at the radius (worst-case point) | {:.1}% |",
            self.recall_bound_at_radius * 100.0
        );
        println!(
            "| Precision | {:.1}% (exact filtering ⇒ 100%) |",
            self.precision * 100.0
        );
        println!();
    }
}
