//! Table 2: PLSH vs deterministic baselines (exhaustive scan, inverted
//! index) — distance computations and runtime per query batch.
//!
//! Paper numbers (10.5 M tweets, 1000 queries, one node): exhaustive
//! 10 579 994 distance computations / 115.35 ms per query; inverted index
//! 847 028 / > 21.81 ms; PLSH 120 346 / 1.42 ms. PLSH ≈ 15× faster than
//! the inverted index and ≈ 81× faster than exhaustive at 92% recall.

use std::time::Duration;

use plsh_baselines::{ExhaustiveSearch, InvertedIndex};

use crate::setup::{ms, Fixture};

/// One algorithm's row of Table 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name.
    pub name: &'static str,
    /// Mean distance computations per query.
    pub distance_computations: f64,
    /// Mean runtime per query.
    pub per_query: Duration,
}

/// The measured table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows in the paper's order: exhaustive, inverted, PLSH.
    pub rows: Vec<Row>,
    /// PLSH recall against the exhaustive (exact) answers.
    pub plsh_recall: f64,
}

/// Runs all three algorithms over the fixture's corpus and queries.
pub fn run(f: &Fixture) -> Table2 {
    let queries = f.query_vecs();
    let radius = f.params.radius() as f32;

    let exhaustive = ExhaustiveSearch::new(f.corpus.dim(), f.corpus.vectors(), radius);
    let t0 = std::time::Instant::now();
    let exh_answers = exhaustive.query_batch(queries, &f.pool);
    let exh_time = t0.elapsed();
    let exh_comp: u64 = exh_answers.iter().map(|a| a.distance_computations).sum();

    let inverted = InvertedIndex::new(f.corpus.dim(), f.corpus.vectors(), radius);
    let t0 = std::time::Instant::now();
    let inv_answers = inverted.query_batch(queries, &f.pool);
    let inv_time = t0.elapsed();
    let inv_comp: u64 = inv_answers.iter().map(|a| a.distance_computations).sum();

    let engine = f.static_engine();
    let (plsh_answers, stats) = engine.query_batch(queries, &f.pool);

    // Recall of PLSH against the exhaustive (exact) answers.
    let mut found = 0usize;
    let mut total = 0usize;
    for (exact, approx) in exh_answers.iter().zip(&plsh_answers) {
        total += exact.matches.len();
        for &(id, _) in &exact.matches {
            if approx.iter().any(|h| h.index == id) {
                found += 1;
            }
        }
    }

    let q = queries.len() as f64;
    Table2 {
        rows: vec![
            Row {
                name: "Exhaustive search",
                distance_computations: exh_comp as f64 / q,
                per_query: exh_time / queries.len() as u32,
            },
            Row {
                name: "Inverted index",
                distance_computations: inv_comp as f64 / q,
                per_query: inv_time / queries.len() as u32,
            },
            Row {
                name: "PLSH",
                distance_computations: stats.avg_distance_computations(),
                per_query: stats.avg_latency(),
            },
        ],
        plsh_recall: plsh_workload::recall(found, total),
    }
}

impl Table2 {
    /// Prints the table in the paper's format.
    pub fn print(&self) {
        println!("## Table 2 — PLSH vs deterministic algorithms\n");
        println!("| Algorithm | # distance computations / query | Runtime / query |");
        println!("|---|---:|---:|");
        for r in &self.rows {
            println!(
                "| {} | {:.1} | {:.3} ms |",
                r.name,
                r.distance_computations,
                ms(r.per_query)
            );
        }
        let exh = &self.rows[0];
        let inv = &self.rows[1];
        let plsh = &self.rows[2];
        println!();
        println!(
            "PLSH speedup: {:.1}x vs exhaustive (paper: 81x), {:.1}x vs inverted index (paper: >15x)",
            exh.per_query.as_secs_f64() / plsh.per_query.as_secs_f64().max(1e-12),
            inv.per_query.as_secs_f64() / plsh.per_query.as_secs_f64().max(1e-12),
        );
        println!(
            "PLSH recall vs exact: {:.1}% (paper: 92%)\n",
            self.plsh_recall * 100.0
        );
    }
}
