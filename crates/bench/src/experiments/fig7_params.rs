//! Figure 7: estimated vs actual query runtimes across `(k, m)` settings.
//!
//! The paper sweeps (12,21), (14,29), (16,40), (18,55) at R = 0.9, δ = 0.1
//! on 10.5 M tweets and shows the model tracks both relative and absolute
//! changes. The sweep here uses the same `k` ladder with `m` rescaled to
//! the scaled-down corpus, and estimates `E[#collisions]` / `E[#unique]`
//! by distance sampling exactly as Section 7.3 prescribes.

use std::time::Duration;

use plsh_core::engine::EngineConfig;
use plsh_core::model::{MachineProfile, PerformanceModel};
use plsh_core::params::{estimate_candidates, PlshParams};
use plsh_core::rng::SplitMix64;

use crate::setup::{ms, Fixture, Scale};

/// One `(k, m)` point of the sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// Bits per table index.
    pub k: u32,
    /// Half-key function count.
    pub m: u32,
    /// Modeled batch query time.
    pub estimated: Duration,
    /// Measured batch query time.
    pub actual: Duration,
}

/// The sweep results.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Sweep points in `k` order.
    pub points: Vec<Point>,
    /// Queries per batch.
    pub queries: usize,
}

/// Scaled `(k, m)` ladder mirroring the paper's Figure 7 x-axis.
pub fn sweep_pairs(scale: Scale) -> Vec<(u32, u32)> {
    match scale {
        Scale::Quick => vec![(8, 9), (10, 12), (12, 16)],
        Scale::Full => vec![(10, 9), (12, 12), (14, 16), (16, 24)],
    }
}

/// Runs the sweep: for each pair, build a static engine and compare the
/// model estimate with the measured batch time.
pub fn run(f: &Fixture) -> Fig7 {
    // Distance sample for Eq. 7.1/7.2 (paper: 1000 queries × 1000 points).
    let mut rng = SplitMix64::new(777);
    let samples = 1000usize.min(f.corpus.len());
    let mut dists = Vec::with_capacity(samples * 16);
    for _ in 0..samples {
        let q = f
            .corpus
            .vector(rng.next_below(f.corpus.len() as u64) as u32);
        for _ in 0..16 {
            let v = f
                .corpus
                .vector(rng.next_below(f.corpus.len() as u64) as u32);
            dists.push(q.angular_distance(v));
        }
    }

    let machine = MachineProfile::calibrate(&f.pool, 2.6e9);
    let mut seq = machine;
    seq.threads = f.pool.num_threads();
    let model = PerformanceModel::new(seq);

    let nq = f.query_vecs().len();
    let points = sweep_pairs(f.scale)
        .into_iter()
        .map(|(k, m)| {
            let params = PlshParams::builder(f.corpus.dim())
                .k(k)
                .m(m)
                .radius(f.params.radius())
                .delta(f.params.delta())
                .seed(f.params.seed())
                .build()
                .expect("sweep parameters are valid");
            let (e_coll, e_uniq) = estimate_candidates(&dists, f.corpus.len(), k, m);
            let estimated = model
                .predict_query_batch(nq, f.corpus.len(), f.corpus.avg_nnz(), e_coll, e_uniq)
                .total();

            let engine = f.engine_with(EngineConfig::new(params, f.corpus.len()).manual_merge());
            let _ = engine.query_batch(&f.query_vecs()[..nq.min(32)], &f.pool);
            let (_, stats) = engine.query_batch(f.query_vecs(), &f.pool);
            Point {
                k,
                m,
                estimated,
                actual: stats.elapsed,
            }
        })
        .collect();
    Fig7 {
        points,
        queries: nq,
    }
}

impl Fig7 {
    /// Whether the model orders the sweep points the same way reality does
    /// (the "relative performance changes" claim).
    pub fn rank_agreement(&self) -> bool {
        let mut est: Vec<usize> = (0..self.points.len()).collect();
        est.sort_by(|&a, &b| self.points[a].estimated.cmp(&self.points[b].estimated));
        let mut act: Vec<usize> = (0..self.points.len()).collect();
        act.sort_by(|&a, &b| self.points[a].actual.cmp(&self.points[b].actual));
        est == act
    }

    /// Prints the sweep.
    pub fn print(&self) {
        println!(
            "## Figure 7 — estimated vs actual query time across (k, m) ({} queries)\n",
            self.queries
        );
        println!("| (k, m) | L | Estimated | Actual | Error |");
        println!("|---|---:|---:|---:|---:|");
        for p in &self.points {
            let err = (p.estimated.as_secs_f64() - p.actual.as_secs_f64()).abs()
                / p.actual.as_secs_f64().max(1e-12);
            println!(
                "| ({}, {}) | {} | {:.0} ms | {:.0} ms | {:.0}% |",
                p.k,
                p.m,
                p.m * (p.m - 1) / 2,
                ms(p.estimated),
                ms(p.actual),
                err * 100.0
            );
        }
        println!(
            "\nModel ranks the settings {} (paper: relative changes tracked correctly)\n",
            if self.rank_agreement() {
                "in the same order as measurements"
            } else {
                "in a different order than measurements"
            }
        );
    }
}
