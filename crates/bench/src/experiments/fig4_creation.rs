//! Figure 4: PLSH creation performance breakdown.
//!
//! Paper ablation (16 threads, 10.5 M tweets): "No optimizations"
//! (one-level partition, unvectorized hashing) → "+2 level hashtable" →
//! "+shared tables" → "+vectorization", for a cumulative 3.7× speedup.

use std::time::Duration;

use plsh_core::hash::{Hyperplanes, SketchMatrix};
use plsh_core::sparse::CrsMatrix;
use plsh_core::table::{BuildStrategy, StaticTables};
use plsh_workload::{CorpusConfig, SyntheticCorpus};

use crate::setup::{ms, Fixture, Scale};

/// One ablation level of Figure 4.
#[derive(Debug, Clone)]
pub struct Level {
    /// Paper label.
    pub name: &'static str,
    /// Hashing (sketch) time.
    pub hashing: Duration,
    /// Table insertion time.
    pub insertion: Duration,
}

impl Level {
    /// Total creation time for the level.
    pub fn total(&self) -> Duration {
        self.hashing + self.insertion
    }
}

/// The measured ablation.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Levels in cumulative order.
    pub levels: Vec<Level>,
    /// Points the tables were built over.
    pub points: usize,
}

/// Runs the four creation configurations.
///
/// The construction effects under test (TLB pressure from `2^k` flat
/// partitions, redundant first-level passes) only materialize once the
/// per-table arrays outgrow the caches, so at Full scale this experiment
/// uses a corpus 5× the fixture's (the paper builds over 10.5 M points).
pub fn run(f: &Fixture) -> Fig4 {
    let big;
    let docs: &[plsh_core::sparse::SparseVector] = match f.scale {
        Scale::Quick => f.corpus.vectors(),
        Scale::Full => {
            big = SyntheticCorpus::generate(CorpusConfig {
                num_docs: f.corpus.len() * 5,
                vocab_size: f.corpus.dim(),
                mean_words: 7.2,
                zipf_exponent: 1.0,
                duplicate_fraction: 0.2,
                seed: 0xF164,
            });
            big.vectors()
        }
    };
    // The construction ablation uses the paper's k = 16 at Full scale:
    // the one-level baseline's pain is 2^k live partitions, and with the
    // fixture's k = 14 the flat cursor array still fits in L2.
    let (k, m) = match f.scale {
        Scale::Quick => (f.params.k(), f.params.m()),
        Scale::Full => (16, f.params.m()),
    };
    let params = plsh_core::params::PlshParams::builder(f.corpus.dim())
        .k(k)
        .m(m)
        .radius(f.params.radius())
        .delta(f.params.delta())
        .seed(f.params.seed())
        .build()
        .expect("valid ablation parameters");
    let mut corpus = CrsMatrix::with_capacity(f.corpus.dim(), docs.len(), 8);
    for v in docs {
        corpus.push(v).expect("fixture corpus fits its dim");
    }
    let planes = Hyperplanes::new_dense(params.dim(), params.num_hashes(), params.seed(), &f.pool);

    let configs: [(&'static str, BuildStrategy, bool); 4] = [
        ("No optimizations", BuildStrategy::OneLevel, false),
        ("+2 level hashtable", BuildStrategy::TwoLevel, false),
        ("+shared tables", BuildStrategy::TwoLevelShared, false),
        ("+vectorization", BuildStrategy::TwoLevelShared, true),
    ];

    let levels = configs
        .into_iter()
        .map(|(name, strategy, vectorized)| {
            let t0 = std::time::Instant::now();
            let mut sk = SketchMatrix::new(params.m(), params.half_bits());
            sk.append_from(&corpus, &planes, 0, &f.pool, vectorized);
            let hashing = t0.elapsed();
            let t1 = std::time::Instant::now();
            let tables = StaticTables::build(&sk, strategy, &f.pool);
            let insertion = t1.elapsed();
            std::hint::black_box(tables.memory_bytes());
            Level {
                name,
                hashing,
                insertion,
            }
        })
        .collect();
    Fig4 {
        levels,
        points: corpus.num_rows(),
    }
}

impl Fig4 {
    /// Cumulative speedup of the last level over the first.
    pub fn total_speedup(&self) -> f64 {
        self.levels[0].total().as_secs_f64() / self.levels.last().unwrap().total().as_secs_f64()
    }

    /// Prints the figure as a table.
    pub fn print(&self) {
        println!(
            "## Figure 4 — PLSH creation performance breakdown (N = {})\n",
            self.points
        );
        println!("| Configuration | Hashing | Insertion | Total | Speedup vs no-opt |");
        println!("|---|---:|---:|---:|---:|");
        let base = self.levels[0].total().as_secs_f64();
        for l in &self.levels {
            println!(
                "| {} | {:.0} ms | {:.0} ms | {:.0} ms | {:.2}x |",
                l.name,
                ms(l.hashing),
                ms(l.insertion),
                ms(l.total()),
                base / l.total().as_secs_f64().max(1e-12),
            );
        }
        println!(
            "\nCumulative speedup: {:.2}x (paper: 3.7x)\n",
            self.total_speedup()
        );
    }
}
