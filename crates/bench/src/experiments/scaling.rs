//! Shard-scaling experiment: the `ShardedIndex` at 1/2/4/8 shards vs one
//! engine, recorded to `BENCH_cluster.json`.
//!
//! The paper's headline claim is near-linear scaling of streaming LSH
//! across cores and nodes (Figures 9–10). This experiment drives the
//! shard-per-core successor of the broadcast cluster through the regime
//! where sharding pays:
//!
//! * **During ingest** a paced firehose streams half the corpus in while
//!   the main thread keeps answering query batches. The experiment runs
//!   at a merge-pressure operating point (`η` well below the paper's 0.1,
//!   so the quick corpus actually exercises the merge path): one shared
//!   engine rebuilds its whole static structure at every threshold
//!   crossing, while `S` shard-local tables rebuild `1/S`-sized
//!   structures `1/S`-th as often each — the shard-local-tables argument
//!   (PIMDAL / Polynesia) measured directly as query throughput *during*
//!   the stream.
//! * **Quiesced** the same query batches run after everything merged —
//!   on a multi-core host this exposes the fan-out parallelism across
//!   shards; on a single hardware thread it honestly shows the per-shard
//!   Q1 duplication cost instead.
//! * **`answers_match`** re-checks, per shard count, that radius answer
//!   sets and k-NN rankings are bit-identical to a single engine over the
//!   same corpus (the root `backend_equivalence` suite covers the
//!   mid-ingest case; here it is re-verified at bench scale).
//!
//! The shard counts swept are fixed (1/2/4/8) so reports are comparable
//! across machines; the model-predicted count for *this* machine is
//! reported alongside.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use plsh_cluster::ShardedIndex;
use plsh_core::engine::EngineConfig;
use plsh_core::model::{MachineProfile, PerformanceModel};
use plsh_core::params::estimate_candidates;
use plsh_core::search::{SearchRequest, SearchResponse};
use plsh_core::sparse::SparseVector;
use plsh_parallel::current_num_threads_hint;

use crate::setup::{percentile_ms, Fixture, Scale};

/// Shard counts swept (the 1-shard row is the baseline every ratio uses).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Merge-pressure delta fraction: far below the paper's 0.1 so the scaled
/// corpora merge many times during the stream (at quick scale, η = 0.1
/// would merge a handful of times and the merge path would go unmeasured).
const ETA: f64 = 0.02;

/// Queries per measured batch (small enough to sample the changing epochs
/// many times over the ingest window).
const QUERY_SLICE: usize = 64;

/// Target wall time for draining the streamed half, per scale: sets the
/// firehose pacing so arrival resembles a rate-limited stream.
fn ingest_target_secs(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 2.5,
        Scale::Full => 10.0,
    }
}

/// One shard-count configuration's measurements.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Shard count.
    pub shards: usize,
    /// Fan-out pool threads used for queries.
    pub threads: usize,
    /// Aggregate ingest throughput: streamed points over the wall time
    /// from first route to fully drained (includes pacing waits).
    pub ingest_qps: f64,
    /// Wall time of the streamed half.
    pub ingest_elapsed: Duration,
    /// Merges fired during the stream (across all shards).
    pub merges: u64,
    /// Query batches completed while the stream was live.
    pub query_batches_during_ingest: u64,
    /// Query throughput while ingesting.
    pub query_qps_during_ingest: f64,
    /// Query throughput after everything quiesced into static tables.
    pub query_qps_quiesced: f64,
    /// p99 per-batch query latency while ingesting, milliseconds — tail
    /// stalls from shard merges show up here before they dent mean qps.
    pub query_p99_ms_during_ingest: f64,
    /// p99 per-batch query latency quiesced, milliseconds.
    pub query_p99_ms_quiesced: f64,
    /// Radius answer sets and k-NN rankings identical to the single
    /// reference engine.
    pub answers_match: bool,
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Per-shard-count measurements, ascending by shard count.
    pub points: Vec<ScalingPoint>,
    /// Shard count the calibrated performance model picks for this
    /// machine ([`PerformanceModel::pick_shard_count`]).
    pub model_predicted_shards: usize,
    /// Best multi-shard during-ingest qps over the 1-shard baseline.
    pub during_speedup_best: f64,
    /// Best multi-shard quiesced qps over the 1-shard baseline.
    pub quiesced_speedup_best: f64,
    /// Points pre-loaded (merged static) before the stream.
    pub preload_points: usize,
    /// Points streamed during the measurement.
    pub ingest_points: usize,
    /// Merge-pressure η used.
    pub eta: f64,
    /// Worker threads available to the harness.
    pub threads: usize,
    /// Hardware threads on the host that produced the report.
    pub host_threads: usize,
    /// Pool workers that successfully pinned to a core (0 when pinning
    /// is disabled or the host is single-core).
    pub pinned_workers: usize,
    /// Scale preset name.
    pub scale: &'static str,
}

impl ScalingReport {
    /// `answers_match` across every shard count.
    pub fn answers_match(&self) -> bool {
        self.points.iter().all(|p| p.answers_match)
    }

    /// The acceptance ratio: the better of the during-ingest and quiesced
    /// best multi-shard speedups. A multi-core host wins on quiesced
    /// fan-out; a single-core host wins on merge amplification during
    /// ingest; either way the multi-shard configuration must beat one
    /// shard.
    pub fn multi_shard_speedup(&self) -> f64 {
        self.during_speedup_best.max(self.quiesced_speedup_best)
    }
}

/// Canonical per-query answer forms for the match check: sorted
/// `(global id, distance bits)` sets for radius mode, ordered lists for
/// k-NN (rank order must match too).
fn radius_canon(resp: &SearchResponse) -> Vec<Vec<(u32, u32)>> {
    resp.results
        .iter()
        .map(|hits| {
            let mut set: Vec<(u32, u32)> = hits
                .iter()
                .map(|h| (h.index, h.distance.to_bits()))
                .collect();
            set.sort_unstable();
            set
        })
        .collect()
}

fn knn_canon(resp: &SearchResponse) -> Vec<Vec<(u32, u32)>> {
    resp.results
        .iter()
        .map(|hits| {
            hits.iter()
                .map(|h| (h.index, h.distance.to_bits()))
                .collect()
        })
        .collect()
}

/// Runs the sweep.
pub fn run(f: &Fixture) -> ScalingReport {
    let n = f.corpus.len();
    let preload = n / 2;
    let chunk = (n / 200).max(100);
    let rate = (n - preload) as f64 / ingest_target_secs(f.scale);
    let hint = current_num_threads_hint();

    // Reference: one engine over the whole corpus, fully static.
    let reference = f.static_engine();
    let queries = f.query_vecs();
    let slice = &queries[..queries.len().min(QUERY_SLICE)];
    let radius_req = SearchRequest::batch(slice.to_vec());
    let knn_req = SearchRequest::batch(slice.to_vec()).top_k(10);
    let ref_radius = radius_canon(
        &reference
            .search(&radius_req, &f.pool)
            .expect("valid request"),
    );
    let ref_knn = knn_canon(&reference.search(&knn_req, &f.pool).expect("valid request"));

    // Model prediction for this machine (reported, not swept). Distance
    // sample drawn as in Section 7.3 (query–point pairs from the corpus).
    let model_predicted_shards = {
        let mut rng = plsh_core::rng::SplitMix64::new(4242);
        let mut sample = Vec::with_capacity(2_000);
        for _ in 0..200 {
            let q = f.corpus.vector(rng.next_below(n as u64) as u32);
            for _ in 0..10 {
                let v = f.corpus.vector(rng.next_below(n as u64) as u32);
                sample.push(q.angular_distance(v));
            }
        }
        let profile = MachineProfile::calibrate(&f.pool, 2.6e9);
        let (e_coll, e_uniq) = estimate_candidates(&sample, n, f.params.k(), f.params.m());
        // Same cap as ShardedIndexBuilder's model path (and the checker's
        // plausibility bound): a many-core host must not predict an
        // unbounded fan-out.
        PerformanceModel::new(profile).pick_shard_count(
            QUERY_SLICE,
            n,
            f.corpus.avg_nnz(),
            e_coll,
            e_uniq,
            &f.params,
            hint.clamp(1, 64),
        )
    };

    let mut points = Vec::new();
    for &shards in &SHARD_COUNTS {
        eprintln!("#   scaling: {shards} shard(s)...");
        points.push(run_one(
            f,
            shards,
            hint,
            preload,
            chunk,
            rate,
            slice,
            &radius_req,
            &knn_req,
            &ref_radius,
            &ref_knn,
        ));
    }

    let base_during = points[0].query_qps_during_ingest;
    let base_quiesced = points[0].query_qps_quiesced;
    let ratio = |x: f64, base: f64| if base > 0.0 { x / base } else { 0.0 };
    let during_speedup_best = points[1..]
        .iter()
        .map(|p| ratio(p.query_qps_during_ingest, base_during))
        .fold(0.0, f64::max);
    let quiesced_speedup_best = points[1..]
        .iter()
        .map(|p| ratio(p.query_qps_quiesced, base_quiesced))
        .fold(0.0, f64::max);

    ScalingReport {
        points,
        model_predicted_shards,
        during_speedup_best,
        quiesced_speedup_best,
        preload_points: preload,
        ingest_points: n - preload,
        eta: ETA,
        threads: hint,
        host_threads: plsh_parallel::affinity::host_threads(),
        pinned_workers: plsh_parallel::pinned_worker_count(),
        scale: match f.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    f: &Fixture,
    shards: usize,
    hint: usize,
    preload: usize,
    chunk: usize,
    rate: f64,
    slice: &[SparseVector],
    radius_req: &SearchRequest,
    knn_req: &SearchRequest,
    ref_radius: &[Vec<(u32, u32)>],
    ref_knn: &[Vec<(u32, u32)>],
) -> ScalingPoint {
    let n = f.corpus.len();
    let threads = shards.min(hint).max(1);
    // Per-shard capacity is the full corpus (each shard is a
    // full-capacity node, the paper's per-node C), so the merge threshold
    // η·C is the same absolute size for every shard count and the merge
    // amplification difference is purely structural. Seals coalesce so
    // generation counts stay comparable across shard counts.
    let node = EngineConfig::new(f.params.clone(), n)
        .with_eta(ETA)
        .with_seal_min_points((chunk / 2).max(1));
    let index = Arc::new(
        ShardedIndex::builder(node)
            .shards(shards)
            .threads(threads)
            .ingest_rate(rate / shards as f64)
            .build()
            .expect("valid sharded config"),
    );

    // Preload the first half and quiesce it into static tables.
    index
        .insert_batch(&f.corpus.vectors()[..preload])
        .expect("preload fits");
    index.quiesce().expect("ingest workers alive");
    let merges_before = index.stats().merges;

    // Warm the query path.
    let _ = index.search(radius_req).expect("valid request");

    // Ingest thread: stream the second half; pacing happens in the
    // per-shard firehose workers.
    let done = Arc::new(AtomicBool::new(false));
    let ingest = {
        let index = index.clone();
        let done = done.clone();
        let docs = f.corpus.vectors()[preload..].to_vec();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            for batch in docs.chunks(chunk) {
                index.insert_batch(batch).expect("stream fits capacity");
            }
            index.flush().expect("ingest workers alive"); // visibility barrier
            let elapsed = t0.elapsed();
            done.store(true, Ordering::Release);
            elapsed
        })
    };

    // Query thread (this one): batches against whatever epochs are live.
    let mut during_time = Duration::ZERO;
    let mut during_lat: Vec<Duration> = Vec::new();
    let mut during_queries = 0u64;
    let mut during_batches = 0u64;
    while !done.load(Ordering::Acquire) {
        let t0 = Instant::now();
        let resp = index.search(radius_req).expect("valid request");
        let lat = t0.elapsed();
        during_time += lat;
        during_lat.push(lat);
        during_queries += slice.len() as u64;
        during_batches += 1;
        std::hint::black_box(resp.total_hits());
    }
    let ingest_elapsed = ingest.join().expect("ingest thread");
    let merges = index.stats().merges - merges_before;
    index.quiesce().expect("ingest workers alive");

    // Quiesced reference over the same slice, same batch count (min 5).
    let reps = during_batches.max(5);
    let _ = index.search(radius_req).expect("valid request");
    let mut quiesced_time = Duration::ZERO;
    let mut quiesced_lat: Vec<Duration> = Vec::new();
    let mut quiesced_queries = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let resp = index.search(radius_req).expect("valid request");
        let lat = t0.elapsed();
        quiesced_time += lat;
        quiesced_lat.push(lat);
        quiesced_queries += slice.len() as u64;
        std::hint::black_box(resp.total_hits());
    }

    // Answer equivalence vs the single reference engine.
    let radius_resp = index.search(radius_req).expect("valid request");
    let knn_resp = index.search(knn_req).expect("valid request");
    let answers_match = radius_canon(&radius_resp) == ref_radius && knn_canon(&knn_resp) == ref_knn;

    let qps = |q: u64, t: Duration| {
        if t.is_zero() {
            0.0
        } else {
            q as f64 / t.as_secs_f64()
        }
    };
    ScalingPoint {
        shards,
        threads,
        ingest_qps: qps((n - preload) as u64, ingest_elapsed),
        ingest_elapsed,
        merges,
        query_batches_during_ingest: during_batches,
        query_qps_during_ingest: qps(during_queries, during_time),
        query_qps_quiesced: qps(quiesced_queries, quiesced_time),
        query_p99_ms_during_ingest: percentile_ms(&mut during_lat, 99),
        query_p99_ms_quiesced: percentile_ms(&mut quiesced_lat, 99),
        answers_match,
    }
}

impl ScalingReport {
    /// Prints the report.
    pub fn print(&self) {
        println!(
            "## Shard scaling — {} preload + {} streamed, eta = {} ({} hardware threads, model picks {} shard(s))\n",
            self.preload_points, self.ingest_points, self.eta, self.threads,
            self.model_predicted_shards
        );
        println!("| Shards | Threads | Ingest qps | Merges | Query qps (during) | p99 ms (during) | Query qps (quiesced) | p99 ms (quiesced) | Answers match |");
        println!("|---:|---:|---:|---:|---:|---:|---:|---:|---|");
        for p in &self.points {
            println!(
                "| {} | {} | {:.0} | {} | {:.0} ({} batches) | {:.2} | {:.0} | {:.2} | {} |",
                p.shards,
                p.threads,
                p.ingest_qps,
                p.merges,
                p.query_qps_during_ingest,
                p.query_batches_during_ingest,
                p.query_p99_ms_during_ingest,
                p.query_qps_quiesced,
                p.query_p99_ms_quiesced,
                p.answers_match
            );
        }
        println!(
            "\nBest multi-shard speedup over 1 shard: {:.2}x during ingest, {:.2}x quiesced (bar: best >= 1.5).",
            self.during_speedup_best, self.quiesced_speedup_best
        );
        println!(
            "Host threads: {}; pinned workers: {}.\n",
            self.host_threads, self.pinned_workers
        );
    }

    /// Renders the report as JSON (hand-rolled: the vendored serde
    /// stand-in does not serialize).
    pub fn to_json(&self) -> String {
        let configs: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"shards\": {}, \"threads\": {}, \"ingest_qps\": {:.3}, \
                     \"ingest_elapsed_ms\": {:.3}, \"merges\": {}, \
                     \"query_batches_during_ingest\": {}, \
                     \"query_qps_during_ingest\": {:.3}, \
                     \"query_qps_quiesced\": {:.3}, \
                     \"query_p99_ms_during_ingest\": {:.4}, \
                     \"query_p99_ms_quiesced\": {:.4}, \"answers_match\": {}}}",
                    p.shards,
                    p.threads,
                    p.ingest_qps,
                    p.ingest_elapsed.as_secs_f64() * 1e3,
                    p.merges,
                    p.query_batches_during_ingest,
                    p.query_qps_during_ingest,
                    p.query_qps_quiesced,
                    p.query_p99_ms_during_ingest,
                    p.query_p99_ms_quiesced,
                    p.answers_match
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"scaling\",\n  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"host_threads\": {},\n  \
             \"pinned_workers\": {},\n  \"preload_points\": {},\n  \
             \"ingest_points\": {},\n  \"eta\": {},\n  \
             \"model_predicted_shards\": {},\n  \"configs\": [\n{}\n  ],\n  \
             \"during_speedup_best\": {:.4},\n  \
             \"quiesced_speedup_best\": {:.4},\n  \
             \"multi_shard_speedup\": {:.4},\n  \"answers_match\": {}\n}}\n",
            self.scale,
            self.threads,
            self.host_threads,
            self.pinned_workers,
            self.preload_points,
            self.ingest_points,
            self.eta,
            self.model_predicted_shards,
            configs.join(",\n"),
            self.during_speedup_best,
            self.quiesced_speedup_best,
            self.multi_shard_speedup(),
            self.answers_match()
        )
    }

    /// Writes the JSON report to `path` (fsync + atomic rename).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        crate::setup::write_json_atomic(path, &self.to_json())
    }
}

/// Report location: `PLSH_BENCH_CLUSTER_OUT`, defaulting to
/// `BENCH_cluster.json` in the working directory.
pub fn output_path() -> String {
    std::env::var("PLSH_BENCH_CLUSTER_OUT").unwrap_or_else(|_| "BENCH_cluster.json".to_string())
}
