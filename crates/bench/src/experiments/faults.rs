//! Chaos-soak experiment: streaming ingest + queries under randomized
//! injected faults — recorded to `BENCH_faults.json`.
//!
//! The fault-tolerance subsystem (named failpoints, supervised workers,
//! retry-with-backoff, degraded read-only mode) claims that transient
//! faults are invisible, worker panics are restarted, and a persistent
//! disk failure degrades writes while reads keep answering — and that
//! after the fault heals the engine converges bit-identically to an
//! unfaulted twin. This experiment drives one scripted life through all
//! three regimes and prices them:
//!
//! * **transient storm** — probabilistic WAL/fsync EIOs and merge-worker
//!   panics while streaming; measures ingest qps under fault vs clean,
//!   injected-fault and supervisor-restart counts,
//! * **persistent failure** — an unlimited WAL EIO trips degraded
//!   read-only mode; verifies queries still answer, then measures
//!   time-to-recover (heal + re-sync + re-apply the rejected batch),
//! * **convergence** — after healing, answers must be bit-identical to
//!   the unfaulted twin, and the journal written through all the retries
//!   must recover from disk to those same answers.

use std::time::Instant;

use plsh_core::engine::EngineConfig;
use plsh_core::error::PlshError;
use plsh_core::fault::{self, FaultKind, FaultSpec};
use plsh_core::sparse::SparseVector;
use plsh_core::streaming::StreamingEngine;
use plsh_parallel::ThreadPool;

use crate::setup::{Fixture, Scale};

/// Ingest batch size (one WAL record + fsync per batch).
const BATCH: usize = 256;

/// The measured report.
#[derive(Debug, Clone)]
pub struct Faults {
    /// Corpus points streamed.
    pub docs: usize,
    /// Fixture queries used for the equivalence checks.
    pub queries: usize,
    /// Total injections fired across all sites.
    pub faults_injected: u64,
    /// Merge-worker panics injected (each must be restarted).
    pub injected_panics: u64,
    /// Supervisor restarts observed in the health report.
    pub supervisor_restarts: u64,
    /// Times the engine tripped into degraded read-only mode.
    pub degraded_episodes: u64,
    /// Wall time from lifting the persistent fault to a healed,
    /// read-write engine with the rejected batch re-applied.
    pub time_to_recover_ms: f64,
    /// Ingest throughput during the transient-fault storm.
    pub qps_under_fault: f64,
    /// Ingest throughput of the identical unfaulted schedule.
    pub qps_clean: f64,
    /// While degraded, queries kept answering (no panic, no hang).
    pub reads_survived_degraded: bool,
    /// Post-heal answers are bit-identical to the unfaulted twin's.
    pub answers_match: bool,
    /// The journal written through the faults recovers from disk to the
    /// same answers.
    pub recovered_match: bool,
    /// Worker threads.
    pub threads: usize,
    /// Scale preset name.
    pub scale: &'static str,
}

fn sorted_answers(e: &StreamingEngine, qs: &[SparseVector]) -> Vec<Vec<(u32, u32)>> {
    qs.iter()
        .map(|q| {
            let mut hits: Vec<(u32, u32)> = e
                .query(q)
                .into_iter()
                .map(|n| (n.index, n.distance.to_bits()))
                .collect();
            hits.sort_unstable();
            hits
        })
        .collect()
}

/// The scripted life: stream the corpus in WAL-sized batches with a few
/// deletes sprinkled in, background-merging along the way. `faulted`
/// marks the engine that absorbs the injections (its phase-B rejected
/// batch is re-applied after healing, so both engines end on the same
/// accepted schedule).
struct Life {
    engine: StreamingEngine,
    stream_secs: f64,
}

/// Running tallies of the faulted life.
#[derive(Default)]
struct SoakState {
    degraded_episodes: u64,
    time_to_recover_ms: f64,
    read_failures: u64,
}

/// Probes queries while degraded: they must answer without panicking.
fn probe_reads(engine: &StreamingEngine, queries: &[SparseVector], soak: &mut SoakState) {
    let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sorted_answers(engine, &queries[..queries.len().min(8)]).len()
    }))
    .is_ok();
    if !ok {
        soak.read_failures += 1;
    }
}

/// Applies one scheduled step to the faulted engine, healing through any
/// degrade (a probabilistic storm can exhaust a retry budget; the storm
/// fault stays lifted afterwards so the schedule always completes).
fn apply_step(
    engine: &StreamingEngine,
    queries: &[SparseVector],
    i: usize,
    chunk: &[SparseVector],
    soak: &mut SoakState,
) {
    loop {
        match engine.insert_batch(chunk) {
            Ok(_) => break,
            Err(PlshError::Degraded(_)) => {
                soak.degraded_episodes += 1;
                probe_reads(engine, queries, soak);
                let t0 = Instant::now();
                fault::disarm(fault::WAL_APPEND);
                fault::disarm(fault::WAL_FSYNC);
                assert!(engine.heal(), "heal with the fault lifted");
                soak.time_to_recover_ms += t0.elapsed().as_secs_f64() * 1e3;
            }
            Err(other) => panic!("unexpected ingest error: {other}"),
        }
    }
    if i % 16 == 7 {
        let _ = engine.engine().try_delete((i * BATCH / 2) as u32);
    }
}

fn run_clean(f: &Fixture) -> Life {
    let engine = StreamingEngine::new(
        EngineConfig::new(f.params.clone(), f.corpus.len()),
        ThreadPool::new(f.pool.num_threads()),
    )
    .expect("valid config");
    let t0 = Instant::now();
    for (i, chunk) in f.corpus.vectors().chunks(BATCH).enumerate() {
        engine.insert_batch(chunk).expect("corpus fits");
        if i % 16 == 7 {
            let _ = engine.engine().try_delete((i * BATCH / 2) as u32);
        }
    }
    let stream_secs = t0.elapsed().as_secs_f64();
    engine.flush();
    Life {
        engine,
        stream_secs,
    }
}

/// Runs the chaos soak.
pub fn run(f: &Fixture) -> Faults {
    let dir = std::env::temp_dir().join(format!("plsh-bench-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    fault::disarm_all();
    fault::reset_counters();

    // Untimed warm-up (first-touch page faults), then the clean twin —
    // it doubles as the correctness reference.
    drop(run_clean(f));
    let twin = run_clean(f);
    let queries = f.query_vecs();
    let reference = sorted_answers(&twin.engine, queries);

    // ---- Faulted life ----
    let engine = StreamingEngine::new(
        EngineConfig::new(f.params.clone(), f.corpus.len()),
        ThreadPool::new(f.pool.num_threads()),
    )
    .expect("valid config");
    engine.persist_to(&dir).expect("fresh directory");

    // Phase A: transient storm. Every EIO probability sits far inside
    // the 4-retry budget (P[5 consecutive] ≈ 3e-4 per record), and the
    // merge panics sit inside the supervisor's 3-restart budget.
    fault::arm(
        fault::WAL_APPEND,
        FaultSpec::new(FaultKind::Err).probability(0.15),
    );
    fault::arm(
        fault::WAL_FSYNC,
        FaultSpec::new(FaultKind::Err).probability(0.1),
    );
    fault::arm(fault::SEAL_SEGMENT, FaultSpec::new(FaultKind::Err).times(2));
    fault::arm(
        fault::MERGE_BUILD,
        FaultSpec::new(FaultKind::Panic).times(2),
    );

    let chunks: Vec<&[SparseVector]> = f.corpus.vectors().chunks(BATCH).collect();
    let storm_end = chunks.len() * 3 / 5;
    let mut soak = SoakState::default();

    let t0 = Instant::now();
    for (i, chunk) in chunks[..storm_end].iter().enumerate() {
        apply_step(&engine, queries, i, chunk, &mut soak);
    }
    let storm_secs = t0.elapsed().as_secs_f64();
    let streamed_under_fault: usize = chunks[..storm_end].iter().map(|c| c.len()).sum();
    // Storm merges are in flight; let them land so every armed panic has
    // fired before the counters are read (disarming drops per-site
    // counts).
    engine.wait_for_merge();
    let injected_panics = fault::fired(fault::MERGE_BUILD);

    // Phase B: persistent failure. Unlimited EIOs exhaust the retry
    // budget; the engine must degrade (writes typed-rejected, reads
    // answering) until the fault lifts and heal() re-syncs.
    fault::disarm_all();
    fault::arm(fault::WAL_APPEND, FaultSpec::new(FaultKind::Err));
    let failed = chunks[storm_end];
    match engine.insert_batch(failed) {
        Err(PlshError::Degraded(_)) => soak.degraded_episodes += 1,
        other => panic!("persistent WAL failure must degrade, got {other:?}"),
    }
    assert!(engine.health().degraded, "health reports the degrade");
    probe_reads(&engine, queries, &mut soak);

    let t0 = Instant::now();
    fault::disarm_all();
    assert!(engine.heal(), "heal with the fault lifted");
    engine.insert_batch(failed).expect("re-apply after heal");
    if storm_end % 16 == 7 {
        let _ = engine.engine().try_delete((storm_end * BATCH / 2) as u32);
    }
    soak.time_to_recover_ms += t0.elapsed().as_secs_f64() * 1e3;

    // Phase C: finish the schedule clean and converge.
    for (i, chunk) in chunks.iter().enumerate().skip(storm_end + 1) {
        apply_step(&engine, queries, i, chunk, &mut soak);
    }
    engine.flush();

    let health = engine.health();
    let answers_match = sorted_answers(&engine, queries) == reference;
    let faults_injected = fault::fired_total();
    let supervisor_restarts = health.total_restarts();
    drop(engine);

    let recovered = StreamingEngine::recover_from(&dir, ThreadPool::new(f.pool.num_threads()))
        .expect("journal recovers");
    let recovered_match = sorted_answers(&recovered, queries) == reference;
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    fault::disarm_all();

    let qps = |n: usize, secs: f64| if secs > 0.0 { n as f64 / secs } else { 0.0 };
    Faults {
        docs: f.corpus.len(),
        queries: queries.len(),
        faults_injected,
        injected_panics,
        supervisor_restarts,
        degraded_episodes: soak.degraded_episodes,
        time_to_recover_ms: soak.time_to_recover_ms,
        qps_under_fault: qps(streamed_under_fault, storm_secs),
        qps_clean: qps(f.corpus.len(), twin.stream_secs),
        reads_survived_degraded: soak.read_failures == 0,
        answers_match,
        recovered_match,
        threads: f.pool.num_threads(),
        scale: match f.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
    }
}

impl Faults {
    /// Throughput under the transient storm as a fraction of clean.
    pub fn fault_overhead(&self) -> f64 {
        if self.qps_clean == 0.0 {
            0.0
        } else {
            self.qps_under_fault / self.qps_clean
        }
    }

    /// Prints the report.
    pub fn print(&self) {
        println!(
            "## Chaos soak — ingest + queries under injected faults ({} docs, {} threads)\n",
            self.docs, self.threads
        );
        println!("| Quantity | Measured |");
        println!("|---|---:|");
        println!("| Faults injected | {} |", self.faults_injected);
        println!(
            "| Merge panics / supervisor restarts | {} / {} |",
            self.injected_panics, self.supervisor_restarts
        );
        println!("| Degraded episodes | {} |", self.degraded_episodes);
        println!("| Time to recover | {:.1} ms |", self.time_to_recover_ms);
        println!(
            "| Ingest qps under fault / clean | {:.0} / {:.0} ({:.2}x) |",
            self.qps_under_fault,
            self.qps_clean,
            self.fault_overhead()
        );
        println!(
            "| Reads survived degraded mode | {} |",
            self.reads_survived_degraded
        );
        println!(
            "| Post-heal answers match twin ({} queries) | {} |",
            self.queries, self.answers_match
        );
        println!(
            "| Journal recovers to same answers | {} |",
            self.recovered_match
        );
        println!();
    }

    /// Renders the report as JSON (hand-rolled: the vendored serde
    /// stand-in does not serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"faults\",\n  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"host_threads\": {},\n  \
             \"pinned_workers\": {},\n  \"docs\": {},\n  \"queries\": {},\n  \
             \"faults_injected\": {},\n  \"injected_panics\": {},\n  \
             \"supervisor_restarts\": {},\n  \"degraded_episodes\": {},\n  \
             \"time_to_recover_ms\": {:.3},\n  \
             \"qps_under_fault\": {:.3},\n  \"qps_clean\": {:.3},\n  \
             \"fault_overhead\": {:.4},\n  \
             \"reads_survived_degraded\": {},\n  \
             \"answers_match\": {},\n  \"recovered_match\": {}\n}}\n",
            self.scale,
            self.threads,
            plsh_parallel::affinity::host_threads(),
            plsh_parallel::pinned_worker_count(),
            self.docs,
            self.queries,
            self.faults_injected,
            self.injected_panics,
            self.supervisor_restarts,
            self.degraded_episodes,
            self.time_to_recover_ms,
            self.qps_under_fault,
            self.qps_clean,
            self.fault_overhead(),
            self.reads_survived_degraded,
            self.answers_match,
            self.recovered_match
        )
    }

    /// Writes the JSON report to `path` (fsync + atomic rename).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        crate::setup::write_json_atomic(path, &self.to_json())
    }
}

/// Report location: `PLSH_BENCH_FAULTS_OUT`, defaulting to
/// `BENCH_faults.json` in the working directory.
pub fn output_path() -> String {
    std::env::var("PLSH_BENCH_FAULTS_OUT").unwrap_or_else(|_| "BENCH_faults.json".to_string())
}
