//! Figure 9: multi-node scaling with fixed data per node.
//!
//! Paper: 1 → 100 nodes at 10.5 M tweets/node; flat max/avg/min lines mean
//! perfect scaling; load imbalance (max/avg) stays below 1.3 and query
//! broadcast costs < 1% of runtime. The simulation keeps data per node
//! fixed and grows node count, measuring each node's compute time.

use std::time::Duration;

use plsh_cluster::{Cluster, ClusterConfig};
use plsh_core::engine::EngineConfig;
use plsh_workload::{CorpusConfig, SyntheticCorpus};

use crate::setup::{ms, Fixture, Scale};

/// One node-count measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node initialization time (max / avg / min).
    pub init: (Duration, Duration, Duration),
    /// Per-node query compute time (max / avg / min).
    pub query: (Duration, Duration, Duration),
    /// Query load imbalance max/avg.
    pub imbalance: f64,
    /// Coordinator overhead fraction.
    pub coordination: f64,
}

/// The sweep results.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Points in node-count order.
    pub points: Vec<Point>,
    /// Documents per node.
    pub docs_per_node: usize,
}

/// Sweeps node counts with fixed per-node data.
pub fn run(f: &Fixture) -> Fig9 {
    let (node_counts, docs_per_node): (&[usize], usize) = match f.scale {
        Scale::Quick => (&[1, 2, 4], 5_000),
        Scale::Full => (&[1, 2, 4, 8], 12_500),
    };
    let points = node_counts
        .iter()
        .map(|&nodes| {
            // Fresh corpus sized for this node count, same distribution.
            let corpus = SyntheticCorpus::generate(CorpusConfig {
                num_docs: docs_per_node * nodes,
                vocab_size: f.corpus.dim(),
                mean_words: 7.2,
                zipf_exponent: 1.0,
                duplicate_fraction: 0.2,
                seed: 0xC0FFEE ^ nodes as u64,
            });
            let config = ClusterConfig::new(
                EngineConfig::new(f.params.clone(), docs_per_node).manual_merge(),
                nodes,
                nodes, // insert window spanning the cluster spreads data evenly
            );
            let cluster = Cluster::new(config, &f.pool).expect("valid cluster");
            cluster
                .insert_batch(corpus.vectors(), &f.pool)
                .expect("cluster capacity matches corpus");
            let t0 = std::time::Instant::now();
            cluster.merge_all(&f.pool);
            let merge_total = t0.elapsed();
            // merge_all is sequential over nodes; approximate per-node time
            // by the mean (nodes are statistically identical).
            let per_node_init = merge_total / nodes as u32;
            let init = (per_node_init, per_node_init, per_node_init);

            let queries = f.query_vecs();
            let _ = cluster.query_batch(&queries[..queries.len().min(16)], &f.pool);
            let report = cluster.query_batch(queries, &f.pool);
            Point {
                nodes,
                init,
                query: (
                    report.max_node_time(),
                    report.avg_node_time(),
                    report.min_node_time(),
                ),
                imbalance: report.load_imbalance(),
                coordination: report.coordination_overhead(f.pool.num_threads()),
            }
        })
        .collect();
    Fig9 {
        points,
        docs_per_node,
    }
}

impl Fig9 {
    /// Prints the sweep.
    pub fn print(&self) {
        println!(
            "## Figure 9 — multi-node scaling ({} docs per node; flat lines = perfect scaling)\n",
            self.docs_per_node
        );
        println!("| Nodes | Init/node | Query max | Query avg | Query min | Imbalance | Coord. overhead |");
        println!("|---:|---:|---:|---:|---:|---:|---:|");
        for p in &self.points {
            println!(
                "| {} | {:.0} ms | {:.0} ms | {:.0} ms | {:.0} ms | {:.2} | {:.1}% |",
                p.nodes,
                ms(p.init.1),
                ms(p.query.0),
                ms(p.query.1),
                ms(p.query.2),
                p.imbalance,
                p.coordination * 100.0
            );
        }
        let worst = self
            .points
            .iter()
            .map(|p| p.imbalance)
            .fold(f64::NAN, f64::max);
        println!(
            "\nWorst query load imbalance: {:.2} (paper: < 1.3, ideal 1.0). Note: nodes share one physical core here, so per-node times are compute times, not wall-clock parallel times.\n",
            worst
        );
    }
}
