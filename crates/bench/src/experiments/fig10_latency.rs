//! Figure 10: latency vs throughput as the query batch size grows.
//!
//! Paper: batch sizes 10 → 1000 in steps of 10; throughput climbs and then
//! saturates around 700 queries/s once ~30 queries are buffered (at a
//! ~45 ms latency), after which extra batching only adds latency.

use std::time::Duration;

use crate::setup::{ms, Fixture, Scale};

/// One batch-size measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Queries processed together.
    pub batch: usize,
    /// Wall time for the batch (the latency of its last query).
    pub latency: Duration,
    /// Queries per second.
    pub throughput: f64,
}

/// The sweep results.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Points in batch-size order.
    pub points: Vec<Point>,
}

/// Sweeps batch sizes against a fully static engine.
pub fn run(f: &Fixture) -> Fig10 {
    let engine = f.static_engine();
    let max = f.query_vecs().len();
    let sizes: Vec<usize> = match f.scale {
        Scale::Quick => vec![10, 20, 50, 100, 200],
        Scale::Full => vec![10, 20, 30, 50, 100, 200, 300, 500, 700, 1000],
    }
    .into_iter()
    .filter(|&s| s <= max)
    .collect();

    let _ = engine.query_batch(&f.query_vecs()[..max.min(32)], &f.pool);
    let points = sizes
        .into_iter()
        .map(|batch| {
            // Repeat small batches so each point gets comparable total work.
            let reps = (max / batch).max(1);
            let mut total = Duration::ZERO;
            for r in 0..reps {
                let start = (r * batch) % (max - batch + 1);
                let (_, stats) = engine.query_batch(&f.query_vecs()[start..start + batch], &f.pool);
                total += stats.elapsed;
            }
            let latency = total / reps as u32;
            Point {
                batch,
                latency,
                throughput: batch as f64 / latency.as_secs_f64().max(1e-12),
            }
        })
        .collect();
    Fig10 { points }
}

impl Fig10 {
    /// Peak throughput across the sweep.
    pub fn peak_throughput(&self) -> f64 {
        self.points.iter().map(|p| p.throughput).fold(0.0, f64::max)
    }

    /// Prints the sweep.
    pub fn print(&self) {
        println!("## Figure 10 — latency vs throughput (batch-size sweep)\n");
        println!("| Batch size | Latency | Throughput |");
        println!("|---:|---:|---:|");
        for p in &self.points {
            println!(
                "| {} | {:.1} ms | {:.0} q/s |",
                p.batch,
                ms(p.latency),
                p.throughput
            );
        }
        println!(
            "\nPeak throughput: {:.0} q/s (paper: ~700 q/s saturating at ~30 buffered queries on 10.5M points)\n",
            self.peak_throughput()
        );
    }
}
