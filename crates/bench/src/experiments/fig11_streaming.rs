//! Figure 11: streaming query performance as the delta tables fill.
//!
//! Paper: node capacity C = 10.5 M, delta capacity η·C = 1 M. With the
//! static structure 50% full, query time matches 100%-static performance;
//! at 90% static fill and a full delta, queries rise to ≤ 1.3× static —
//! always within the engineered 1.5× bound.

use std::time::Duration;

use plsh_core::engine::{Engine, EngineConfig};

use crate::setup::{ms, Fixture};

/// One point of a fill curve.
#[derive(Debug, Clone)]
pub struct Point {
    /// Fraction of the delta capacity in use (0–100%).
    pub delta_fill_pct: u32,
    /// Query batch time.
    pub batch_time: Duration,
}

/// One curve (fixed static fill, growing delta).
#[derive(Debug, Clone)]
pub struct Curve {
    /// Static fill as a fraction of capacity (0.5 or 0.9).
    pub static_fill: f64,
    /// Measurements as the delta fills.
    pub points: Vec<Point>,
}

/// The measured figure.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// The 100%-static reference batch time (dotted line in the paper).
    pub static_reference: Duration,
    /// Curves for 50% and 90% static fill.
    pub curves: Vec<Curve>,
    /// Delta capacity η·C in points.
    pub delta_capacity: usize,
}

/// Runs the two fill curves plus the static reference.
pub fn run(f: &Fixture) -> Fig11 {
    let capacity = f.corpus.len();
    let eta = 0.1f64;
    let delta_capacity = (capacity as f64 * eta) as usize;
    let queries = f.query_vecs();

    // 100% static reference.
    let reference = f.static_engine();
    let _ = reference.query_batch(&queries[..queries.len().min(32)], &f.pool);
    let (_, stats) = reference.query_batch(queries, &f.pool);
    let static_reference = stats.elapsed;

    let fills = [0.5f64, 0.9];
    let steps = [0u32, 20, 40, 60, 80, 100];
    let curves = fills
        .iter()
        .map(|&static_fill| {
            let static_points = (capacity as f64 * static_fill) as usize;
            let engine = Engine::new(
                EngineConfig::new(f.params.clone(), capacity)
                    .manual_merge()
                    .with_eta(eta),
                &f.pool,
            )
            .expect("valid config");
            engine
                .insert_batch(&f.corpus.vectors()[..static_points], &f.pool)
                .expect("fits");
            engine.merge_delta(&f.pool);

            let mut inserted = 0usize;
            let points = steps
                .iter()
                .map(|&pct| {
                    let target = delta_capacity * pct as usize / 100;
                    if target > inserted {
                        let lo = static_points + inserted;
                        let hi = static_points + target;
                        engine
                            .insert_batch(&f.corpus.vectors()[lo..hi], &f.pool)
                            .expect("fits");
                        inserted = target;
                    }
                    let _ = engine.query_batch(&queries[..queries.len().min(16)], &f.pool);
                    let (_, stats) = engine.query_batch(queries, &f.pool);
                    Point {
                        delta_fill_pct: pct,
                        batch_time: stats.elapsed,
                    }
                })
                .collect();
            Curve {
                static_fill,
                points,
            }
        })
        .collect();

    Fig11 {
        static_reference,
        curves,
        delta_capacity,
    }
}

impl Fig11 {
    /// Worst slowdown across all curve points relative to the static
    /// reference (the paper's 1.5× bound).
    pub fn worst_slowdown(&self) -> f64 {
        let reference = self.static_reference.as_secs_f64().max(1e-12);
        self.curves
            .iter()
            .flat_map(|c| c.points.iter())
            .map(|p| p.batch_time.as_secs_f64() / reference)
            .fold(0.0, f64::max)
    }

    /// Prints both curves.
    pub fn print(&self) {
        println!(
            "## Figure 11 — streaming query performance (delta capacity = {} points)\n",
            self.delta_capacity
        );
        println!(
            "100% static reference: {:.0} ms per batch\n",
            ms(self.static_reference)
        );
        println!("| Delta fill | 50% static | 90% static |");
        println!("|---:|---:|---:|");
        for (i, &pct) in [0u32, 20, 40, 60, 80, 100].iter().enumerate() {
            let a = self.curves[0].points[i].batch_time;
            let b = self.curves[1].points[i].batch_time;
            println!("| {pct}% | {:.0} ms | {:.0} ms |", ms(a), ms(b));
        }
        println!(
            "\nWorst slowdown vs 100% static: {:.2}x (paper: <= 1.3x observed, 1.5x engineered bound)\n",
            self.worst_slowdown()
        );
    }
}
