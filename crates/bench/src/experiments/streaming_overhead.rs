//! Section 8.6 timings: chunked insert cost, merge cost, update overhead,
//! and the Section 6.3 η bound.
//!
//! Paper numbers (C = 10.5 M/node): inserting a 100 K chunk ≈ 400 ms;
//! merging a full 1 M delta ≈ 15 s worst case; at 400 M tweets/day over
//! M = 4 insert nodes, the insert+merge overhead is ≈ 2% of wall time.
//! The η bound comes from static (1.4 ms) vs all-delta (6 ms) query times:
//! η ≤ (1.5−1)·1.4/(6−1.4) ≈ 0.15, and the paper picks 0.1.

use std::time::Duration;

use plsh_core::engine::{eta_bound, Engine, EngineConfig};

use crate::setup::{ms, Fixture};

/// The measured overheads.
#[derive(Debug, Clone)]
pub struct StreamingOverhead {
    /// Insert chunk size used (scaled from the paper's 100 K).
    pub chunk: usize,
    /// Time to insert one chunk into the delta tables.
    pub insert_chunk: Duration,
    /// Time to merge a full delta (η·C points) into a ~full static table.
    pub merge: Duration,
    /// Fraction of wall time spent on inserts+merges at the paper's
    /// arrival rate, scaled to this node's capacity.
    pub overhead_fraction: f64,
    /// Static query time per query (all data static).
    pub static_per_query: Duration,
    /// Delta query time per query (all data in delta bins).
    pub delta_per_query: Duration,
    /// Derived η bound for a 1.5× slowdown budget.
    pub eta: f64,
}

/// Measures insert, merge, and the η bound on the fixture workload.
pub fn run(f: &Fixture) -> StreamingOverhead {
    let capacity = f.corpus.len();
    let eta = 0.1;
    let delta_cap = (capacity as f64 * eta) as usize;
    let chunk = (capacity / 100).max(1_000); // paper: 100 K of 10.5 M ≈ 1%
    let static_points = capacity - delta_cap;

    // Build a node at (1-η) static fill.
    let engine = Engine::new(
        EngineConfig::new(f.params.clone(), capacity)
            .manual_merge()
            .with_eta(eta),
        &f.pool,
    )
    .expect("valid config");
    engine
        .insert_batch(&f.corpus.vectors()[..static_points], &f.pool)
        .expect("fits");
    engine.merge_delta(&f.pool);

    // Insert chunks until the delta is full, timing the first chunk.
    let t0 = std::time::Instant::now();
    engine
        .insert_batch(
            &f.corpus.vectors()[static_points..static_points + chunk],
            &f.pool,
        )
        .expect("fits");
    let insert_chunk = t0.elapsed();
    engine
        .insert_batch(&f.corpus.vectors()[static_points + chunk..], &f.pool)
        .expect("fits");

    // Worst-case merge: static nearly full, delta full.
    let t0 = std::time::Instant::now();
    engine.merge_delta(&f.pool);
    let merge = t0.elapsed();

    // Query cost: all-static vs all-delta engines over the same points.
    let queries = f.query_vecs();
    let static_engine = f.static_engine();
    let _ = static_engine.query_batch(&queries[..queries.len().min(32)], &f.pool);
    let (_, s_stats) = static_engine.query_batch(queries, &f.pool);
    let delta_engine = Engine::new(
        EngineConfig::new(f.params.clone(), capacity).manual_merge(),
        &f.pool,
    )
    .expect("valid config");
    delta_engine
        .insert_batch(f.corpus.vectors(), &f.pool)
        .expect("fits");
    // No merge: everything stays in the delta bins.
    let _ = delta_engine.query_batch(&queries[..queries.len().min(32)], &f.pool);
    let (_, d_stats) = delta_engine.query_batch(queries, &f.pool);

    // Update-overhead model at the paper's arrival rate, scaled: the node
    // receives capacity-proportional traffic; a merge happens once per
    // delta fill (delta_cap / chunk chunk-inserts plus one merge).
    let chunks_per_fill = (delta_cap / chunk).max(1) as u32;
    let busy = insert_chunk * chunks_per_fill + merge;
    // Paper: 400 M tweets/day over M = 4 insert nodes → ≈ 1157 tweets/s
    // per node; a delta fill of η·C points arrives in η·C / rate seconds.
    // Both `busy` and the fill time are proportional to the point count,
    // so this fraction is directly comparable to the paper's ≈ 2% despite
    // the smaller node.
    let arrival_per_node_per_sec = 400e6 / 86_400.0 / 4.0;
    let fill_seconds = delta_cap as f64 / arrival_per_node_per_sec;
    let overhead_fraction = busy.as_secs_f64() / fill_seconds;

    StreamingOverhead {
        chunk,
        insert_chunk,
        merge,
        overhead_fraction,
        static_per_query: s_stats.avg_latency(),
        delta_per_query: d_stats.avg_latency(),
        eta: eta_bound(
            s_stats.avg_latency().as_secs_f64(),
            d_stats.avg_latency().as_secs_f64(),
            1.5,
        ),
    }
}

impl StreamingOverhead {
    /// Prints the report.
    pub fn print(&self) {
        println!("## Section 8.6 — streaming insert/merge overhead and the eta bound\n");
        println!("| Quantity | Measured | Paper (10.5M-point node) |");
        println!("|---|---:|---:|");
        println!(
            "| Insert chunk of {} | {:.0} ms | 100K in ~400 ms |",
            self.chunk,
            ms(self.insert_chunk)
        );
        println!(
            "| Full-delta merge | {:.0} ms | ~15 s worst case |",
            ms(self.merge)
        );
        println!(
            "| Update overhead at Twitter rate | {:.1}% | ~2% |",
            self.overhead_fraction * 100.0
        );
        println!(
            "| Static query | {:.3} ms | 1.4 ms |",
            ms(self.static_per_query)
        );
        println!(
            "| All-delta query | {:.3} ms | 6 ms |",
            ms(self.delta_per_query)
        );
        println!(
            "| Derived eta bound (1.5x budget) | {:.3} | <= 0.15, chose 0.1 |",
            self.eta
        );
        println!();
    }
}
