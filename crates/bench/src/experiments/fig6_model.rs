//! Figure 6: estimated vs actual runtimes for PLSH creation and querying.
//!
//! The paper validates the Section 7 model on two text datasets — the
//! Twitter corpus (error < 15%) and 8 M Wikipedia abstracts (< 25%). Both
//! are reproduced here: the fixture's tweet-like corpus plus a scaled
//! Wikipedia-like corpus (longer documents, fewer duplicates). The model
//! is evaluated with a machine profile calibrated on this host (effective
//! clock from a dependent-add chain, bandwidth from a streaming scan) and
//! compared against instrumented step timings (hashing, I1–I3, Q2, Q3).

use std::time::Duration;

use plsh_core::hash::{Hyperplanes, SketchMatrix};
use plsh_core::model::{relative_error, MachineProfile, PerformanceModel};
use plsh_core::params::PlshParams;
use plsh_core::query::{self, QueryContext, QueryScratch, QueryStrategy};
use plsh_core::sparse::CrsMatrix;
use plsh_core::table::{BuildStrategy, StaticTables};
use plsh_workload::{CorpusConfig, QuerySet, SyntheticCorpus};

use crate::setup::{ms, Fixture, Scale};

/// A (label, estimated, actual) comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Step label.
    pub name: &'static str,
    /// Model estimate.
    pub estimated: Duration,
    /// Measured wall time.
    pub actual: Duration,
}

impl Comparison {
    /// Relative error `|est − act| / act`.
    pub fn error(&self) -> f64 {
        relative_error(self.estimated, self.actual)
    }
}

/// Model-vs-measured for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetComparison {
    /// Dataset label ("Twitter-like" / "Wikipedia-like").
    pub dataset: &'static str,
    /// Creation rows: hashing, I1, I2, I3.
    pub creation: Vec<Comparison>,
    /// Query rows: Q2 (bitvector), Q3 (search).
    pub query: Vec<Comparison>,
}

impl DatasetComparison {
    /// Relative error of the summed creation and query estimates.
    pub fn total_errors(&self) -> (f64, f64) {
        let sum = |rows: &[Comparison]| {
            rows.iter().fold((0.0f64, 0.0f64), |(e, a), c| {
                (e + c.estimated.as_secs_f64(), a + c.actual.as_secs_f64())
            })
        };
        let (ce, ca) = sum(&self.creation);
        let (qe, qa) = sum(&self.query);
        (
            (ce - ca).abs() / ca.max(1e-12),
            (qe - qa).abs() / qa.max(1e-12),
        )
    }
}

/// The measured comparison for both datasets.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// One comparison per dataset.
    pub datasets: Vec<DatasetComparison>,
    /// The calibrated machine profile.
    pub machine: MachineProfile,
}

/// Builds both datasets with instrumentation and compares to the model.
pub fn run(f: &Fixture) -> Fig6 {
    let machine = MachineProfile::calibrate(&f.pool, 2.6e9);

    let twitter = run_dataset(
        "Twitter-like",
        f.corpus.vectors(),
        f.corpus.dim(),
        f.query_vecs(),
        &f.params,
        machine,
        f,
    );

    // Wikipedia-like corpus: longer docs, own queries, same (k, m).
    let mut wiki_config = CorpusConfig::wikipedia_like();
    if f.scale == Scale::Quick {
        wiki_config.num_docs = 10_000;
        wiki_config.vocab_size = f.corpus.dim();
    }
    let wiki = SyntheticCorpus::generate(wiki_config);
    let wiki_queries = QuerySet::sample_from_corpus(&wiki, f.query_vecs().len(), 0xA11CE);
    let wiki_params = PlshParams::builder(wiki.dim())
        .k(f.params.k())
        .m(f.params.m())
        .radius(f.params.radius())
        .delta(f.params.delta())
        .seed(f.params.seed())
        .build()
        .expect("valid parameters");
    let wikipedia = run_dataset(
        "Wikipedia-like",
        wiki.vectors(),
        wiki.dim(),
        wiki_queries.queries(),
        &wiki_params,
        machine,
        f,
    );

    Fig6 {
        datasets: vec![twitter, wikipedia],
        machine,
    }
}

fn run_dataset(
    dataset: &'static str,
    docs: &[plsh_core::sparse::SparseVector],
    dim: u32,
    queries: &[plsh_core::sparse::SparseVector],
    params: &PlshParams,
    machine: MachineProfile,
    f: &Fixture,
) -> DatasetComparison {
    let model = PerformanceModel::new(machine);

    // ---- Creation: measured.
    let mut corpus = CrsMatrix::with_capacity(dim, docs.len(), 8);
    for v in docs {
        corpus.push(v).expect("corpus fits its dim");
    }
    let planes = Hyperplanes::new_dense(dim, params.num_hashes(), params.seed(), &f.pool);
    let t0 = std::time::Instant::now();
    let mut sk = SketchMatrix::new(params.m(), params.half_bits());
    sk.append_from(&corpus, &planes, 0, &f.pool, true);
    let hashing_actual = t0.elapsed();
    let (tables, timings) = StaticTables::build_instrumented(
        &sk,
        sk.num_points(),
        BuildStrategy::TwoLevelShared,
        &f.pool,
    );

    // ---- Creation: modeled.
    let est = model.predict_creation(corpus.num_rows(), corpus.avg_nnz(), params);

    // ---- Query: measured (sequential profile).
    let ctx = QueryContext {
        static_data: &corpus,
        planes: &planes,
        static_tables: Some(&tables),
        deltas: &[],
        deleted: None,
        base: 0,
        retired_below: 0,
        m: params.m(),
        half_bits: params.half_bits(),
        radius: params.radius() as f32,
        strategy: QueryStrategy::optimized(),
        max_candidates: usize::MAX,
    };
    let mut scratch = QueryScratch::new(params.m(), params.half_bits(), corpus.num_rows(), dim);
    let warm = queries.len().min(32);
    let _ = query::profile_batch(&ctx, &queries[..warm], &mut scratch);
    let (_, qt, qstats) = query::profile_batch(&ctx, queries, &mut scratch);

    // ---- Query: modeled, using the measured collision statistics (the
    // sampling path is exercised by Figure 7; here the per-operation costs
    // are under test). The sequential profile runs on one thread.
    let nq = queries.len();
    let e_coll = qstats.collisions as f64 / nq as f64;
    let e_uniq = qstats.unique_candidates as f64 / nq as f64;
    let mut seq_machine = machine;
    seq_machine.threads = 1;
    let seq_model = PerformanceModel::new(seq_machine);
    let qest =
        seq_model.predict_query_batch(nq, corpus.num_rows(), corpus.avg_nnz(), e_coll, e_uniq);

    DatasetComparison {
        dataset,
        creation: vec![
            Comparison {
                name: "Hashing",
                estimated: est.hashing,
                actual: hashing_actual,
            },
            Comparison {
                name: "Step I1",
                estimated: est.step_i1,
                actual: timings.step_i1,
            },
            Comparison {
                name: "Step I2",
                estimated: est.step_i2,
                actual: timings.step_i2,
            },
            Comparison {
                name: "Step I3",
                estimated: est.step_i3,
                actual: timings.step_i3,
            },
        ],
        query: vec![
            Comparison {
                name: "Bitvector (Step Q2)",
                estimated: qest.step_q2,
                actual: qt.step_q2,
            },
            Comparison {
                name: "Search (Step Q3)",
                estimated: qest.step_q3,
                actual: qt.step_q3,
            },
        ],
    }
}

impl Fig6 {
    /// Prints both datasets' panels.
    pub fn print(&self) {
        println!("## Figure 6 — estimated vs actual runtimes\n");
        println!(
            "Machine profile (calibrated): {:.2} GHz effective, {:.1} bytes/cycle, {} thread(s)\n",
            self.machine.freq_hz / 1e9,
            self.machine.bytes_per_cycle,
            self.machine.threads
        );
        for d in &self.datasets {
            for (title, rows) in [("LSH creation", &d.creation), ("LSH query", &d.query)] {
                println!("### {} — {title}\n", d.dataset);
                println!("| Step | Estimated | Actual | Relative error |");
                println!("|---|---:|---:|---:|");
                for c in rows {
                    println!(
                        "| {} | {:.1} ms | {:.1} ms | {:.0}% |",
                        c.name,
                        ms(c.estimated),
                        ms(c.actual),
                        c.error() * 100.0
                    );
                }
                println!();
            }
            let (ce, qe) = d.total_errors();
            println!(
                "{}: total-time error creation {:.0}%, query {:.0}% (paper: <15% Twitter, <25% Wikipedia)\n",
                d.dataset,
                ce * 100.0,
                qe * 100.0
            );
        }
    }
}
