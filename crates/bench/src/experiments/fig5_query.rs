//! Figure 5: PLSH query performance breakdown (1000 queries).
//!
//! Paper ablation: "No optimizations" (STL-set dedup + naive sparse dot
//! product) → "+bitvector" → "+optimized sparse DP" → "+sw prefetch" →
//! "+large pages", for a cumulative 8.3× speedup.

use std::time::Duration;

use plsh_core::query::QueryStrategy;
use plsh_core::SearchRequest;

use crate::setup::{ms, Fixture};

/// One ablation level of Figure 5.
#[derive(Debug, Clone)]
pub struct Level {
    /// Paper label.
    pub name: &'static str,
    /// Batch time over the fixture's query set.
    pub batch_time: Duration,
}

/// The measured ablation.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Levels in cumulative order.
    pub levels: Vec<Level>,
    /// Queries per batch.
    pub queries: usize,
}

/// Runs the five query configurations against a fully static engine.
pub fn run(f: &Fixture) -> Fig5 {
    let engine = f.static_engine();
    let queries = f.query_vecs();
    let levels = QueryStrategy::ablation_levels()
        .into_iter()
        .map(|(name, strategy)| {
            // Warm-up pass, then the measured pass. The ablation level is a
            // request field; Figure 5's protocol uses the per-query
            // pipeline.
            let warm = SearchRequest::batch(queries[..queries.len().min(32)].to_vec())
                .with_strategy(strategy)
                .per_query_pipeline();
            let _ = engine
                .search(&warm, &f.pool)
                .expect("valid warm-up request");
            let req = SearchRequest::batch(queries.to_vec())
                .with_strategy(strategy)
                .per_query_pipeline()
                .with_stats();
            let stats = engine
                .search(&req, &f.pool)
                .expect("valid ablation request")
                .stats
                .expect("stats requested");
            Level {
                name,
                batch_time: stats.elapsed,
            }
        })
        .collect();
    Fig5 {
        levels,
        queries: queries.len(),
    }
}

impl Fig5 {
    /// Cumulative speedup of the last level over the first.
    pub fn total_speedup(&self) -> f64 {
        self.levels[0].batch_time.as_secs_f64()
            / self.levels.last().unwrap().batch_time.as_secs_f64()
    }

    /// Prints the figure as a table.
    pub fn print(&self) {
        println!(
            "## Figure 5 — PLSH query performance breakdown ({} queries)\n",
            self.queries
        );
        println!("| Configuration | Batch time | Per query | Speedup vs no-opt |");
        println!("|---|---:|---:|---:|");
        let base = self.levels[0].batch_time.as_secs_f64();
        for l in &self.levels {
            println!(
                "| {} | {:.0} ms | {:.3} ms | {:.2}x |",
                l.name,
                ms(l.batch_time),
                ms(l.batch_time) / self.queries as f64,
                base / l.batch_time.as_secs_f64().max(1e-12),
            );
        }
        println!(
            "\nCumulative speedup: {:.2}x (paper: 8.3x)\n",
            self.total_speedup()
        );
    }
}
