//! Live concurrent-ingest experiment: insert ‖ query ‖ merge overlap,
//! recorded to `BENCH_streaming.json`.
//!
//! The paper's headline scenario: a node pre-loaded to 50% static serves
//! query batches *while* a Twitter-paced firehose streams the other 50%
//! in, with background merges firing at `η·C`. The experiment measures
//!
//! * insert throughput on the ingest thread (hash + bucket + seal),
//! * merge cost split into off-to-the-side build time and the publish
//!   window (the only instant a merge can delay the write path — queries
//!   are epoch-pinned and never pause),
//! * query throughput during ingest vs after quiescing — the streaming
//!   design's acceptance bar is *within 2× of quiesced*,
//! * correctness while racing: every query batch must find the probe
//!   points and every pinned epoch must satisfy
//!   `visible = static + sealed`.

use std::time::{Duration, Instant};

use plsh_cluster::firehose::Firehose;
use plsh_core::engine::EngineConfig;
use plsh_core::streaming::StreamingEngine;

use crate::setup::{percentile_ms, Fixture, Scale};

/// Target wall time for draining the ingest half of the corpus, per
/// scale; sets the firehose pacing so the arrival process resembles a
/// rate-limited stream (the paper's per-node Twitter arrival is ~1.2 K
/// tweets/s, a small fraction of insert capability) rather than a
/// CPU-saturating bulk load. The full corpus hashes ~3× more per point
/// (k = 14, m = 16), so it drains over a longer window.
fn ingest_target_secs(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 4.0,
        Scale::Full => 20.0,
    }
}

/// Queries per measured batch during ingest (small enough to sample the
/// changing epoch many times over the ingest window).
const QUERY_SLICE: usize = 64;

/// The measured report.
#[derive(Debug, Clone)]
pub struct StreamingLive {
    /// Corpus points pre-loaded (and merged) before the stream starts.
    pub preload_points: usize,
    /// Points streamed in during the measurement.
    pub ingest_points: usize,
    /// Firehose batch size.
    pub batch_size: usize,
    /// Insert throughput over time spent inside `insert_batch`.
    pub insert_qps: f64,
    /// Wall time of the whole ingest (includes pacing waits).
    pub ingest_elapsed: Duration,
    /// Merges that fired during ingest.
    pub merges: u64,
    /// Build time of the last merge (runs concurrently with queries).
    pub merge_build: Duration,
    /// Publish window of the last merge (the epoch swap under the write
    /// lock — the closest thing to a "merge pause" this design has).
    pub merge_publish: Duration,
    /// Query batches completed while the ingest thread was live.
    pub query_batches_during_ingest: u64,
    /// Query throughput while ingesting.
    pub query_qps_during_ingest: f64,
    /// Query throughput after ingest + final merge quiesced.
    pub query_qps_quiesced: f64,
    /// p50 per-batch query latency while ingesting, milliseconds.
    pub query_p50_ms_during_ingest: f64,
    /// p99 per-batch query latency while ingesting, milliseconds — the
    /// interference headline: tail stalls from merge slices show up here
    /// long before they dent mean qps.
    pub query_p99_ms_during_ingest: f64,
    /// p50 per-batch query latency quiesced, milliseconds.
    pub query_p50_ms_quiesced: f64,
    /// p99 per-batch query latency quiesced, milliseconds.
    pub query_p99_ms_quiesced: f64,
    /// Every in-flight query batch found every pre-loaded probe point.
    pub probe_always_found: bool,
    /// Every epoch pinned during ingest satisfied
    /// `visible = static + sealed`.
    pub epoch_always_consistent: bool,
    /// Worker threads.
    pub threads: usize,
    /// Hardware threads on the host that produced the report.
    pub host_threads: usize,
    /// Pool workers that successfully pinned to a core (0 when pinning
    /// is disabled or the host is single-core).
    pub pinned_workers: usize,
    /// Scale preset name.
    pub scale: &'static str,
}

/// Runs the live overlap measurement.
pub fn run(f: &Fixture) -> StreamingLive {
    let capacity = f.corpus.len();
    let preload = capacity / 2;
    let batch_size = (capacity / 100).max(250);
    let rate = (capacity - preload) as f64 / ingest_target_secs(f.scale);

    let engine = StreamingEngine::new(
        EngineConfig::new(f.params.clone(), capacity).with_eta(0.1),
        f.pool.clone(),
    )
    .expect("valid config");
    engine
        .insert_batch(&f.corpus.vectors()[..preload])
        .expect("preload fits");
    engine.wait_for_merge();
    engine.merge_now();

    // Probe queries whose sources are pre-loaded: they must be found by
    // every batch regardless of which epoch it pins.
    let queries = f.query_vecs();
    let slice = &queries[..queries.len().min(QUERY_SLICE)];
    let probes: Vec<(usize, u32)> = (0..queries.len().min(QUERY_SLICE))
        .filter_map(|i| {
            f.queries
                .source_id(i)
                .filter(|&src| (src as usize) < preload)
                .map(|src| (i, src))
        })
        .collect();
    let check = |answers: &[Vec<plsh_core::Neighbor>]| {
        probes
            .iter()
            .all(|&(qi, src)| answers[qi].iter().any(|h| h.index == src))
    };

    // Warm up the query path before the race starts, and baseline the
    // merge counter so the report counts only merges fired by the ingest.
    let _ = engine.query_batch(slice);
    let merges_before = engine.stats().merges;

    // Ingest thread: the paced firehose pumped into the engine.
    let hose = Firehose::start_paced(f.corpus.vectors()[preload..].to_vec(), batch_size, 4, rate);
    let pump = hose.pump_into(engine.clone());

    // Query thread (this one): batches against whatever epoch is live.
    let mut during_time = Duration::ZERO;
    let mut during_lat: Vec<Duration> = Vec::new();
    let mut during_queries = 0u64;
    let mut during_batches = 0u64;
    let mut probe_always_found = true;
    let mut epoch_always_consistent = true;
    while !pump.is_finished() {
        let info = engine.epoch_info();
        epoch_always_consistent &= info.visible_points == info.static_points + info.sealed_points;
        let t0 = Instant::now();
        let (answers, _) = engine.query_batch(slice);
        let lat = t0.elapsed();
        during_time += lat;
        during_lat.push(lat);
        during_queries += slice.len() as u64;
        during_batches += 1;
        probe_always_found &= check(&answers);
    }
    let ingest = pump.join();
    engine.wait_for_merge();
    // Count (and time) only the merges the ingest itself triggered; the
    // quiescing merge below is bookkeeping, not part of the measurement.
    let merges = engine.stats().merges - merges_before;
    let merge_report = engine.last_merge();
    engine.merge_now(); // quiesce: fold any sealed tail

    // Quiesced reference over the same slice, same batch count (min 5).
    let reps = during_batches.max(5);
    let _ = engine.query_batch(slice);
    let mut quiesced_time = Duration::ZERO;
    let mut quiesced_lat: Vec<Duration> = Vec::new();
    let mut quiesced_queries = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (answers, _) = engine.query_batch(slice);
        let lat = t0.elapsed();
        quiesced_time += lat;
        quiesced_lat.push(lat);
        quiesced_queries += slice.len() as u64;
        probe_always_found &= check(&answers);
    }

    let qps = |n: u64, t: Duration| {
        if t.is_zero() {
            0.0
        } else {
            n as f64 / t.as_secs_f64()
        }
    };
    StreamingLive {
        preload_points: preload,
        ingest_points: ingest.points as usize,
        batch_size,
        insert_qps: ingest.insert_qps(),
        ingest_elapsed: ingest.elapsed,
        merges,
        merge_build: merge_report.build,
        merge_publish: merge_report.publish,
        query_batches_during_ingest: during_batches,
        query_qps_during_ingest: qps(during_queries, during_time),
        query_qps_quiesced: qps(quiesced_queries, quiesced_time),
        query_p50_ms_during_ingest: percentile_ms(&mut during_lat, 50),
        query_p99_ms_during_ingest: percentile_ms(&mut during_lat, 99),
        query_p50_ms_quiesced: percentile_ms(&mut quiesced_lat, 50),
        query_p99_ms_quiesced: percentile_ms(&mut quiesced_lat, 99),
        probe_always_found,
        epoch_always_consistent,
        threads: f.pool.num_threads(),
        host_threads: plsh_parallel::affinity::host_threads(),
        pinned_workers: plsh_parallel::pinned_worker_count(),
        scale: match f.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
    }
}

impl StreamingLive {
    /// Query throughput during ingest as a fraction of quiesced (the
    /// acceptance bar is ≥ 0.5, i.e. within 2×).
    pub fn during_over_quiesced(&self) -> f64 {
        if self.query_qps_quiesced == 0.0 {
            0.0
        } else {
            self.query_qps_during_ingest / self.query_qps_quiesced
        }
    }

    /// Prints the report.
    pub fn print(&self) {
        println!(
            "## Live streaming — insert ‖ query ‖ merge overlap ({} threads)\n",
            self.threads
        );
        println!("| Quantity | Measured |");
        println!("|---|---:|");
        println!(
            "| Ingest | {} points in {:.2} s ({} per firehose batch) |",
            self.ingest_points,
            self.ingest_elapsed.as_secs_f64(),
            self.batch_size
        );
        println!(
            "| Insert throughput (ingest thread) | {:.0} points/s |",
            self.insert_qps
        );
        println!("| Background merges during ingest | {} |", self.merges);
        println!(
            "| Last merge: build / publish window | {:.1} ms / {:.3} ms |",
            self.merge_build.as_secs_f64() * 1e3,
            self.merge_publish.as_secs_f64() * 1e3
        );
        println!(
            "| Query qps during ingest | {:.0} ({} batches) |",
            self.query_qps_during_ingest, self.query_batches_during_ingest
        );
        println!("| Query qps quiesced | {:.0} |", self.query_qps_quiesced);
        println!(
            "| Query batch p50 / p99 during ingest | {:.2} ms / {:.2} ms |",
            self.query_p50_ms_during_ingest, self.query_p99_ms_during_ingest
        );
        println!(
            "| Query batch p50 / p99 quiesced | {:.2} ms / {:.2} ms |",
            self.query_p50_ms_quiesced, self.query_p99_ms_quiesced
        );
        println!(
            "| During / quiesced | {:.2} (bar: >= 0.85) |",
            self.during_over_quiesced()
        );
        println!(
            "| Host threads / pinned workers | {} / {} |",
            self.host_threads, self.pinned_workers
        );
        println!(
            "| Probes found in every batch | {} |",
            self.probe_always_found
        );
        println!(
            "| Epochs always consistent | {} |",
            self.epoch_always_consistent
        );
        println!();
    }

    /// Renders the report as JSON (hand-rolled: the vendored serde
    /// stand-in does not serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"streaming\",\n  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"host_threads\": {},\n  \
             \"pinned_workers\": {},\n  \"preload_points\": {},\n  \
             \"ingest_points\": {},\n  \"batch_size\": {},\n  \
             \"insert_qps\": {:.3},\n  \"ingest_elapsed_ms\": {:.3},\n  \
             \"merges\": {},\n  \"merge_build_ms\": {:.3},\n  \
             \"merge_publish_ms\": {:.4},\n  \
             \"query_batches_during_ingest\": {},\n  \
             \"query_qps_during_ingest\": {:.3},\n  \
             \"query_qps_quiesced\": {:.3},\n  \
             \"query_p50_ms_during_ingest\": {:.4},\n  \
             \"query_p99_ms_during_ingest\": {:.4},\n  \
             \"query_p50_ms_quiesced\": {:.4},\n  \
             \"query_p99_ms_quiesced\": {:.4},\n  \
             \"during_over_quiesced\": {:.4},\n  \
             \"probe_always_found\": {},\n  \
             \"epoch_always_consistent\": {}\n}}\n",
            self.scale,
            self.threads,
            self.host_threads,
            self.pinned_workers,
            self.preload_points,
            self.ingest_points,
            self.batch_size,
            self.insert_qps,
            self.ingest_elapsed.as_secs_f64() * 1e3,
            self.merges,
            self.merge_build.as_secs_f64() * 1e3,
            self.merge_publish.as_secs_f64() * 1e3,
            self.query_batches_during_ingest,
            self.query_qps_during_ingest,
            self.query_qps_quiesced,
            self.query_p50_ms_during_ingest,
            self.query_p99_ms_during_ingest,
            self.query_p50_ms_quiesced,
            self.query_p99_ms_quiesced,
            self.during_over_quiesced(),
            self.probe_always_found,
            self.epoch_always_consistent
        )
    }

    /// Writes the JSON report to `path` (fsync + atomic rename).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        crate::setup::write_json_atomic(path, &self.to_json())
    }
}

/// Report location: `PLSH_BENCH_STREAMING_OUT`, defaulting to
/// `BENCH_streaming.json` in the working directory.
pub fn output_path() -> String {
    std::env::var("PLSH_BENCH_STREAMING_OUT").unwrap_or_else(|_| "BENCH_streaming.json".to_string())
}
