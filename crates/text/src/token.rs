//! Tokenization and cleaning (paper Section 8: "tweets were cleaned by
//! removing non-alphabet characters, duplicates and stop words").

/// A compact English stop-word list.
///
/// The paper does not publish its list; this is the common core that any
/// reasonable list contains. The tokenizer accepts a custom list, so
/// experiments can reproduce other cleaning policies.
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "had", "has", "have",
    "he", "her", "his", "i", "if", "in", "is", "it", "its", "my", "no", "not", "of", "on", "or",
    "our", "she", "so", "that", "the", "their", "them", "they", "this", "to", "was", "we", "were",
    "what", "when", "which", "who", "will", "with", "you", "your",
];

/// Lowercasing, alphabetic-only tokenizer with stop-word removal and
/// within-document deduplication.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stop_words: Vec<String>,
    min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new(STOP_WORDS.iter().map(|s| s.to_string()), 1)
    }
}

impl Tokenizer {
    /// Creates a tokenizer with a custom stop-word list and a minimum token
    /// length (tokens shorter than `min_len` are dropped).
    pub fn new<I>(stop_words: I, min_len: usize) -> Self
    where
        I: IntoIterator<Item = String>,
    {
        let mut stop_words: Vec<String> = stop_words.into_iter().collect();
        stop_words.sort_unstable();
        stop_words.dedup();
        Self {
            stop_words,
            min_len: min_len.max(1),
        }
    }

    /// A tokenizer that keeps everything (no stop words, length 1).
    pub fn keep_all() -> Self {
        Self::new(std::iter::empty(), 1)
    }

    /// True iff `word` (already lowercase) is a stop word.
    pub fn is_stop_word(&self, word: &str) -> bool {
        self.stop_words
            .binary_search_by(|s| s.as_str().cmp(word))
            .is_ok()
    }

    /// Tokenizes a document: split on non-alphabetic characters, lowercase,
    /// drop stop words and short tokens, deduplicate preserving first
    /// occurrence.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut current = String::new();
        let flush = |current: &mut String, out: &mut Vec<String>| {
            if current.len() >= self.min_len
                && !self.is_stop_word(current)
                && !out.iter().any(|t| t == current)
            {
                out.push(std::mem::take(current));
            } else {
                current.clear();
            }
        };
        for ch in text.chars() {
            if ch.is_alphabetic() {
                current.extend(ch.to_lowercase());
            } else if !current.is_empty() {
                flush(&mut current, &mut out);
            }
        }
        if !current.is_empty() {
            flush(&mut current, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("The quick brown fox"),
            vec!["quick", "brown", "fox"]
        );
    }

    #[test]
    fn strips_non_alphabetic() {
        let t = Tokenizer::keep_all();
        assert_eq!(
            t.tokenize("hello, world! 123 foo_bar"),
            vec!["hello", "world", "foo", "bar"]
        );
    }

    #[test]
    fn deduplicates_within_document() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize("echo echo ECHO delta"), vec!["echo", "delta"]);
    }

    #[test]
    fn removes_stop_words() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("the cat and the hat"), vec!["cat", "hat"]);
        assert!(t.is_stop_word("the"));
        assert!(!t.is_stop_word("cat"));
    }

    #[test]
    fn empty_and_symbol_only_documents() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("!!! 42 @#$").is_empty());
        // A tweet of only stop words also empties out (the paper's
        // 0-length-query case).
        assert!(t.tokenize("the and of").is_empty());
    }

    #[test]
    fn min_len_filter() {
        let t = Tokenizer::new(std::iter::empty(), 3);
        assert_eq!(t.tokenize("a to the cat xy"), vec!["the", "cat"]);
    }

    #[test]
    fn unicode_lowercasing() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize("Grüße AUS Köln"), vec!["grüße", "aus", "köln"]);
    }

    #[test]
    fn custom_stop_words() {
        let t = Tokenizer::new(vec!["cat".to_string()], 1);
        assert_eq!(t.tokenize("the cat sat"), vec!["the", "sat"]);
    }
}
