//! # plsh-text — document vectorization for PLSH
//!
//! The paper indexes tweets "cleaned by removing non-alphabet characters,
//! duplicates and stop words", encoded as sparse IDF-weighted unit vectors
//! in a 500 000-word vocabulary (Section 8). This crate is that pipeline:
//!
//! 1. [`Tokenizer`] — lowercases, strips non-alphabetic characters, drops
//!    stop words and deduplicates tokens within a document.
//! 2. [`Vocabulary`] — assigns stable dimension ids to terms and counts
//!    document frequencies.
//! 3. [`IdfWeights`] — inverse-document-frequency scores "to give more
//!    importance to less common words".
//! 4. [`Vectorizer`] — turns a document into a sparse unit vector,
//!    silently skipping out-of-vocabulary terms (a document that is
//!    entirely out-of-vocabulary yields `None`, the paper's "0-length
//!    query" case).
//!
//! ```
//! use plsh_text::{CorpusBuilder, Tokenizer};
//!
//! let docs = ["the quick brown fox", "lazy brown dog", "quick dog!"];
//! let mut builder = CorpusBuilder::new(Tokenizer::default());
//! for d in &docs {
//!     builder.add_document(d);
//! }
//! let vectorizer = builder.finish();
//! let v = vectorizer.vectorize("a quick fox").unwrap();
//! assert!((v.norm() - 1.0).abs() < 1e-6);
//! assert!(vectorizer.vectorize("zebra unknown words").is_none());
//! ```

mod error;
mod idf;
mod token;
mod vectorize;
mod vocab;

pub use error::TextError;
pub use idf::IdfWeights;
pub use token::{Tokenizer, STOP_WORDS};
pub use vectorize::{CorpusBuilder, Vectorizer};
pub use vocab::Vocabulary;
