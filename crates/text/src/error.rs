//! Text-pipeline errors, convertible into the workspace-wide
//! [`plsh_core::PlshError`] so a client built on `plsh::Index` surfaces
//! one `Result` type end-to-end.

use std::fmt;

use plsh_core::PlshError;

/// Errors produced while turning raw text into index-ready vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum TextError {
    /// Every token of the document was out-of-vocabulary or a stop word —
    /// the paper's "0-length query", which "will not find any meaningful
    /// matches" and is dropped.
    OutOfVocabulary,
    /// The weighted term vector could not be normalized (degenerate IDF
    /// weights).
    Vector(PlshError),
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::OutOfVocabulary => {
                write!(
                    f,
                    "document is entirely out-of-vocabulary (0-length vector)"
                )
            }
            TextError::Vector(e) => write!(f, "vectorization failed: {e}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<TextError> for PlshError {
    fn from(e: TextError) -> Self {
        match e {
            // A fully out-of-vocabulary document *is* the empty-vector
            // case the core error model already names.
            TextError::OutOfVocabulary => PlshError::EmptyVector,
            TextError::Vector(e) => e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_into_core_error() {
        assert_eq!(
            PlshError::from(TextError::OutOfVocabulary),
            PlshError::EmptyVector
        );
        let inner = PlshError::NotNormalizable;
        assert_eq!(PlshError::from(TextError::Vector(inner.clone())), inner);
    }

    #[test]
    fn display_is_informative() {
        assert!(TextError::OutOfVocabulary
            .to_string()
            .contains("out-of-vocabulary"));
    }
}
