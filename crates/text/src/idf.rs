//! Inverse document frequency weighting (paper Section 8: "we use an
//! Inverse Document Frequency (IDF) score that gives greater weight to
//! less frequently occurring words").

use crate::vocab::Vocabulary;

/// Precomputed IDF score per vocabulary dimension.
///
/// Uses the smoothed form `idf(t) = ln((1 + N) / (1 + df(t))) + 1`, which
/// is strictly positive (so vectors never lose dimensions to zero weights)
/// and monotonically decreasing in document frequency.
#[derive(Debug, Clone)]
pub struct IdfWeights {
    scores: Vec<f32>,
}

impl IdfWeights {
    /// Computes IDF scores from a vocabulary's document frequencies.
    pub fn from_vocabulary(vocab: &Vocabulary) -> Self {
        let n = vocab.num_docs() as f64;
        let scores = (0..vocab.len() as u32)
            .map(|id| {
                let df = vocab.doc_freq(id) as f64;
                (((1.0 + n) / (1.0 + df)).ln() + 1.0) as f32
            })
            .collect();
        Self { scores }
    }

    /// IDF score of dimension `id` (0 for unknown dimensions).
    pub fn score(&self, id: u32) -> f32 {
        self.scores.get(id as usize).copied().unwrap_or(0.0)
    }

    /// Number of scored dimensions.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no dimensions are scored.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.observe_document(&["common", "rare"]);
        v.observe_document(&["common"]);
        v.observe_document(&["common"]);
        v
    }

    #[test]
    fn rare_words_weigh_more() {
        let v = vocab();
        let idf = IdfWeights::from_vocabulary(&v);
        let common = idf.score(v.id("common").unwrap());
        let rare = idf.score(v.id("rare").unwrap());
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn scores_are_positive() {
        let v = vocab();
        let idf = IdfWeights::from_vocabulary(&v);
        for id in 0..v.len() as u32 {
            assert!(idf.score(id) > 0.0);
        }
    }

    #[test]
    fn ubiquitous_word_score_floor() {
        // A word in every document gets the floor score of exactly 1.
        let mut v = Vocabulary::new();
        v.observe_document(&["x"]);
        v.observe_document(&["x"]);
        let idf = IdfWeights::from_vocabulary(&v);
        assert!((idf.score(0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_dimension_scores_zero() {
        let idf = IdfWeights::from_vocabulary(&vocab());
        assert_eq!(idf.score(1000), 0.0);
        assert_eq!(idf.len(), 2);
        assert!(!idf.is_empty());
    }
}
