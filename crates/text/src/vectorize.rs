//! Document → sparse unit vector conversion, and the two-pass corpus
//! builder that wires tokenizer, vocabulary, and IDF together.

use plsh_core::sparse::SparseVector;

use crate::error::TextError;
use crate::idf::IdfWeights;
use crate::token::Tokenizer;
use crate::vocab::Vocabulary;

/// First pass over a corpus: feed every document through
/// [`add_document`](CorpusBuilder::add_document), then [`finish`](CorpusBuilder::finish)
/// to freeze the vocabulary and IDF table into a
/// [`Vectorizer`].
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    tokenizer: Tokenizer,
    vocab: Vocabulary,
}

impl CorpusBuilder {
    /// Starts a corpus scan with the given tokenizer.
    pub fn new(tokenizer: Tokenizer) -> Self {
        Self {
            tokenizer,
            vocab: Vocabulary::new(),
        }
    }

    /// Observes one raw document (tokenizes and updates the vocabulary).
    /// Returns the cleaned tokens.
    pub fn add_document(&mut self, text: &str) -> Vec<String> {
        let tokens = self.tokenizer.tokenize(text);
        self.vocab.observe_document(&tokens);
        tokens
    }

    /// Number of documents observed so far.
    pub fn num_docs(&self) -> u32 {
        self.vocab.num_docs()
    }

    /// Freezes the vocabulary and computes IDF weights.
    pub fn finish(self) -> Vectorizer {
        let idf = IdfWeights::from_vocabulary(&self.vocab);
        Vectorizer {
            tokenizer: self.tokenizer,
            vocab: self.vocab,
            idf,
        }
    }
}

/// A frozen text → [`SparseVector`] pipeline.
#[derive(Debug, Clone)]
pub struct Vectorizer {
    tokenizer: Tokenizer,
    vocab: Vocabulary,
    idf: IdfWeights,
}

impl Vectorizer {
    /// Assembles a vectorizer from pre-built parts (for custom pipelines).
    pub fn from_parts(tokenizer: Tokenizer, vocab: Vocabulary, idf: IdfWeights) -> Self {
        Self {
            tokenizer,
            vocab,
            idf,
        }
    }

    /// The frozen vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Vector-space dimensionality `D` to configure PLSH with.
    pub fn dim(&self) -> u32 {
        self.vocab.len() as u32
    }

    /// Converts raw text into an IDF-weighted sparse **unit** vector.
    ///
    /// Returns `None` when every token is out-of-vocabulary or a stop word
    /// (the paper's "0-length query"; such queries "will not find any
    /// meaningful matches" and are dropped).
    pub fn vectorize(&self, text: &str) -> Option<SparseVector> {
        self.to_vector(text).ok()
    }

    /// Like [`vectorize`](Self::vectorize), but reports *why* a document
    /// produced no vector — for callers (e.g. `plsh::Index`) that surface
    /// one error type end-to-end instead of silently dropping documents.
    pub fn to_vector(&self, text: &str) -> Result<SparseVector, TextError> {
        let tokens = self.tokenizer.tokenize(text);
        let pairs: Vec<(u32, f32)> = tokens
            .iter()
            .filter_map(|t| {
                let id = self.vocab.id(t)?;
                Some((id, self.idf.score(id)))
            })
            .collect();
        if pairs.is_empty() {
            return Err(TextError::OutOfVocabulary);
        }
        SparseVector::unit(pairs).map_err(TextError::Vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectorizer() -> Vectorizer {
        let docs = [
            "the quick brown fox jumps",
            "a lazy brown dog sleeps",
            "quick dogs and quick cats",
            "brown bears eat honey",
        ];
        let mut b = CorpusBuilder::new(Tokenizer::default());
        for d in docs {
            b.add_document(d);
        }
        b.finish()
    }

    #[test]
    fn vectorize_produces_unit_vectors() {
        let v = vectorizer();
        let sv = v.vectorize("quick brown fox").unwrap();
        assert!((sv.norm() - 1.0).abs() < 1e-6);
        assert_eq!(sv.nnz(), 3);
    }

    #[test]
    fn oov_terms_are_skipped() {
        let v = vectorizer();
        let with_oov = v.vectorize("quick zebra").unwrap();
        let without = v.vectorize("quick").unwrap();
        assert_eq!(with_oov, without);
    }

    #[test]
    fn fully_oov_documents_yield_none() {
        let v = vectorizer();
        assert!(v.vectorize("zebra unicorn").is_none());
        assert!(v.vectorize("the and of").is_none()); // stop words only
        assert!(v.vectorize("").is_none());
        assert!(v.vectorize("123 !!!").is_none());
    }

    #[test]
    fn rare_terms_dominate_weighting() {
        let v = vectorizer();
        // "brown" appears in 3 docs, "fox" in 1: fox must carry more weight.
        let sv = v.vectorize("brown fox").unwrap();
        let brown_id = v.vocabulary().id("brown").unwrap();
        let fox_id = v.vocabulary().id("fox").unwrap();
        let wb = sv
            .indices()
            .iter()
            .position(|&d| d == brown_id)
            .map(|i| sv.values()[i])
            .unwrap();
        let wf = sv
            .indices()
            .iter()
            .position(|&d| d == fox_id)
            .map(|i| sv.values()[i])
            .unwrap();
        assert!(wf > wb, "fox {wf} vs brown {wb}");
    }

    #[test]
    fn similar_documents_are_angularly_close() {
        let v = vectorizer();
        let a = v.vectorize("quick brown fox").unwrap();
        let b = v.vectorize("quick brown fox jumps").unwrap();
        let c = v.vectorize("bears eat honey").unwrap();
        assert!(a.angular_distance(&b) < a.angular_distance(&c));
    }

    #[test]
    fn identical_text_round_trips_to_zero_distance() {
        let v = vectorizer();
        let a = v.vectorize("lazy dog sleeps").unwrap();
        let b = v.vectorize("LAZY dog... sleeps!!").unwrap();
        assert!(a.angular_distance(&b) < 1e-3);
    }

    #[test]
    fn dim_matches_vocabulary() {
        let v = vectorizer();
        assert_eq!(v.dim() as usize, v.vocabulary().len());
        // Every produced index lies below dim.
        let sv = v.vectorize("quick brown fox dog").unwrap();
        assert!(sv.indices().iter().all(|&d| d < v.dim()));
    }
}
