//! Vocabulary: stable term → dimension-id mapping with document frequencies.

use std::collections::HashMap;

/// A growable vocabulary over cleaned terms.
///
/// Dimension ids are assigned in first-seen order, so a vocabulary built
/// from the same corpus in the same order is always identical — the
/// reproducibility anchor for every text experiment.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    ids: HashMap<String, u32>,
    terms: Vec<String>,
    doc_freq: Vec<u32>,
    num_docs: u32,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms (`D`, the vector dimensionality).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been added.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of documents observed.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// The id of `term`, if present.
    pub fn id(&self, term: &str) -> Option<u32> {
        self.ids.get(term).copied()
    }

    /// The term with dimension id `id`.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Document frequency of the term with id `id`.
    pub fn doc_freq(&self, id: u32) -> u32 {
        self.doc_freq.get(id as usize).copied().unwrap_or(0)
    }

    /// Records one document's (already deduplicated) tokens: unseen terms
    /// get fresh ids and every token's document frequency increments.
    pub fn observe_document<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.num_docs += 1;
        for tok in tokens {
            let tok = tok.as_ref();
            match self.ids.get(tok) {
                Some(&id) => self.doc_freq[id as usize] += 1,
                None => {
                    let id = self.terms.len() as u32;
                    self.ids.insert(tok.to_string(), id);
                    self.terms.push(tok.to_string());
                    self.doc_freq.push(1);
                }
            }
        }
    }

    /// Iterates `(term, id, doc_freq)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32, u32)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(id, t)| (t.as_str(), id as u32, self.doc_freq[id]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_first_seen_order() {
        let mut v = Vocabulary::new();
        v.observe_document(&["b", "a"]);
        v.observe_document(&["a", "c"]);
        assert_eq!(v.id("b"), Some(0));
        assert_eq!(v.id("a"), Some(1));
        assert_eq!(v.id("c"), Some(2));
        assert_eq!(v.id("zzz"), None);
        assert_eq!(v.len(), 3);
        assert_eq!(v.num_docs(), 2);
    }

    #[test]
    fn doc_freq_counts_documents() {
        let mut v = Vocabulary::new();
        v.observe_document(&["x", "y"]);
        v.observe_document(&["x"]);
        v.observe_document(&["y"]);
        assert_eq!(v.doc_freq(v.id("x").unwrap()), 2);
        assert_eq!(v.doc_freq(v.id("y").unwrap()), 2);
        assert_eq!(v.doc_freq(99), 0);
    }

    #[test]
    fn term_round_trip() {
        let mut v = Vocabulary::new();
        v.observe_document(&["alpha", "beta"]);
        for (term, id, _) in v.iter().collect::<Vec<_>>() {
            assert_eq!(v.term(id), Some(term));
            assert_eq!(v.id(term), Some(id));
        }
        assert_eq!(v.term(5), None);
    }

    #[test]
    fn empty_vocabulary() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.num_docs(), 0);
        assert_eq!(v.iter().count(), 0);
    }
}
