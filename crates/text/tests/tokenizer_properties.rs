//! Property-based tests of the text pipeline's invariants.

use proptest::prelude::*;

use plsh_text::{CorpusBuilder, Tokenizer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokens_are_clean(text in ".{0,200}") {
        let t = Tokenizer::default();
        let tokens = t.tokenize(&text);
        for tok in &tokens {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(char::is_alphabetic), "{tok:?}");
            prop_assert!(tok.chars().all(|c| c.to_lowercase().eq(std::iter::once(c))),
                "{tok:?} not lowercase");
            prop_assert!(!t.is_stop_word(tok));
        }
        // No duplicates.
        let mut sorted = tokens.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), tokens.len());
    }

    #[test]
    fn tokenization_is_stable_under_rejoining(text in "[a-zA-Z ,.!0-9]{0,200}") {
        // Tokenizing the space-joined tokens reproduces the tokens.
        let t = Tokenizer::default();
        let tokens = t.tokenize(&text);
        let rejoined = tokens.join(" ");
        prop_assert_eq!(t.tokenize(&rejoined), tokens);
    }

    #[test]
    fn vectorizer_is_total_and_unit(docs in proptest::collection::vec("[a-z ]{1,60}", 1..20)) {
        let mut b = CorpusBuilder::new(Tokenizer::default());
        for d in &docs {
            b.add_document(d);
        }
        let v = b.finish();
        for d in &docs {
            // Every observed document either vectorizes to a unit vector or
            // was entirely stop words / too short.
            match v.vectorize(d) {
                Some(sv) => {
                    prop_assert!((sv.norm() - 1.0).abs() < 1e-5);
                    prop_assert!(sv.indices().iter().all(|&i| i < v.dim()));
                }
                None => {
                    prop_assert!(Tokenizer::default().tokenize(d).is_empty());
                }
            }
        }
    }

    #[test]
    fn vocabulary_ids_are_dense_and_stable(docs in proptest::collection::vec("[a-z ]{1,40}", 1..15)) {
        let mut b1 = CorpusBuilder::new(Tokenizer::default());
        let mut b2 = CorpusBuilder::new(Tokenizer::default());
        for d in &docs {
            b1.add_document(d);
            b2.add_document(d);
        }
        let v1 = b1.finish();
        let v2 = b2.finish();
        prop_assert_eq!(v1.dim(), v2.dim());
        // Same corpus in the same order gives identical id assignments.
        for (term, id, df) in v1.vocabulary().iter() {
            prop_assert_eq!(v2.vocabulary().id(term), Some(id));
            prop_assert_eq!(v2.vocabulary().doc_freq(id), df);
            prop_assert!(df >= 1);
        }
    }
}
