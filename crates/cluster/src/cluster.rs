//! The coordinator and its simulated nodes.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use plsh_core::engine::{Engine, EngineConfig};
use plsh_core::query::Neighbor;
use plsh_core::search::{
    merge_partial_responses, rank_top_k, SearchBackend, SearchRequest, SearchResponse,
};
use plsh_core::sparse::SparseVector;
use plsh_parallel::ThreadPool;

use crate::error::{ClusterError, Result};

/// Cluster-level configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-node engine template (its `capacity` is the per-node `C`).
    pub node: EngineConfig,
    /// Number of nodes (paper: 100).
    pub num_nodes: usize,
    /// Rolling insert-window size `M` (paper: 4). Must divide `num_nodes`.
    pub insert_window: usize,
}

impl ClusterConfig {
    /// Creates a cluster configuration; `insert_window` must divide
    /// `num_nodes` so windows tile the cluster exactly.
    pub fn new(node: EngineConfig, num_nodes: usize, insert_window: usize) -> Self {
        Self {
            node,
            num_nodes,
            insert_window,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.num_nodes == 0 {
            return Err(ClusterError::Topology("num_nodes must be > 0".into()));
        }
        if self.insert_window == 0 || self.insert_window > self.num_nodes {
            return Err(ClusterError::Topology(
                "insert_window must lie in 1..=num_nodes".into(),
            ));
        }
        if !self.num_nodes.is_multiple_of(self.insert_window) {
            return Err(ClusterError::Topology(format!(
                "insert_window {} must divide num_nodes {} so retirement windows tile",
                self.insert_window, self.num_nodes
            )));
        }
        Ok(())
    }
}

/// A neighbor found somewhere in the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalNeighbor {
    /// Node that holds the point.
    pub node: u32,
    /// Node-local point id.
    pub index: u32,
    /// Angular distance to the query.
    pub distance: f32,
}

/// Per-batch coordinator report: answers plus per-node compute times.
#[derive(Debug, Clone)]
pub struct ClusterQueryReport {
    /// Per query, the concatenated answers of every node.
    pub answers: Vec<Vec<GlobalNeighbor>>,
    /// Wall time each node spent on its partial batch.
    pub node_times: Vec<Duration>,
    /// End-to-end wall time including the broadcast and concatenation.
    pub elapsed: Duration,
}

impl ClusterQueryReport {
    /// Slowest node time (the "max" series of Figure 9).
    pub fn max_node_time(&self) -> Duration {
        self.node_times.iter().copied().max().unwrap_or_default()
    }

    /// Fastest node time (the "min" series of Figure 9).
    pub fn min_node_time(&self) -> Duration {
        self.node_times.iter().copied().min().unwrap_or_default()
    }

    /// Mean node time (the "avg" series of Figure 9).
    pub fn avg_node_time(&self) -> Duration {
        if self.node_times.is_empty() {
            return Duration::ZERO;
        }
        self.node_times.iter().sum::<Duration>() / self.node_times.len() as u32
    }

    /// Load imbalance `max / avg` (paper: < 1.3 at 100 nodes, ideal 1.0).
    pub fn load_imbalance(&self) -> f64 {
        let avg = self.avg_node_time().as_secs_f64();
        if avg == 0.0 {
            return 1.0;
        }
        self.max_node_time().as_secs_f64() / avg
    }

    /// Coordinator overhead: end-to-end time not accounted for by node
    /// compute, as a fraction of end-to-end time (the paper's "< 1%
    /// communication").
    ///
    /// Node tasks share the coordinator's pool, so the compute baseline is
    /// the total node time divided by the parallelism actually available
    /// (`workers` = the pool size used for the broadcast); on a dedicated
    /// node-per-machine deployment that baseline degenerates to the
    /// slowest node, as in the paper.
    pub fn coordination_overhead(&self, workers: usize) -> f64 {
        let e = self.elapsed.as_secs_f64();
        if e == 0.0 {
            return 0.0;
        }
        let total: f64 = self.node_times.iter().map(Duration::as_secs_f64).sum();
        let lanes = workers.clamp(1, self.node_times.len().max(1)) as f64;
        let busy = (total / lanes).max(self.max_node_time().as_secs_f64());
        ((e - busy) / e).max(0.0)
    }
}

/// Aggregate cluster occupancy.
#[derive(Debug, Clone, Copy)]
pub struct ClusterStats {
    /// Points across all nodes.
    pub total_points: usize,
    /// Sum of node capacities.
    pub total_capacity: usize,
    /// Nodes currently holding at least one point.
    pub occupied_nodes: usize,
    /// Index of the window currently receiving inserts.
    pub active_window: usize,
    /// Number of wholesale retirements performed.
    pub retirements: u64,
}

/// Mutable window-placement state, serialized by the cluster's window
/// mutex. Everything else about the cluster — the node engines themselves
/// — already supports concurrent `&self` operation, so this mutex is the
/// *only* coordination between the ingest path and everything else.
struct WindowState {
    /// Window currently receiving inserts (`window * M .. (window+1) * M`).
    window: usize,
    /// Round-robin cursor within the window.
    cursor: usize,
    retirements: u64,
}

/// The coordinator plus its simulated nodes (Figure 1).
///
/// The windowed-retirement simulation of Section 6: inserts round-robin
/// into a rolling window of `M` nodes and the oldest window is erased
/// wholesale when the cluster wraps. For the shard-per-core scaling path —
/// hash routing, per-shard background merges, model-driven fan-out — use
/// [`ShardedIndex`](crate::ShardedIndex) instead; this type is retained
/// for the paper's exact-expiration experiments.
///
/// Every operation takes `&self` (window placement is guarded by an
/// internal mutex, and the node engines are epoch-based), so ingest,
/// merges, and queries may run concurrently from different threads.
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Engine>,
    /// Window placement (insert-only state; queries never touch it).
    state: Mutex<WindowState>,
    /// Long-lived serial pool handed to each node during a broadcast
    /// (each node processes its partial batch on the broadcast task's
    /// thread; cross-node parallelism comes from the caller's pool).
    node_pool: ThreadPool,
}

impl Cluster {
    /// Builds all nodes (each gets the same parameters but its own engine).
    pub fn new(config: ClusterConfig, pool: &ThreadPool) -> Result<Self> {
        config.validate()?;
        let nodes = (0..config.num_nodes)
            .map(|_| Engine::new(config.node.clone(), pool))
            .collect::<plsh_core::error::Result<Vec<_>>>()?;
        Ok(Self {
            config,
            nodes,
            state: Mutex::new(WindowState {
                window: 0,
                cursor: 0,
                retirements: 0,
            }),
            node_pool: ThreadPool::new(1),
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Window size `M`.
    pub fn insert_window(&self) -> usize {
        self.config.insert_window
    }

    /// Borrow a node (tests and experiments).
    pub fn node(&self, i: usize) -> &Engine {
        &self.nodes[i]
    }

    /// Total points stored across nodes.
    pub fn total_points(&self) -> usize {
        self.nodes.iter().map(Engine::len).sum()
    }

    /// Occupancy and window accounting.
    pub fn stats(&self) -> ClusterStats {
        let state = self.state.lock().unwrap();
        ClusterStats {
            total_points: self.total_points(),
            total_capacity: self.nodes.len() * self.config.node.capacity,
            occupied_nodes: self.nodes.iter().filter(|n| !n.is_empty()).count(),
            active_window: state.window,
            retirements: state.retirements,
        }
    }

    fn window_range(&self, state: &WindowState) -> std::ops::Range<usize> {
        let m = self.config.insert_window;
        let start = state.window * m;
        start..start + m
    }

    fn window_remaining(&self, state: &WindowState) -> usize {
        self.window_range(state)
            .map(|i| self.nodes[i].remaining_capacity())
            .sum()
    }

    /// Advances to the next window, retiring its contents if it holds old
    /// data (the wrap-around case of Section 6).
    fn advance_window(&self, state: &mut WindowState) {
        let windows = self.nodes.len() / self.config.insert_window;
        state.window = (state.window + 1) % windows;
        state.cursor = 0;
        let range = self.window_range(state);
        if self.nodes[range.clone()].iter().any(|n| !n.is_empty()) {
            for i in range {
                self.nodes[i].clear();
            }
            state.retirements += 1;
        }
    }

    /// Streams a batch of points into the cluster.
    ///
    /// Points go to the current window's nodes in round-robin order; full
    /// windows advance (retiring the oldest window when the cluster has
    /// wrapped). Returns the `(node, local id)` of every inserted point in
    /// order.
    ///
    /// Takes `&self`: window placement serializes on an internal mutex
    /// while queries keep running lock-free against the node engines'
    /// pinned epochs — callers may ingest and query concurrently.
    pub fn insert_batch(&self, vs: &[SparseVector], pool: &ThreadPool) -> Result<Vec<(u32, u32)>> {
        let mut state = self.state.lock().unwrap();
        let state = &mut *state;
        let mut placed: Vec<(u32, u32)> = Vec::with_capacity(vs.len());
        let mut next = 0usize;
        while next < vs.len() {
            if self.window_remaining(state) == 0 {
                self.advance_window(state);
            }
            // Assign the rest of the batch round-robin across the window's
            // non-full nodes, then apply one insert_batch per node.
            let range = self.window_range(state);
            let m = range.len();
            let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); m];
            let mut remaining: Vec<usize> = range
                .clone()
                .map(|i| self.nodes[i].remaining_capacity())
                .collect();
            while next < vs.len() {
                // Find the next window slot with headroom.
                let mut tried = 0;
                while tried < m && remaining[state.cursor] == 0 {
                    state.cursor = (state.cursor + 1) % m;
                    tried += 1;
                }
                if tried == m {
                    break; // window exhausted; outer loop advances it
                }
                per_node[state.cursor].push(next);
                remaining[state.cursor] -= 1;
                state.cursor = (state.cursor + 1) % m;
                next += 1;
            }
            let mut assignments: Vec<(usize, Vec<usize>)> = Vec::new();
            for (slot, items) in per_node.into_iter().enumerate() {
                if !items.is_empty() {
                    assignments.push((range.start + slot, items));
                }
            }
            for (node_idx, items) in assignments {
                let batch: Vec<SparseVector> = items.iter().map(|&i| vs[i].clone()).collect();
                let ids = self.nodes[node_idx].insert_batch(&batch, pool)?;
                for (&item, id) in items.iter().zip(ids) {
                    // `placed` is filled in item order; extend as needed.
                    if placed.len() <= item {
                        placed.resize(item + 1, (u32::MAX, u32::MAX));
                    }
                    placed[item] = (node_idx as u32, id);
                }
            }
        }
        debug_assert!(placed.iter().all(|&(n, _)| n != u32::MAX));
        Ok(placed)
    }

    /// Forces a delta merge on every node, one after another on this
    /// thread. Takes `&self`: node merges build off to the side and
    /// publish with one epoch swap each, so queries (and window inserts)
    /// keep running throughout.
    pub fn merge_all(&self, pool: &ThreadPool) {
        for n in &self.nodes {
            n.merge_delta(pool);
        }
    }

    /// Broadcasts a query batch to every node (one work-stealing task per
    /// node, Section 5.3), concatenates the partial answers per query, and
    /// reports per-node compute times.
    pub fn query_batch(&self, qs: &[SparseVector], pool: &ThreadPool) -> ClusterQueryReport {
        let start = Instant::now();
        // Each node processes the whole batch locally on the task's thread;
        // cross-node parallelism comes from the pool.
        let partials: Vec<(Vec<Vec<Neighbor>>, Duration)> =
            pool.parallel_map(self.nodes.iter(), |node| {
                let t0 = Instant::now();
                let (answers, _) = node.query_batch(qs, &self.node_pool);
                (answers, t0.elapsed())
            });
        let mut answers: Vec<Vec<GlobalNeighbor>> = vec![Vec::new(); qs.len()];
        let mut node_times = Vec::with_capacity(self.nodes.len());
        for (node_id, (partial, t)) in partials.into_iter().enumerate() {
            node_times.push(t);
            for (q, hits) in partial.into_iter().enumerate() {
                answers[q].extend(hits.into_iter().map(|h| GlobalNeighbor {
                    node: node_id as u32,
                    index: h.index,
                    distance: h.distance,
                }));
            }
        }
        ClusterQueryReport {
            answers,
            node_times,
            elapsed: start.elapsed(),
        }
    }

    /// Answers a single query (broadcast + concatenate).
    pub fn query(&self, q: &SparseVector, pool: &ThreadPool) -> Vec<GlobalNeighbor> {
        self.query_batch(std::slice::from_ref(q), pool)
            .answers
            .remove(0)
    }

    /// Answers one [`SearchRequest`] cluster-wide: the request is
    /// broadcast verbatim to every node (one work-stealing task per node,
    /// Section 5.3), the per-node responses are concatenated per query
    /// with each hit attributed to its node, and k-NN answers are
    /// re-ranked globally (the union's top `k` is the top `k` of the
    /// per-node top `k`s). Counters aggregate across nodes; the reported
    /// wall time is the coordinator's end-to-end broadcast.
    ///
    /// Every node pins its own epoch, so [`SearchResponse::epoch`] is
    /// `None` here.
    pub fn search(
        &self,
        req: &SearchRequest,
        pool: &ThreadPool,
    ) -> plsh_core::error::Result<SearchResponse> {
        req.validate(self.config.node.params.dim())?;
        let start = Instant::now();
        let partials: Vec<plsh_core::error::Result<SearchResponse>> =
            pool.parallel_map(self.nodes.iter(), |node| node.search(req, &self.node_pool));
        merge_partial_responses(
            req.queries().len(),
            req.mode(),
            start,
            partials,
            |node_id, h| h.on_node(node_id as u32),
            rank_top_k,
        )
    }
}

impl SearchBackend for Cluster {
    fn search(
        &self,
        req: &SearchRequest,
        pool: &ThreadPool,
    ) -> plsh_core::error::Result<SearchResponse> {
        Cluster::search(self, req, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plsh_core::params::PlshParams;
    use plsh_core::rng::SplitMix64;

    fn small_config(capacity: usize, nodes: usize, window: usize) -> ClusterConfig {
        let params = PlshParams::builder(64)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(5)
            .build()
            .unwrap();
        ClusterConfig::new(EngineConfig::new(params, capacity), nodes, window)
    }

    fn random_vecs(n: usize, seed: u64) -> Vec<SparseVector> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let a = rng.next_below(64) as u32;
                let b = (a + 1 + rng.next_below(63) as u32) % 64;
                SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        let pool = ThreadPool::new(1);
        assert!(Cluster::new(small_config(10, 0, 1), &pool).is_err());
        assert!(Cluster::new(small_config(10, 4, 0), &pool).is_err());
        assert!(Cluster::new(small_config(10, 4, 3), &pool).is_err());
        assert!(Cluster::new(small_config(10, 4, 8), &pool).is_err());
        assert!(Cluster::new(small_config(10, 4, 2), &pool).is_ok());
    }

    #[test]
    fn inserts_fill_window_before_moving_on() {
        let pool = ThreadPool::new(1);
        let c = Cluster::new(small_config(10, 4, 2), &pool).unwrap();
        let vs = random_vecs(20, 1);
        let placed = c.insert_batch(&vs, &pool).unwrap();
        assert_eq!(placed.len(), 20);
        // First 20 points exactly fill window 0 (nodes 0 and 1).
        assert_eq!(c.node(0).len(), 10);
        assert_eq!(c.node(1).len(), 10);
        assert_eq!(c.node(2).len(), 0);
        assert!(placed.iter().all(|&(n, _)| n <= 1));
        // Round-robin: points alternate between the two nodes.
        assert_eq!(placed[0].0, 0);
        assert_eq!(placed[1].0, 1);
        assert_eq!(placed[2].0, 0);
    }

    #[test]
    fn window_advances_when_full() {
        let pool = ThreadPool::new(1);
        let c = Cluster::new(small_config(5, 4, 2), &pool).unwrap();
        c.insert_batch(&random_vecs(15, 2), &pool).unwrap();
        // 10 fill window 0; 5 spill into window 1.
        assert_eq!(c.node(0).len() + c.node(1).len(), 10);
        assert_eq!(c.node(2).len() + c.node(3).len(), 5);
        assert_eq!(c.stats().active_window, 1);
        assert_eq!(c.stats().retirements, 0);
    }

    #[test]
    fn retirement_erases_oldest_window() {
        let pool = ThreadPool::new(1);
        let c = Cluster::new(small_config(5, 4, 2), &pool).unwrap();
        // Fill the whole cluster (20 points), then push 3 more.
        c.insert_batch(&random_vecs(20, 3), &pool).unwrap();
        assert_eq!(c.total_points(), 20);
        c.insert_batch(&random_vecs(3, 4), &pool).unwrap();
        let stats = c.stats();
        assert_eq!(stats.retirements, 1);
        assert_eq!(stats.active_window, 0);
        // Window 0 was erased and now holds only the 3 new points.
        assert_eq!(c.node(0).len() + c.node(1).len(), 3);
        assert_eq!(c.node(2).len() + c.node(3).len(), 10);
        assert_eq!(c.total_points(), 13);
    }

    #[test]
    fn broadcast_query_finds_points_on_every_node() {
        let pool = ThreadPool::new(2);
        let c = Cluster::new(small_config(10, 4, 4), &pool).unwrap();
        let vs = random_vecs(40, 5);
        let placed = c.insert_batch(&vs, &pool).unwrap();
        // With window = num_nodes, points spread over all 4 nodes.
        assert!(c.stats().occupied_nodes == 4);
        for (v, &(node, local)) in vs.iter().zip(&placed) {
            let hits = c.query(v, &pool);
            assert!(
                hits.iter()
                    .any(|h| h.node == node && h.index == local && h.distance < 1e-3),
                "point on node {node} not found"
            );
        }
    }

    #[test]
    fn cluster_answers_match_single_engine() {
        let pool = ThreadPool::new(1);
        let vs = random_vecs(60, 6);
        // One big engine vs a 3-node cluster over the same data.
        let params = PlshParams::builder(64)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(5)
            .build()
            .unwrap();
        let single = Engine::new(EngineConfig::new(params, 100), &pool).unwrap();
        single.insert_batch(&vs, &pool).unwrap();
        let c = Cluster::new(small_config(20, 3, 3), &pool).unwrap();
        let placed = c.insert_batch(&vs, &pool).unwrap();
        // Map cluster hits back to batch positions for comparison.
        for v in &vs {
            let mut single_hits: Vec<u32> = single.query(v).iter().map(|h| h.index).collect();
            single_hits.sort_unstable();
            let mut cluster_hits: Vec<u32> = c
                .query(v, &pool)
                .iter()
                .map(|h| {
                    placed
                        .iter()
                        .position(|&(n, l)| n == h.node && l == h.index)
                        .unwrap() as u32
                })
                .collect();
            cluster_hits.sort_unstable();
            assert_eq!(cluster_hits, single_hits);
        }
    }

    #[test]
    fn report_metrics_are_consistent() {
        let pool = ThreadPool::new(2);
        let c = Cluster::new(small_config(20, 4, 4), &pool).unwrap();
        let vs = random_vecs(80, 7);
        c.insert_batch(&vs, &pool).unwrap();
        c.merge_all(&pool);
        let report = c.query_batch(&vs[..10], &pool);
        assert_eq!(report.answers.len(), 10);
        assert_eq!(report.node_times.len(), 4);
        assert!(report.max_node_time() >= report.avg_node_time());
        assert!(report.avg_node_time() >= report.min_node_time());
        assert!(report.load_imbalance() >= 1.0);
        let overhead = report.coordination_overhead(pool.num_threads());
        assert!((0.0..=1.0).contains(&overhead));
    }

    #[test]
    fn ingest_and_query_run_concurrently_on_shared_refs() {
        // The old coordinator required `&mut self` for insert_batch and
        // merge_all, so callers could never ingest and query at the same
        // time; this pins the interior-mutability fix down.
        let pool = ThreadPool::new(1);
        let c = std::sync::Arc::new(Cluster::new(small_config(500, 4, 4), &pool).unwrap());
        let vs = random_vecs(600, 9);
        let writer = {
            let c = c.clone();
            let vs = vs.clone();
            std::thread::spawn(move || {
                let pool = ThreadPool::new(1);
                for chunk in vs.chunks(50) {
                    c.insert_batch(chunk, &pool).unwrap();
                }
                c.merge_all(&pool);
            })
        };
        let reader = {
            let c = c.clone();
            let vs = vs.clone();
            std::thread::spawn(move || {
                let pool = ThreadPool::new(1);
                for probe in 0..100 {
                    let hits = c.query(&vs[probe % vs.len()], &pool);
                    for h in hits {
                        assert!((h.node as usize) < 4);
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(c.total_points(), 600);
        for probe in [0usize, 299, 599] {
            let pool = ThreadPool::new(1);
            assert!(!c.query(&vs[probe], &pool).is_empty());
        }
    }

    #[test]
    fn merge_all_moves_deltas_to_static() {
        let pool = ThreadPool::new(1);
        let mut cfg = small_config(50, 2, 2);
        cfg.node = cfg.node.manual_merge();
        let c = Cluster::new(cfg, &pool).unwrap();
        let vs = random_vecs(30, 8);
        c.insert_batch(&vs, &pool).unwrap();
        assert!(c.node(0).delta_len() + c.node(1).delta_len() > 0);
        c.merge_all(&pool);
        assert_eq!(c.node(0).delta_len() + c.node(1).delta_len(), 0);
        for v in &vs {
            assert!(!c.query(v, &pool).is_empty());
        }
    }
}
