//! The shard-per-core streaming cluster: hash-routed ingest, per-shard
//! [`StreamingEngine`]s, and model-driven query fan-out.
//!
//! [`ShardedIndex`] is the successor to the broadcast
//! [`Cluster`](crate::Cluster) coordinator for the paper's headline
//! claim — near-linear scaling of
//! streaming LSH across cores (Figures 9–10). Where `Cluster` serializes
//! ingest behind external coordination, every `ShardedIndex` shard is a
//! full streaming node that overlaps its own ingest, merge, and queries:
//!
//! * **Inserts route by a stable hash of the point id.** Every point gets
//!   a monotonically increasing *global* id; `route(id)` picks its shard,
//!   and a paced per-shard firehose (a bounded channel drained by one
//!   ingest thread per shard) carries it there. Routing assigns the
//!   shard-local id too, so the global ↔ local maps never wait on the
//!   ingest threads.
//! * **Each shard owns a [`StreamingEngine`].** Inserts hash and seal on
//!   the shard's ingest thread; merges run on the shard's own background
//!   thread at `η·C` — so merges on different shards overlap each other
//!   *and* every query. A shard's tables are ~`1/S` of the corpus, so its
//!   merges are ~`S×` cheaper than one shared structure's (the
//!   shard-local-tables argument of the PIMDAL/Polynesia line of work).
//! * **Queries fan out over shards.** One work-stealing task per shard
//!   pins that shard's epoch and runs the whole request against it with
//!   shard-local scratch; the coordinator concatenates radius answers
//!   (exact — hits are translated to global ids) and k-way re-ranks k-NN
//!   answers with the same `(distance, global id)` tie-break a single
//!   engine uses, so answer sets are bit-identical to one big
//!   [`Engine`](plsh_core::engine::Engine) over the same data.
//! * **The shard count is model-driven by default.** The builder
//!   calibrates a [`MachineProfile`] and picks the shard count whose
//!   Section-7 predicted per-batch query time is minimal
//!   ([`PerformanceModel::pick_shard_count`]); override it with
//!   [`ShardedIndexBuilder::shards`].
//! * **Candidate budgets are global.** A
//!   [`SearchRequest::with_max_candidates`] budget is divided across the
//!   shards (evenly, remainder to the lowest-numbered shards, floored at
//!   one candidate per shard), so a sharded index examines at most the
//!   same aggregate number of candidates as a single engine given the
//!   same budget — the root `backend_equivalence` suite pins this down.
//!   The per-shard *selection* still differs from a single engine's
//!   (each shard truncates its own ascending-id candidate prefix), so
//!   budgeted answer sets are budget-honoring rather than bit-identical;
//!   unbudgeted requests remain bit-identical.
//! * **Durability is per shard.** [`ShardedIndex::persist_to`] lays a
//!   [`plsh_core::persist`] WAL-plus-segments directory per shard under
//!   `shard-<i>/`, sealed by a checksummed top-level cluster manifest;
//!   [`ShardedIndex::recover_from`] recovers every shard, then truncates
//!   to the longest globally contiguous id prefix (a crash can land
//!   mid-batch with some shards ahead of others) so the recovered index
//!   is exactly a prefix of the routed stream. The id maps are not
//!   stored: routing is a pure hash of the global id, so recovery
//!   replays it deterministically. [`ShardedIndex::snapshot`] flattens
//!   the whole corpus into a single-engine [`Snapshot`] in global-id
//!   order.
//!
//! ```
//! use plsh_cluster::ShardedIndex;
//! use plsh_core::engine::EngineConfig;
//! use plsh_core::search::SearchRequest;
//! use plsh_core::{PlshParams, SparseVector};
//!
//! let params = PlshParams::builder(16).k(4).m(4).radius(0.9).seed(42).build().unwrap();
//! let index = ShardedIndex::builder(EngineConfig::new(params, 64))
//!     .shards(2)
//!     .build()
//!     .unwrap();
//! let v = SparseVector::unit(vec![(0, 1.0), (3, 2.0)]).unwrap();
//! let ids = index.insert_batch(std::slice::from_ref(&v)).unwrap();
//! index.flush().unwrap(); // barrier: every routed point is now query-visible
//! let resp = index.search(&SearchRequest::query(v)).unwrap();
//! assert!(resp.hits().iter().any(|h| h.index == ids[0]));
//! ```

use std::collections::VecDeque;
use std::fs;
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use plsh_core::engine::{EngineConfig, EngineStats, MergeReport, WindowSpec};
use plsh_core::error::{PlshError, Result as CoreResult};
use plsh_core::fault;
use plsh_core::health::{HealthReport, WorkerHealth};
use plsh_core::model::{MachineProfile, PerformanceModel};
use plsh_core::params::estimate_candidates;
use plsh_core::persist;
use plsh_core::search::{
    merge_partial_responses, rank_top_k_global, SearchBackend, SearchHit, SearchRequest,
    SearchResponse,
};
use plsh_core::snapshot::Snapshot;
use plsh_core::sparse::SparseVector;
use plsh_core::streaming::{ShutdownReport, StreamingEngine};
use plsh_parallel::{affinity, Backoff, ThreadPool, WorkerStatus};

use crate::error::{ClusterError, Result};

/// Upper bound on model-picked shard counts (a runaway prediction must not
/// spawn hundreds of ingest threads).
const MAX_MODEL_SHARDS: usize = 64;

/// Queries-per-batch assumption used when the model picks the shard count.
const MODEL_BATCH_QUERIES: usize = 64;

/// Builder for [`ShardedIndex`].
pub struct ShardedIndexBuilder {
    node: EngineConfig,
    shards: Option<usize>,
    threads: Option<usize>,
    queue_batches: usize,
    ingest_rate: Option<f64>,
    profile: Option<MachineProfile>,
}

impl ShardedIndexBuilder {
    /// Fixes the shard count instead of letting the performance model pick
    /// it. Must be ≥ 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Worker threads for the query fan-out pool (default: one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Capacity of each shard's ingest queue in batches (default 4).
    /// Inserts apply back-pressure once a shard's queue is full.
    pub fn queue_batches(mut self, batches: usize) -> Self {
        self.queue_batches = batches.max(1);
        self
    }

    /// Paces each shard's firehose to at most `points_per_sec` (the
    /// paper's Twitter-rate arrival process). Default: unpaced.
    pub fn ingest_rate(mut self, points_per_sec: f64) -> Self {
        assert!(points_per_sec > 0.0, "ingest rate must be positive");
        self.ingest_rate = Some(points_per_sec);
        self
    }

    /// Machine profile for the model-driven shard count (default: measure
    /// this machine with [`MachineProfile::calibrate`]). Ignored when
    /// [`shards`](Self::shards) is set explicitly.
    pub fn machine_profile(mut self, profile: MachineProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Builds the index: resolves the shard count (model prediction unless
    /// fixed), constructs one [`StreamingEngine`] per shard, and spawns the
    /// per-shard ingest threads.
    pub fn build(self) -> Result<ShardedIndex> {
        let fanout = match self.threads {
            Some(t) => ThreadPool::new(t),
            None => ThreadPool::default(),
        };
        let shards = match self.shards {
            Some(0) => {
                return Err(ClusterError::Topology("shard count must be > 0".into()));
            }
            Some(s) => s,
            None => {
                let profile = self
                    .profile
                    .unwrap_or_else(|| MachineProfile::calibrate(&fanout, 2.6e9));
                predict_shard_count(&profile, &self.node)
            }
        };
        // The window is cluster-driven: the spec lives on the router and
        // every shard receives explicit `retire_to` cuts, so the shard
        // engines are built windowless (an engine-local window would
        // retire by *local* age and tear the cross-shard cut).
        let window = self.node.window;
        match window {
            Some(WindowSpec::Docs(0)) => {
                return Err(ClusterError::Topology(
                    "window must keep at least one document".into(),
                ));
            }
            Some(WindowSpec::Docs(n)) if n as usize >= self.node.capacity * shards => {
                return Err(ClusterError::Topology(format!(
                    "window of {n} docs must be smaller than the aggregate capacity ({}): \
                     the resident span also holds the un-merged deltas",
                    self.node.capacity * shards
                )));
            }
            Some(WindowSpec::Duration(d)) if d.is_zero() => {
                return Err(ClusterError::Topology(
                    "window duration must be positive".into(),
                ));
            }
            _ => {}
        }
        let mut node = self.node;
        node.window = None;
        // Shard-per-core layout: shard i's ingest + merge workers pin to
        // core i (mod host threads); the query fan-out workers spread over
        // whatever cores the shards left free. `PLSH_PIN=off` — or a
        // single-core host, or a kernel that refuses the syscall — turns
        // all of this into a logged no-op.
        let fanout = repin_fanout(fanout, shards);
        let sync = ProgressSync::new();
        let mut shard_handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let pin_core = shard_core(i);
            // Each shard's engine gets a serial pool: cross-shard
            // parallelism comes from the fan-out pool and the per-shard
            // ingest/merge threads, so intra-shard fan-out would only
            // oversubscribe.
            let engine = StreamingEngine::new(node.clone(), ThreadPool::new(1))
                .map_err(ClusterError::Node)?;
            if let Some(core) = pin_core {
                engine.pin_merge_to(core);
            }
            let (tx, rx) = bounded::<ShardBatch>(self.queue_batches);
            let progress = IngestProgress::new(sync.clone());
            let status = Arc::new(WorkerStatus::new());
            let worker = spawn_ingest_worker(
                engine.clone(),
                rx,
                progress.clone(),
                status.clone(),
                self.ingest_rate,
                pin_core,
            );
            shard_handles.push(Shard {
                engine,
                globals: RwLock::new(Vec::new()),
                tx: Some(tx),
                worker: Some(worker),
                progress,
                status,
            });
        }
        Ok(ShardedIndex {
            dim: node.params.dim(),
            per_shard_capacity: node.capacity,
            window,
            shards: shard_handles,
            fanout,
            router: Mutex::new(Router {
                next_global: 0,
                used: vec![0; shards],
                retire_cursor: 0,
                retired_used: vec![0; shards],
                births: VecDeque::new(),
            }),
            total: AtomicU64::new(0),
            locals: RwLock::new(Vec::new()),
            ingest_sync: sync,
        })
    }
}

/// One batch travelling down a shard's ingest queue (points already in
/// shard-local id order), plus the shard-local retirement watermark the
/// cluster's window cut implies after this batch — applied by the ingest
/// thread *after* the docs land, so the watermark can cover ids the batch
/// itself carries.
struct ShardBatch {
    docs: Vec<SparseVector>,
    retire_to: Option<u32>,
}

/// One shard: a streaming engine plus its ingest queue and id map.
struct Shard {
    engine: StreamingEngine,
    /// Local id → global id, appended at routing time (so it always covers
    /// every id a pinned epoch can surface).
    globals: RwLock<Vec<u32>>,
    tx: Option<Sender<ShardBatch>>,
    worker: Option<JoinHandle<()>>,
    /// Drain progress shared with the shard's ingest thread.
    progress: Arc<IngestProgress>,
    /// Supervision accounting for the ingest thread (restarts, last
    /// panic, liveness) — surfaced through [`ShardedIndex::health`].
    status: Arc<WorkerStatus>,
}

/// The one lock/condvar pair every shard's [`IngestProgress`] notifies
/// through. Sharing it across the index lets cluster-wide waiters
/// ([`ShardedIndex::wait_for_visible`]) sleep on a single condvar that
/// *any* shard's drain progress wakes — per-shard waiters simply re-check
/// their predicate on the (harmless) cross-shard wakeups.
struct ProgressSync {
    lock: Mutex<()>,
    advanced: Condvar,
}

impl ProgressSync {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            lock: Mutex::new(()),
            advanced: Condvar::new(),
        })
    }
}

/// Sentinel for "not pinned" in the atomic pinned-core slots.
const NOT_PINNED: usize = usize::MAX;

/// Ingest progress shared between a shard's router-side producers and its
/// ingest thread: the queued-point count plus a condvar, so waiters
/// ([`ShardedIndex::delete`], [`ShardedIndex::flush`]) sleep until the
/// worker actually advances — and wake promptly if it dies instead of
/// polling a counter that will never move again.
struct IngestProgress {
    /// Points routed but not yet inserted by the ingest thread
    /// (monitoring reads stay lock-free).
    pending: AtomicU64,
    /// Cleared when the ingest thread exits — normally at shutdown,
    /// abnormally on a panic that exhausted the restart budget.
    alive: AtomicBool,
    /// Set when the shard's engine entered degraded read-only mode: the
    /// worker keeps draining the queue (so producers never block on a
    /// full channel) but discards the batches, and waiters must not wait
    /// for discarded points to land.
    degraded: AtomicBool,
    /// The core the shard's ingest thread actually pinned itself to
    /// ([`NOT_PINNED`] when pinning is off or the kernel refused).
    pinned_core: AtomicUsize,
    /// Index-wide notification channel (shared by every shard).
    sync: Arc<ProgressSync>,
}

impl IngestProgress {
    fn new(sync: Arc<ProgressSync>) -> Arc<Self> {
        Arc::new(Self {
            pending: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            degraded: AtomicBool::new(false),
            pinned_core: AtomicUsize::new(NOT_PINNED),
            sync,
        })
    }

    /// The core the ingest worker pinned to, if pinning took effect.
    fn pinned(&self) -> Option<usize> {
        match self.pinned_core.load(Ordering::SeqCst) {
            NOT_PINNED => None,
            core => Some(core),
        }
    }

    /// Worker-side: one batch has landed in (or been rejected by) the
    /// engine.
    fn batch_done(&self, points: u64) {
        self.pending.fetch_sub(points, Ordering::SeqCst);
        drop(self.sync.lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.sync.advanced.notify_all();
    }

    /// Worker-side, on every exit path (panics included): the thread is
    /// gone, wake everyone still waiting on it.
    fn mark_dead(&self) {
        let _g = self.sync.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.alive.store(false, Ordering::SeqCst);
        self.sync.advanced.notify_all();
    }

    /// Worker-side: the shard's engine degraded to read-only; wake
    /// waiters so they observe the flag instead of sleeping forever on
    /// points that will never land.
    fn set_degraded(&self) {
        let _g = self.sync.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.degraded.store(true, Ordering::SeqCst);
        self.sync.advanced.notify_all();
    }

    fn clear_degraded(&self) {
        self.degraded.store(false, Ordering::SeqCst);
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Blocks until `done()` holds or the worker dies; `true` means the
    /// condition was reached. `done` must read state the worker updates
    /// *before* it notifies (the engine length, the pending counter).
    ///
    /// `bail_on_degraded` decides what a degraded shard means for this
    /// waiter: a degraded worker still *drains* (and discards) the queue,
    /// so drain-progress conditions (`pending == 0`) keep advancing and
    /// must keep waiting — but visibility conditions (`engine.len() >
    /// local`) can never come true for a discarded point, so those
    /// waiters bail and re-check once.
    fn wait_until(&self, done: impl Fn() -> bool, bail_on_degraded: bool) -> bool {
        let mut g = self.sync.lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if done() {
                return true;
            }
            if !self.alive.load(Ordering::SeqCst)
                || (bail_on_degraded && self.degraded.load(Ordering::SeqCst))
            {
                // The worker may have completed this very work on its way
                // out; one final check decides.
                return done();
            }
            g = self
                .sync
                .advanced
                .wait(g)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Routing state, serialized by the router mutex: the global id counter,
/// per-shard occupancy (for all-or-nothing capacity checks), and the
/// sliding-window cut.
///
/// The window is cluster-driven: per-shard engines are built *without* a
/// [`WindowSpec`] and receive explicit [`StreamingEngine::retire_to`]
/// cuts instead, so every shard retires at the same global stream
/// position even though global ids interleave across shards.
struct Router {
    next_global: u32,
    used: Vec<usize>,
    /// Global id below which the window has retired everything; ids in
    /// `retire_cursor..next_global` are live. Only moves forward.
    retire_cursor: u32,
    /// Per-shard count of ids below `retire_cursor` routed to each shard —
    /// exactly the shard-local watermark the cut maps to, because local
    /// ids are assigned in routing order.
    retired_used: Vec<usize>,
    /// Batch birth times for a [`WindowSpec::Duration`] window:
    /// `(inserted_at, end_global)` per routed batch, popped once aged out.
    /// Lost across [`ShardedIndex::recover_from`] — the recovered
    /// watermark is preserved and the clock restarts, so the window never
    /// moves backwards.
    births: VecDeque<(Instant, u32)>,
}

/// Aggregate accounting for a sharded index.
#[derive(Debug, Clone)]
pub struct ShardedStats {
    /// Points per shard (routed, including queued ones).
    pub points_per_shard: Vec<usize>,
    /// Sum of per-shard merge counts.
    pub merges: u64,
    /// Per-shard engine accounting.
    pub engines: Vec<EngineStats>,
}

impl ShardedStats {
    /// Total routed points.
    pub fn total_points(&self) -> usize {
        self.points_per_shard.iter().sum()
    }

    /// Largest shard ÷ mean shard occupancy (1.0 = perfectly even). The
    /// stable-hash router keeps this near 1 for any insert order.
    pub fn routing_imbalance(&self) -> f64 {
        let n = self.total_points();
        if n == 0 {
            return 1.0;
        }
        let mean = n as f64 / self.points_per_shard.len() as f64;
        let max = *self.points_per_shard.iter().max().unwrap() as f64;
        max / mean
    }
}

/// The shard-per-core streaming cluster (see the module docs).
///
/// All operations take `&self`; ingest, merges, and queries overlap freely
/// across threads. Routing and queueing serialize on an internal mutex;
/// queries never touch it.
pub struct ShardedIndex {
    dim: u32,
    per_shard_capacity: usize,
    /// The cluster-level sliding window (shard engines are windowless;
    /// the router ships them explicit cuts — see [`Router`]).
    window: Option<WindowSpec>,
    shards: Vec<Shard>,
    fanout: ThreadPool,
    router: Mutex<Router>,
    /// Mirror of `Router::next_global` for lock-free `len()` — the router
    /// mutex is held across back-pressured queue sends, so readers must
    /// not need it.
    total: AtomicU64,
    /// Global id → shard-local id (the shard itself is `route(id)`).
    locals: RwLock<Vec<u32>>,
    /// The condvar every shard's ingest thread notifies per drained batch
    /// — the cluster-wide sleep channel for
    /// [`wait_for_visible`](Self::wait_for_visible).
    ingest_sync: Arc<ProgressSync>,
}

impl ShardedIndex {
    /// Starts building a sharded index; `node` is the per-shard engine
    /// template (its `capacity` is the per-shard `C`, as in the paper's
    /// per-node capacity).
    pub fn builder(node: EngineConfig) -> ShardedIndexBuilder {
        ShardedIndexBuilder {
            node,
            shards: None,
            threads: None,
            queue_batches: 4,
            ingest_rate: None,
            profile: None,
        }
    }

    /// The stable routing function: which shard owns global id `id`.
    ///
    /// SplitMix64-style avalanche of the id, reduced modulo the shard
    /// count — deterministic across runs and processes, uniform enough
    /// that shard occupancy stays within a few percent of even.
    pub fn route(&self, id: u32) -> usize {
        route_hash(id) as usize % self.shards.len()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The cluster-level sliding window, if one was configured.
    pub fn window(&self) -> Option<WindowSpec> {
        self.window
    }

    /// Global id below which the sliding window has retired everything
    /// (0 without a window). Monotone.
    pub fn retired_below(&self) -> u32 {
        self.router
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retire_cursor
    }

    /// Borrow one shard's streaming engine (tests, experiments).
    pub fn shard(&self, i: usize) -> &StreamingEngine {
        &self.shards[i].engine
    }

    /// The query fan-out pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.fanout
    }

    /// Total points routed into the index (some may still be in flight in
    /// shard queues; [`flush`](Self::flush) is the visibility barrier).
    /// Lock-free: never stalls behind a back-pressured `insert_batch`.
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Acquire) as usize
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points currently visible to queries (static + sealed across all
    /// shards).
    pub fn visible_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.engine().visible_len())
            .sum()
    }

    /// Routes a batch into the per-shard firehoses; returns the global id
    /// of every point, in input order.
    ///
    /// The batch is all-or-nothing: dimensionality and per-shard capacity
    /// are validated before anything is enqueued. Points become
    /// query-visible when their shard's ingest thread has drained them —
    /// immediately under light load, or after back-pressure delay when a
    /// shard's queue is full ([`flush`](Self::flush) waits for all of it).
    /// Back-pressure also serializes concurrent `insert_batch` callers
    /// (routing order must match queue order); queries, `len`, and
    /// `stats` never wait on it.
    pub fn insert_batch(&self, vs: &[SparseVector]) -> Result<Vec<u32>> {
        for v in vs {
            if let Some(max) = v.max_index() {
                if max >= self.dim {
                    return Err(ClusterError::Node(PlshError::DimensionOutOfRange {
                        index: max,
                        dim: self.dim,
                    }));
                }
            }
        }
        let mut router = self.router.lock().unwrap_or_else(|e| e.into_inner());
        if router.next_global as usize + vs.len() > u32::MAX as usize {
            return Err(ClusterError::Node(PlshError::CapacityExceeded {
                capacity: u32::MAX as usize,
            }));
        }
        // Dry-run the routing for the capacity check before applying any
        // of it.
        let mut extra = vec![0usize; self.shards.len()];
        for offset in 0..vs.len() {
            let gid = router.next_global + offset as u32;
            extra[self.route(gid)] += 1;
        }
        for (shard, add) in extra.iter().enumerate() {
            if *add == 0 {
                continue;
            }
            // Occupancy counts live rows only: a window's retired prefix
            // is reclaimed by each shard's merge compaction, so it does
            // not consume capacity (without a window `retired_used` stays
            // zero and this is the classic check).
            let live = router.used[shard] - router.retired_used[shard];
            if live + add > self.per_shard_capacity {
                return Err(ClusterError::Node(PlshError::CapacityExceeded {
                    capacity: self.per_shard_capacity,
                }));
            }
            // Fail fast instead of queueing onto a worker that can never
            // land the points.
            let target = &self.shards[shard];
            if !target.progress.alive.load(Ordering::SeqCst) {
                return Err(ClusterError::IngestWorkerDied { shard });
            }
            if target.progress.is_degraded() {
                return Err(ClusterError::Node(PlshError::Degraded(
                    target
                        .engine
                        .engine()
                        .degraded_reason()
                        .unwrap_or_else(|| "shard ingest degraded to read-only".into()),
                )));
            }
        }
        // Apply: assign ids, extend both id maps, then enqueue. The router
        // lock is held across the channel sends so that concurrent
        // insert_batch calls cannot interleave their per-shard queue order
        // with their local-id assignment order.
        let from = router.next_global;
        let ids: Vec<u32> = (from..from + vs.len() as u32).collect();
        let mut per_shard: Vec<Vec<SparseVector>> = vec![Vec::new(); self.shards.len()];
        {
            let mut locals = self.locals.write().unwrap_or_else(|e| e.into_inner());
            for (gid, v) in ids.iter().zip(vs) {
                let shard = self.route(*gid);
                let local = (router.used[shard] + per_shard[shard].len()) as u32;
                locals.push(local);
                self.shards[shard]
                    .globals
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(*gid);
                per_shard[shard].push(v.clone());
            }
        }
        router.next_global += vs.len() as u32;
        self.total
            .store(router.next_global as u64, Ordering::Release);
        // Advance the sliding window to the new stream head and translate
        // the global cut into per-shard local watermarks. The cursor walk
        // is O(1) amortized per routed id: every global id is visited
        // exactly once over the index's lifetime.
        let mut cuts: Vec<Option<u32>> = vec![None; self.shards.len()];
        if let Some(spec) = self.window {
            let cut = match spec {
                WindowSpec::Docs(n) => router.next_global.saturating_sub(n),
                WindowSpec::Duration(d) => {
                    let now = Instant::now();
                    if !vs.is_empty() {
                        let end = router.next_global;
                        router.births.push_back((now, end));
                    }
                    let mut cut = router.retire_cursor;
                    while let Some(&(at, end)) = router.births.front() {
                        if now.duration_since(at) < d {
                            break;
                        }
                        cut = cut.max(end);
                        router.births.pop_front();
                    }
                    cut
                }
            };
            if cut > router.retire_cursor {
                for g in router.retire_cursor..cut {
                    let s = route_hash(g) as usize % self.shards.len();
                    router.retired_used[s] += 1;
                    cuts[s] = Some(router.retired_used[s] as u32);
                }
                router.retire_cursor = cut;
            }
        }
        for (shard, docs) in per_shard.into_iter().enumerate() {
            // Shards whose watermark advanced but got no docs still
            // receive an (empty) batch carrying the cut, so the window
            // edge stays consistent across shards.
            let retire_to = cuts[shard];
            if docs.is_empty() && retire_to.is_none() {
                continue;
            }
            let len = docs.len();
            router.used[shard] += len;
            self.shards[shard]
                .progress
                .pending
                .fetch_add(len as u64, Ordering::SeqCst);
            let sent = self.shards[shard]
                .tx
                .as_ref()
                .expect("ingest queues live as long as the index")
                .send(ShardBatch { docs, retire_to });
            if sent.is_err() {
                // The worker died between the pre-check and the send (the
                // channel is disconnected, so this returns immediately —
                // it can never block forever on a dead drain). The ids
                // routed to the dead shard are lost; surface that.
                self.shards[shard]
                    .progress
                    .pending
                    .fetch_sub(len as u64, Ordering::SeqCst);
                return Err(ClusterError::IngestWorkerDied { shard });
            }
        }
        Ok(ids)
    }

    /// Inserts one vector; returns its global id.
    pub fn insert(&self, v: SparseVector) -> Result<u32> {
        Ok(self.insert_batch(std::slice::from_ref(&v))?[0])
    }

    /// Visibility barrier: blocks until every routed point has been
    /// drained from the shard queues and sealed (so all of them are
    /// query-visible). Does *not* wait for background merges — answers are
    /// identical either way.
    ///
    /// Waits on each shard's ingest condvar (woken per drained batch, so
    /// a paced firehose sleeps instead of spinning). Returns
    /// [`ClusterError::IngestWorkerDied`] if a shard's ingest worker died
    /// with routed points undrained — the barrier can never be reached —
    /// instead of blocking forever. A *degraded* shard still flushes
    /// `Ok`: its worker keeps draining (discarding) the queue, and the
    /// degradation itself is reported by [`health`](Self::health) and by
    /// every write.
    pub fn flush(&self) -> Result<()> {
        for (i, shard) in self.shards.iter().enumerate() {
            // A degraded worker keeps draining (discarding), so the
            // barrier is still reachable: wait through degradation.
            let drained = shard
                .progress
                .wait_until(|| shard.progress.pending.load(Ordering::SeqCst) == 0, false);
            if !drained {
                return Err(ClusterError::IngestWorkerDied { shard: i });
            }
            // Seal anything a seal_min_points > 1 config left buffered.
            shard.engine.seal();
        }
        Ok(())
    }

    /// Query-visibility back-pressure: blocks until at least `min` points
    /// are visible to queries across the shards, then returns the visible
    /// count. Sleeps on the cluster-wide ingest condvar (woken once per
    /// drained batch by any shard) instead of polling
    /// [`visible_len`](Self::visible_len) in a spin loop.
    ///
    /// This is a *liveness* barrier for readers racing a live writer: it
    /// gives up — returning the current, possibly smaller, count — only
    /// when every shard's ingest worker has died, since visibility could
    /// then never advance. It does not time out; with no writer and no
    /// routed points it waits indefinitely. A degraded shard's worker
    /// keeps draining (and notifying), so degradation alone never wedges
    /// it, but discarded points do not count toward `min` — callers
    /// asserting exact totals should use [`flush`](Self::flush), which
    /// reports degradation explicitly.
    pub fn wait_for_visible(&self, min: usize) -> usize {
        let mut g = self
            .ingest_sync
            .lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            let visible = self.visible_len();
            if visible >= min {
                return visible;
            }
            let all_dead = self
                .shards
                .iter()
                .all(|s| !s.progress.alive.load(Ordering::SeqCst));
            if all_dead {
                return visible;
            }
            g = self
                .ingest_sync
                .advanced
                .wait(g)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Full quiesce: [`flush`](Self::flush), then fold every shard's
    /// sealed generations into its static tables (waiting out in-flight
    /// background merges first).
    pub fn quiesce(&self) -> Result<()> {
        self.flush()?;
        for shard in &self.shards {
            shard.engine.flush();
        }
        Ok(())
    }

    /// Starts a background merge on every shard that has sealed data;
    /// returns how many shards started one. Merges on different shards
    /// build concurrently — with each other, with ingest, and with
    /// queries.
    pub fn merge_all_in_background(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.engine.merge_in_background())
            .count()
    }

    /// True while any shard has a background merge building.
    pub fn any_merge_in_flight(&self) -> bool {
        self.shards.iter().any(|s| s.engine.merge_in_flight())
    }

    /// Blocks until every shard's in-flight background merge (if any) has
    /// published. Does not force new merges — see
    /// [`quiesce`](Self::quiesce) for that.
    pub fn wait_for_merges(&self) {
        for shard in &self.shards {
            shard.engine.wait_for_merge();
        }
    }

    /// Deadline-bounded graceful drain, the sharded counterpart of
    /// [`StreamingEngine::shutdown`]: best-effort wait for the routed
    /// ingest backlog to drain (a dead worker's backlog can never drain —
    /// that shard is skipped rather than waited on), then shut each
    /// shard's engine down within what remains of the deadline. The
    /// folded report ANDs `drained` and ORs `merge_abandoned`, so
    /// `drained: false` means at least one shard kept undrained or
    /// unsealed rows.
    pub fn shutdown(&self, deadline: Duration) -> ShutdownReport {
        let end = Instant::now() + deadline;
        let mut drained = true;
        for shard in &self.shards {
            while shard.progress.pending.load(Ordering::SeqCst) > 0
                && shard.progress.alive.load(Ordering::SeqCst)
                && Instant::now() < end
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            drained &= shard.progress.pending.load(Ordering::SeqCst) == 0;
        }
        let mut merge_abandoned = false;
        for shard in &self.shards {
            let remaining = end.saturating_duration_since(Instant::now());
            let report = shard.engine.shutdown(remaining);
            drained &= report.drained;
            merge_abandoned |= report.merge_abandoned;
        }
        ShutdownReport {
            drained,
            merge_abandoned,
        }
    }

    /// Tombstones a point by global id; `Ok(false)` if unknown or already
    /// deleted. If the point is still in flight in its shard's ingest
    /// queue, this waits on the shard's ingest condvar (woken per drained
    /// batch — no polling) for it to land first; the id was assigned at
    /// routing time, so it arrives unless the shard's ingest worker has
    /// died, in which case this returns
    /// [`ClusterError::IngestWorkerDied`] instead of waiting forever.
    pub fn delete(&self, id: u32) -> Result<bool> {
        let local = {
            let locals = self.locals.read().unwrap_or_else(|e| e.into_inner());
            match locals.get(id as usize) {
                Some(&l) => l,
                None => return Ok(false),
            }
        };
        let shard_id = self.route(id);
        let shard = &self.shards[shard_id];
        let landed = shard
            .progress
            .wait_until(|| shard.engine.len() > local as usize, true);
        if !landed {
            if shard.progress.is_degraded() {
                // The point was discarded by a degraded shard: it will
                // never land, and the write path is read-only anyway.
                return Err(ClusterError::Node(PlshError::Degraded(
                    shard
                        .engine
                        .engine()
                        .degraded_reason()
                        .unwrap_or_else(|| "shard ingest degraded to read-only".into()),
                )));
            }
            // The ingest worker exited while the point was still in
            // flight: it will never land.
            return Err(ClusterError::IngestWorkerDied { shard: shard_id });
        }
        shard
            .engine
            .engine()
            .try_delete(local)
            .map_err(ClusterError::Node)
    }

    /// The stored vector for global id `id`, or `None` when the id is
    /// unknown, still in flight, or purged by a past merge.
    pub fn vector(&self, id: u32) -> Option<SparseVector> {
        let local = *self
            .locals
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(id as usize)?;
        self.shards[self.route(id)].engine.engine().vector(local)
    }

    /// Aggregate accounting. Lock-free with respect to the router (so a
    /// monitoring thread never stalls behind a back-pressured
    /// `insert_batch`): per-shard occupancy is read as drained points
    /// plus queued points, an advisory snapshot that can momentarily lag
    /// an in-flight routing by a batch.
    pub fn stats(&self) -> ShardedStats {
        let engines: Vec<EngineStats> = self
            .shards
            .iter()
            .map(|s| {
                let mut e = s.engine.stats();
                e.pending_ingest = s.progress.pending.load(Ordering::SeqCst);
                e
            })
            .collect();
        let points_per_shard = self
            .shards
            .iter()
            .zip(&engines)
            .map(|(s, e)| e.total_points + s.progress.pending.load(Ordering::SeqCst) as usize)
            .collect();
        ShardedStats {
            points_per_shard,
            merges: engines.iter().map(|e| e.merges).sum(),
            engines,
        }
    }

    /// Most recent merge reports, one per shard.
    pub fn last_merges(&self) -> Vec<MergeReport> {
        self.shards.iter().map(|s| s.engine.last_merge()).collect()
    }

    /// Answers one [`SearchRequest`] with the index's own fan-out pool —
    /// see [`search_with`](Self::search_with).
    pub fn search(&self, req: &SearchRequest) -> CoreResult<SearchResponse> {
        self.search_with(req, &self.fanout)
    }

    /// Answers one [`SearchRequest`]: one work-stealing task per shard
    /// pins that shard's epoch and answers the whole request locally
    /// (shard-local scratch, serial per-shard pool), then the coordinator
    /// translates every hit to its global id (attributing the owning shard
    /// in [`SearchHit::node`]), concatenates radius answers exactly, and
    /// k-way re-ranks k-NN answers by `(distance, global id)` — the same
    /// tie-break a single engine applies, so answer sets are
    /// bit-identical.
    ///
    /// A [`SearchRequest::with_max_candidates`] budget is global: it is
    /// divided across the shards (evenly, remainder to the
    /// lowest-numbered shards, floored at one candidate per shard), so
    /// the aggregate candidates examined never exceed a single engine's
    /// under the same budget (up to the floor when the budget is smaller
    /// than the shard count).
    ///
    /// Counters aggregate across shards; [`SearchResponse::epoch`] is
    /// `None` (each shard pins its own).
    pub fn search_with(
        &self,
        req: &SearchRequest,
        pool: &ThreadPool,
    ) -> CoreResult<SearchResponse> {
        req.validate(self.dim)?;
        let start = Instant::now();
        if let Some(deadline) = req.shard_deadline() {
            return self.search_with_deadline(req, deadline, start);
        }
        let shard_reqs: Option<Vec<SearchRequest>> = req.max_candidates().map(|budget| {
            split_budget(budget, self.shards.len())
                .into_iter()
                .map(|b| req.clone().with_max_candidates(b))
                .collect()
        });
        let partials: Vec<CoreResult<SearchResponse>> = match &shard_reqs {
            Some(reqs) => pool.parallel_map(self.shards.iter().zip(reqs), |(shard, r)| {
                fault::point(fault::QUERY_SHARD);
                shard.engine.search(r)
            }),
            None => pool.parallel_map(self.shards.iter(), |shard| {
                fault::point(fault::QUERY_SHARD);
                shard.engine.search(req)
            }),
        };
        // Read-lock every shard's local→global map once for the whole
        // translation (queries only ever read these; writers append).
        let globals: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.globals.read().unwrap_or_else(|e| e.into_inner()))
            .collect();
        merge_partial_responses(
            req.queries().len(),
            req.mode(),
            start,
            partials,
            |shard_id, h| SearchHit {
                node: shard_id as u32,
                index: globals[shard_id][h.index as usize],
                distance: h.distance,
            },
            rank_top_k_global,
        )
    }

    /// Deadline-bounded fan-out: one dedicated thread per shard (the
    /// work-stealing pool cannot abandon a stalled task), a condvar-timed
    /// wait on the coordinator. Shards that miss the deadline — or whose
    /// query thread panics — are dropped from the answer and listed in
    /// [`SearchResponse::timed_out_shards`]; their threads are detached
    /// and finish (or die) harmlessly against their pinned epoch.
    fn search_with_deadline(
        &self,
        req: &SearchRequest,
        deadline: Duration,
        start: Instant,
    ) -> CoreResult<SearchResponse> {
        let n = self.shards.len();
        let nq = req.queries().len();
        let shard_reqs: Vec<SearchRequest> = match req.max_candidates() {
            Some(budget) => split_budget(budget, n)
                .into_iter()
                .map(|b| req.clone().with_max_candidates(b))
                .collect(),
            None => (0..n).map(|_| req.clone()).collect(),
        };
        type Slots = (Mutex<Vec<Option<CoreResult<SearchResponse>>>>, Condvar);
        let slots: Arc<Slots> =
            Arc::new((Mutex::new((0..n).map(|_| None).collect()), Condvar::new()));
        for (i, (shard, r)) in self.shards.iter().zip(shard_reqs).enumerate() {
            let engine = shard.engine.clone();
            let slots = Arc::clone(&slots);
            std::thread::spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    fault::point(fault::QUERY_SHARD);
                    engine.search(&r)
                }));
                if let Ok(resp) = outcome {
                    let (lock, cv) = &*slots;
                    let mut filled = lock.lock().unwrap_or_else(|e| e.into_inner());
                    filled[i] = Some(resp);
                    cv.notify_all();
                }
                // A panicked shard leaves its slot None — same as a
                // timeout: flagged, not fatal.
            });
        }
        let deadline_at = start + deadline;
        let (lock, cv) = &*slots;
        let mut filled = lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if filled.iter().all(Option::is_some) {
                break;
            }
            let now = Instant::now();
            if now >= deadline_at {
                break;
            }
            let (guard, _timeout) = cv
                .wait_timeout(filled, deadline_at - now)
                .unwrap_or_else(|e| e.into_inner());
            filled = guard;
        }
        let mut timed_out = Vec::new();
        let partials: Vec<CoreResult<SearchResponse>> = filled
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| match slot.take() {
                Some(resp) => resp,
                None => {
                    timed_out.push(i as u32);
                    Ok(SearchResponse {
                        results: vec![Vec::new(); nq],
                        stats: None,
                        phase_timings: None,
                        epoch: None,
                        timed_out_shards: Vec::new(),
                    })
                }
            })
            .collect();
        drop(filled);
        let globals: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.globals.read().unwrap_or_else(|e| e.into_inner()))
            .collect();
        let mut resp = merge_partial_responses(
            nq,
            req.mode(),
            start,
            partials,
            |shard_id, h| SearchHit {
                node: shard_id as u32,
                index: globals[shard_id][h.index as usize],
                distance: h.distance,
            },
            rank_top_k_global,
        )?;
        resp.timed_out_shards = timed_out;
        Ok(resp)
    }

    /// Aggregate health: every shard engine's report (names prefixed
    /// `shard<i>.`) plus one ingest-worker entry per shard. `degraded` is
    /// the OR across shards; `pending_ingest` sums the routed-not-drained
    /// backlog.
    pub fn health(&self) -> HealthReport {
        let mut report = HealthReport::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let mut child = shard.engine.health();
            child.pending_ingest = shard.progress.pending.load(Ordering::SeqCst);
            report.absorb(&format!("shard{i}"), child);
            report.workers.push(WorkerHealth {
                name: format!("shard{i}.ingest"),
                alive: shard.status.alive() && shard.progress.alive.load(Ordering::SeqCst),
                restarts: shard.status.restarts(),
                last_panic: shard.status.last_panic(),
                pinned_core: shard.progress.pinned(),
            });
        }
        report
    }

    /// Attempts to lift every degraded shard back to read-write by
    /// re-syncing its persistence from memory (see
    /// [`Engine::heal`](plsh_core::engine::Engine::heal)). Returns `true`
    /// when no shard remains degraded. Ingest workers that exhausted
    /// their restart budget stay dead — they exit their thread, so only
    /// reconstruction ([`recover_from`](Self::recover_from)) revives
    /// them.
    pub fn heal(&self) -> bool {
        let mut ok = true;
        for shard in &self.shards {
            if shard.engine.heal() {
                shard.progress.clear_degraded();
            } else {
                ok = false;
            }
        }
        ok
    }

    /// Captures the whole sharded corpus as one flattened [`Snapshot`] in
    /// global-id order — the same format a single engine writes, so
    /// [`Snapshot::restore`] yields a single
    /// [`Engine`](plsh_core::engine::Engine) answering identically to
    /// this index over the captured rows.
    ///
    /// Everything lands in the snapshot's static prefix (`static_len` =
    /// total): the per-shard static/delta splits and generation
    /// boundaries are ingest-batching artifacts with no effect on
    /// answers. Purged and pending tombstones are translated to global
    /// ids; restore replays the purges through its own merge, so the
    /// purge accounting survives the round-trip.
    ///
    /// Calls [`flush`](Self::flush) first so every routed point is
    /// captured; inserts racing the capture are truncated to the longest
    /// dense global-id prefix.
    pub fn snapshot(&self) -> Snapshot {
        // Best-effort barrier: a dead or degraded shard cannot drain, so
        // capture whatever landed (the dense-prefix truncation below
        // keeps the snapshot consistent regardless).
        let _ = self.flush();
        // The flattened snapshot starts at the cluster's window cut:
        // globals below it are dead by range tombstone, and some of their
        // rows are already physically gone (a compacted shard cannot
        // produce them), so the dense range the snapshot format requires
        // begins at the cut. Dead-but-resident rows on shards whose merge
        // lags are simply not captured — the restored engine starts past
        // them with no purge backlog.
        let (total, cut) = {
            let router = self.router.lock().unwrap_or_else(|e| e.into_inner());
            (router.next_global as usize, router.retire_cursor as usize)
        };
        let caps: Vec<Snapshot> = self
            .shards
            .iter()
            .map(|s| Snapshot::capture(s.engine.engine()))
            .collect();
        let globals: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.globals.read().unwrap_or_else(|e| e.into_inner()))
            .collect();
        let mut rows: Vec<Option<SparseVector>> = vec![None; total - cut];
        let mut deleted = Vec::new();
        let mut purged = Vec::new();
        for (cap, map) in caps.iter().zip(&globals) {
            // `cap.vectors` holds resident rows only; `cap.base` is the
            // shard-local id of the first one (nonzero once a windowed
            // shard has compacted).
            for (local, v) in cap
                .vectors
                .iter()
                .enumerate()
                .map(|(i, v)| (cap.base as usize + i, v))
            {
                if let Some(&g) = map.get(local) {
                    if (g as usize) >= cut && (g as usize) < total {
                        rows[g as usize - cut] = Some(v.clone());
                    }
                }
            }
            deleted.extend(
                cap.deleted
                    .iter()
                    .filter_map(|&l| map.get(l as usize).copied()),
            );
            purged.extend(
                cap.purged
                    .iter()
                    .filter_map(|&l| map.get(l as usize).copied()),
            );
        }
        let keep = cut + rows.iter().position(Option::is_none).unwrap_or(total - cut);
        rows.truncate(keep - cut);
        deleted.retain(|&g| (g as usize) >= cut && (g as usize) < keep);
        purged.retain(|&g| (g as usize) >= cut && (g as usize) < keep);
        deleted.sort_unstable();
        deleted.dedup();
        purged.sort_unstable();
        Snapshot {
            params: caps[0].params.clone(),
            capacity: (self.per_shard_capacity * self.shards.len()) as u64,
            eta: caps[0].eta,
            static_len: (keep - cut) as u64,
            // Everything below the cut is compacted away; the restored
            // engine's id space starts there with no pending retirement.
            base: cut as u64,
            retired_below: cut as u64,
            vectors: rows.into_iter().map(|r| r.expect("dense prefix")).collect(),
            deleted,
            purged,
        }
    }

    /// Attaches incremental durability to every shard: writes a baseline
    /// of the current contents into `dir` — one [`plsh_core::persist`]
    /// engine directory per shard under `shard-<i>/` — then seals the
    /// cluster with a checksummed top-level manifest and keeps each shard
    /// directory in sync from every insert, seal, delete, and merge. The
    /// cluster manifest is written last (atomically, via rename), so a
    /// crash mid-`persist_to` leaves a directory
    /// [`recover_from`](Self::recover_from) cleanly rejects rather than a
    /// torn cluster.
    ///
    /// The global↔local id maps are *not* stored: routing is a pure hash
    /// of the global id ([`route`](Self::route)), so recovery replays the
    /// assignment deterministically.
    pub fn persist_to(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        self.flush()?;
        fs::create_dir_all(dir).map_err(io_cluster)?;
        if dir.join(CLUSTER_MANIFEST).exists() {
            return Err(io_cluster(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{}: already holds a persisted index", dir.display()),
            )));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .engine
                .persist_to(shard_dir(dir, i))
                .map_err(ClusterError::Node)?;
        }
        let manifest = encode_cluster_manifest(
            self.shards.len() as u32,
            self.dim,
            self.per_shard_capacity as u64,
            self.window,
        );
        write_cluster_manifest(dir, &manifest).map_err(io_cluster)?;
        Ok(())
    }

    /// Recovers a sharded index from a directory written by
    /// [`persist_to`](Self::persist_to), re-attaching persistence so the
    /// recovered shards keep journaling.
    ///
    /// Every shard first recovers its own durable prefix (segments, then
    /// the WAL tail). A crash can land mid-batch with some shards ahead
    /// of others, so the cluster then truncates to the longest globally
    /// contiguous id prefix — replaying the deterministic routing hash
    /// from global id 0 until some shard runs out of recovered rows —
    /// which also rebuilds the global↔local id maps. Shards holding rows
    /// beyond the truncation point are rebuilt to the kept prefix and
    /// re-baselined on disk. Answers are identical to a from-scratch
    /// build over the recovered prefix (property-tested).
    pub fn recover_from(dir: impl AsRef<Path>) -> Result<ShardedIndex> {
        let dir = dir.as_ref();
        let bytes = fs::read(dir.join(CLUSTER_MANIFEST)).map_err(|e| {
            io_cluster(io::Error::new(
                e.kind(),
                format!("{}: no recoverable sharded index ({e})", dir.display()),
            ))
        })?;
        let (num_shards, dim, per_shard_capacity, window) =
            decode_cluster_manifest(&bytes).map_err(io_cluster)?;
        let fanout = repin_fanout(ThreadPool::default(), num_shards as usize);
        let states = (0..num_shards as usize)
            .map(|i| persist::load_state(shard_dir(dir, i)))
            .collect::<io::Result<Vec<_>>>()
            .map_err(io_cluster)?;
        for st in &states {
            if st.params().dim() != dim {
                return Err(ClusterError::Topology(format!(
                    "shard dimensionality {} does not match the cluster manifest's {dim}",
                    st.params().dim()
                )));
            }
        }
        // Longest globally contiguous prefix: replay the routing of every
        // global id until some shard runs out of recovered rows. This
        // walk *is* the id-map rebuild.
        let s = states.len();
        let mut keep = vec![0usize; s];
        let mut globals: Vec<Vec<u32>> = vec![Vec::new(); s];
        let mut locals: Vec<u32> = Vec::new();
        let mut total = 0u32;
        loop {
            let shard = route_hash(total) as usize % s;
            // A shard's durable coverage is its whole id *space* — the
            // window-compacted prefix included: those ids existed and are
            // dead, not missing, so the global walk strides through them.
            if keep[shard] == states[shard].static_base() as usize + states[shard].total() {
                break;
            }
            locals.push(keep[shard] as u32);
            globals[shard].push(total);
            keep[shard] += 1;
            total += 1;
        }
        let sync = ProgressSync::new();
        let mut shard_handles = Vec::with_capacity(s);
        for (i, st) in states.iter().enumerate() {
            let sdir = shard_dir(dir, i);
            let engine = if keep[i] == st.static_base() as usize + st.total() {
                persist::recover_engine_from_state(&sdir, st, &fanout)
                    .map_err(ClusterError::Node)?
            } else {
                // This shard ran ahead of the crashed batch: rebuild the
                // kept prefix and lay down a fresh baseline. `keep` counts
                // id-space positions; the rebuild wants *resident* rows
                // past the compaction cut (saturating: a truncation point
                // inside the compacted prefix keeps no rows).
                let resident = keep[i].saturating_sub(st.static_base() as usize);
                let engine = persist::rebuild_engine(st, Some(resident), &fanout)
                    .map_err(ClusterError::Node)?;
                fs::remove_dir_all(&sdir).map_err(io_cluster)?;
                engine.persist_to(&sdir).map_err(ClusterError::Node)?;
                engine
            };
            let streaming = StreamingEngine::from_engine(engine, ThreadPool::new(1));
            let pin_core = shard_core(i);
            if let Some(core) = pin_core {
                streaming.pin_merge_to(core);
            }
            let (tx, rx) = bounded::<ShardBatch>(4);
            let progress = IngestProgress::new(sync.clone());
            let status = Arc::new(WorkerStatus::new());
            let worker = spawn_ingest_worker(
                streaming.clone(),
                rx,
                progress.clone(),
                status.clone(),
                None,
                pin_core,
            );
            shard_handles.push(Shard {
                engine: streaming,
                globals: RwLock::new(std::mem::take(&mut globals[i])),
                tx: Some(tx),
                worker: Some(worker),
                progress,
                status,
            });
        }
        // Re-arm the cluster window cut. Each shard recovered its own
        // local watermark (manifest + retire log); a crash can land with
        // shards at different cuts, so pick the smallest global cursor
        // whose routing covers every recovered watermark and retire the
        // lagging shards up to it — the recovered index then sits on one
        // consistent cross-shard window edge (watermarks are monotone, so
        // this only ever advances a shard). A `Duration` window's birth
        // clock restarts here: the preserved watermark keeps the window
        // from moving backwards, and new inserts age out normally.
        let mut retire_cursor = 0u32;
        let mut retired_used = vec![0usize; s];
        let recovered: Vec<u32> = shard_handles
            .iter()
            .map(|h| h.engine.engine().retired_below())
            .collect();
        if recovered.iter().any(|&r| r > 0) {
            let mut counts = vec![0u32; s];
            while counts.iter().zip(&recovered).any(|(&c, &r)| c < r) && retire_cursor < total {
                counts[route_hash(retire_cursor) as usize % s] += 1;
                retire_cursor += 1;
            }
            for (h, &c) in shard_handles.iter().zip(&counts) {
                let _ = h.engine.retire_to(c);
            }
            retired_used = counts.iter().map(|&c| c as usize).collect();
        }
        Ok(ShardedIndex {
            dim,
            per_shard_capacity: per_shard_capacity as usize,
            window,
            shards: shard_handles,
            fanout,
            router: Mutex::new(Router {
                next_global: total,
                used: keep,
                retire_cursor,
                retired_used,
                births: VecDeque::new(),
            }),
            total: AtomicU64::new(total as u64),
            locals: RwLock::new(locals),
            ingest_sync: sync,
        })
    }
}

impl SearchBackend for ShardedIndex {
    fn search(&self, req: &SearchRequest, pool: &ThreadPool) -> CoreResult<SearchResponse> {
        ShardedIndex::search_with(self, req, pool)
    }
}

impl Drop for ShardedIndex {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            drop(shard.tx.take()); // close the queue: the worker drains and exits
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.worker.take() {
                // Workers contain their own panics (supervised restarts)
                // and mark themselves dead on exhaustion; a join failure
                // here carries nothing worth re-raising.
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.shards.len())
            .field("points", &self.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .finish_non_exhaustive()
    }
}

/// Divides a global candidate budget across `shards`: `b / S` each, the
/// first `b % S` shards one more, floored at one (a zero budget is not a
/// valid request, so shards keep a minimal probe when `b < S`).
fn split_budget(budget: usize, shards: usize) -> Vec<usize> {
    let per = budget / shards;
    let extra = budget % shards;
    (0..shards)
        .map(|i| (per + usize::from(i < extra)).max(1))
        .collect()
}

// ---------------------------------------------------------------------
// Cluster persistence layout
// ---------------------------------------------------------------------

/// Top-level cluster manifest file name.
const CLUSTER_MANIFEST: &str = "MANIFEST";
/// Cluster manifest magic.
const CLUSTER_MAGIC: &[u8; 4] = b"PLSC";
/// Cluster manifest format version. Version 2 added the sliding-window
/// spec; version-1 directories decode with no window.
const CLUSTER_VERSION: u32 = 2;
/// Window tag bytes in the cluster manifest.
const CW_NONE: u8 = 0;
const CW_DOCS: u8 = 1;
const CW_DURATION: u8 = 2;

/// `dir/shard-<i>`: the per-shard engine directory.
fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

/// FNV-1a over the manifest bytes (same integrity check the per-engine
/// manifest uses).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn encode_cluster_manifest(
    shards: u32,
    dim: u32,
    per_shard_capacity: u64,
    window: Option<WindowSpec>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(37);
    out.extend_from_slice(CLUSTER_MAGIC);
    out.extend_from_slice(&CLUSTER_VERSION.to_le_bytes());
    out.extend_from_slice(&shards.to_le_bytes());
    out.extend_from_slice(&dim.to_le_bytes());
    out.extend_from_slice(&per_shard_capacity.to_le_bytes());
    let (tag, value) = match window {
        None => (CW_NONE, 0u64),
        Some(WindowSpec::Docs(n)) => (CW_DOCS, n as u64),
        Some(WindowSpec::Duration(d)) => (CW_DURATION, d.as_nanos().min(u64::MAX as u128) as u64),
    };
    out.push(tag);
    out.extend_from_slice(&value.to_le_bytes());
    let crc = fnv1a(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

#[allow(clippy::type_complexity)]
fn decode_cluster_manifest(bytes: &[u8]) -> io::Result<(u32, u32, u64, Option<WindowSpec>)> {
    let bad = |msg: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cluster manifest: {msg}"),
        )
    };
    if bytes.len() < 28 {
        return Err(bad("wrong length"));
    }
    let (body, crc) = bytes.split_at(bytes.len() - 4);
    if u32::from_le_bytes(crc.try_into().expect("4 bytes")) != fnv1a(body) {
        return Err(bad("checksum mismatch"));
    }
    if &body[..4] != CLUSTER_MAGIC {
        return Err(bad("bad magic"));
    }
    let word = |at: usize| u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
    let version = word(4);
    let expected_len = match version {
        1 => 24,
        2 => 33,
        _ => return Err(bad("unsupported version")),
    };
    if body.len() != expected_len {
        return Err(bad("wrong length"));
    }
    let shards = word(8);
    if shards == 0 {
        return Err(bad("zero shards"));
    }
    let dim = word(12);
    let per_shard_capacity = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes"));
    let window = if version >= 2 {
        let value = u64::from_le_bytes(body[25..33].try_into().expect("8 bytes"));
        match body[24] {
            CW_NONE => None,
            CW_DOCS => Some(WindowSpec::Docs(
                u32::try_from(value).map_err(|_| bad("window size overflows u32"))?,
            )),
            CW_DURATION => Some(WindowSpec::Duration(Duration::from_nanos(value))),
            _ => return Err(bad("unknown window tag")),
        }
    } else {
        None
    };
    Ok((shards, dim, per_shard_capacity, window))
}

/// Writes the cluster manifest durably: temp file, fsync, rename.
fn write_cluster_manifest(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, dir.join(CLUSTER_MANIFEST))
}

/// Maps a cluster-level persistence I/O error into the shared error type.
fn io_cluster(e: io::Error) -> ClusterError {
    ClusterError::Node(PlshError::from(e))
}

/// The core shard `i`'s ingest and merge workers pin to, or `None` when
/// pinning is disabled (`PLSH_PIN=off`, a single-core host). Shards wrap
/// modulo the hardware-thread count when there are more shards than cores.
fn shard_core(i: usize) -> Option<usize> {
    affinity::pinning_enabled().then(|| i % affinity::host_threads())
}

/// Re-creates the query fan-out pool pinned to the cores the shard layout
/// leaves free, so query workers never contend with pinned ingest/merge
/// workers for a core. When the shards already cover the machine (or
/// pinning is off) the pool is returned unchanged: the workers float.
fn repin_fanout(fanout: ThreadPool, shards: usize) -> ThreadPool {
    let host = affinity::host_threads();
    if affinity::pinning_enabled() && shards < host {
        let spare: Vec<usize> = (shards..host).collect();
        ThreadPool::with_affinity(fanout.num_threads(), &spare)
    } else {
        fanout
    }
}

/// SplitMix64 finalizer over the id — the stable routing hash.
fn route_hash(id: u32) -> u64 {
    let mut z = (id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard's ingest thread: drains the queue into the engine, optionally
/// pacing arrivals to `points_per_sec`.
///
/// Pacing is a deadline that advances by `batch / rate` per batch and
/// clamps to *now* whenever the stream has been idle — so the rate always
/// applies to the current burst: there is no catch-up surge after a lull
/// and no phantom delay carried over from earlier traffic (e.g. an
/// unpaced-feeling preload would otherwise push every later batch's due
/// time out by its size).
fn spawn_ingest_worker(
    engine: StreamingEngine,
    rx: Receiver<ShardBatch>,
    progress: Arc<IngestProgress>,
    status: Arc<WorkerStatus>,
    rate: Option<f64>,
    pin_core: Option<usize>,
) -> JoinHandle<()> {
    /// In-place restarts granted per batch before the worker gives up
    /// and dies (surfacing [`ClusterError::IngestWorkerDied`] to senders).
    const MAX_RESTARTS: u32 = 3;
    std::thread::spawn(move || {
        // Marks the shard dead on every exit path — the normal
        // queue-closed return *and* an unwinding panic — so waiters
        // blocked on the condvar fail fast instead of hanging.
        struct DeathNotice(Arc<IngestProgress>);
        impl Drop for DeathNotice {
            fn drop(&mut self) {
                self.0.mark_dead();
            }
        }
        let _notice = DeathNotice(progress.clone());
        // Pin before touching the engine; a refused pin degrades to a
        // floating worker and the health report says so (`pinned_core:
        // None`).
        if let Some(core) = pin_core {
            if affinity::pin_current_thread(core) {
                progress.pinned_core.store(core, Ordering::SeqCst);
            }
        }
        let mut backoff = Backoff::new(
            Duration::from_millis(1),
            Duration::from_millis(50),
            0x7368_6172_6421,
        );
        let mut next_due = Instant::now();
        while let Ok(batch) = rx.recv() {
            let len = batch.docs.len() as u64;
            if let Some(points_per_sec) = rate {
                let now = Instant::now();
                if next_due > now {
                    std::thread::sleep(next_due - now);
                }
                next_due = next_due.max(now)
                    + Duration::from_secs_f64(batch.docs.len() as f64 / points_per_sec);
            }
            // A degraded shard keeps draining (and discarding) routed
            // batches so producers blocked on the bounded channel and
            // flush barriers never hang; the degradation is surfaced by
            // health() and by every subsequent write.
            if progress.is_degraded() {
                progress.batch_done(len);
                continue;
            }
            let mut attempt = 0u32;
            loop {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    fault::point(fault::INGEST_BATCH);
                    engine.insert_batch(&batch.docs)
                }));
                match outcome {
                    Ok(Ok(_)) => {
                        if let Some(cut) = batch.retire_to {
                            // After the docs: the cut may reference ids
                            // this very batch carried, and `retire_to`
                            // clamps to the assigned id range. A failure
                            // here has already degraded the engine; the
                            // next write surfaces it.
                            let _ = engine.retire_to(cut);
                        }
                        backoff.reset();
                        break;
                    }
                    Ok(Err(_)) => {
                        // Typed failure — either the engine degraded to
                        // read-only or routing validation was bypassed.
                        // Flip the shard degraded and keep draining.
                        progress.set_degraded();
                        break;
                    }
                    Err(payload) => {
                        status.record_restart(payload.as_ref());
                        if attempt >= MAX_RESTARTS {
                            status.mark_dead();
                            progress.batch_done(len);
                            return;
                        }
                        attempt += 1;
                        std::thread::sleep(backoff.next_delay());
                    }
                }
            }
            progress.batch_done(len);
        }
    })
}

/// Resolves the model-driven shard count for `profile` and the per-shard
/// engine template: Section 7's query-cost model evaluated at every
/// candidate count, over a synthetic distance sample at the paper's
/// operating point (most of the corpus far from the query, a thin
/// near-duplicate band inside the radius).
///
/// `node.capacity` is taken as the *expected total corpus size* (strong
/// scaling: the prediction divides it across shards, matching
/// [`PerformanceModel::predict_sharded_query_batch`]'s `n` semantics).
/// Since every shard is built with that same capacity, each keeps
/// full-corpus headroom for routing skew; an index deliberately filled
/// toward the `S·C` aggregate should size the shard count explicitly
/// with [`ShardedIndexBuilder::shards`] instead.
fn predict_shard_count(profile: &MachineProfile, node: &EngineConfig) -> usize {
    let params = &node.params;
    let n = node.capacity.max(1);
    // Synthetic distance sample: 2% duplicates near 0, 8% at the radius
    // shoulder, the rest spread toward orthogonality — the shape of the
    // paper's tweet-distance histogram (Figure 3).
    let mut sample = Vec::with_capacity(100);
    for i in 0..100u32 {
        let t = match i {
            0..=1 => 0.05,
            2..=9 => params.radius() as f32,
            _ => 0.9 + 0.7 * (i as f32 - 10.0) / 90.0,
        };
        sample.push(t);
    }
    let (e_coll, e_uniq) = estimate_candidates(&sample, n, params.k(), params.m());
    let model = PerformanceModel::new(*profile);
    let max = profile.threads.clamp(1, MAX_MODEL_SHARDS);
    model.pick_shard_count(MODEL_BATCH_QUERIES, n, 7.2, e_coll, e_uniq, params, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plsh_core::params::PlshParams;
    use plsh_core::rng::SplitMix64;

    fn params(dim: u32) -> PlshParams {
        PlshParams::builder(dim)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(11)
            .build()
            .unwrap()
    }

    fn random_vecs(n: usize, seed: u64) -> Vec<SparseVector> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let a = rng.next_below(64) as u32;
                let b = (a + 1 + rng.next_below(63) as u32) % 64;
                SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
            })
            .collect()
    }

    fn sharded(shards: usize, capacity: usize) -> ShardedIndex {
        ShardedIndex::builder(EngineConfig::new(params(64), capacity))
            .shards(shards)
            .threads(2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_zero_shards() {
        let err = ShardedIndex::builder(EngineConfig::new(params(64), 10))
            .shards(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ClusterError::Topology(_)));
    }

    #[test]
    fn model_driven_default_picks_a_sane_count() {
        let index = ShardedIndex::builder(EngineConfig::new(params(64), 10_000))
            .machine_profile(MachineProfile::paper())
            .threads(2)
            .build()
            .unwrap();
        assert!(index.num_shards() >= 1);
        assert!(index.num_shards() <= MachineProfile::paper().threads);
    }

    #[test]
    fn routing_is_stable_and_roughly_even() {
        let index = sharded(4, 10_000);
        let mut counts = vec![0usize; 4];
        for id in 0..8_000u32 {
            let s = index.route(id);
            assert_eq!(s, index.route(id), "routing must be deterministic");
            counts[s] += 1;
        }
        for &c in &counts {
            assert!((1_600..=2_400).contains(&c), "skewed routing: {counts:?}");
        }
    }

    #[test]
    fn insert_flush_query_roundtrip() {
        let index = sharded(3, 1_000);
        let vs = random_vecs(120, 1);
        let ids = index.insert_batch(&vs).unwrap();
        assert_eq!(ids, (0..120).collect::<Vec<u32>>());
        index.flush().unwrap();
        assert_eq!(index.visible_len(), 120);
        for (v, &gid) in vs.iter().zip(&ids) {
            let resp = index.search(&SearchRequest::query(v.clone())).unwrap();
            assert!(
                resp.hits()
                    .iter()
                    .any(|h| h.index == gid && h.distance < 1e-3),
                "point {gid} not found"
            );
        }
        // Shards report the routed occupancy.
        let stats = index.stats();
        assert_eq!(stats.total_points(), 120);
        assert!(stats.routing_imbalance() < 1.8);
    }

    #[test]
    fn capacity_check_is_all_or_nothing() {
        let index = sharded(2, 30);
        let vs = random_vecs(100, 2);
        // 100 points over 2 shards of 30 must fail before anything lands.
        assert!(index.insert_batch(&vs).is_err());
        assert_eq!(index.len(), 0);
        index.flush().unwrap();
        assert_eq!(index.visible_len(), 0);
        // A batch that fits routes fine afterwards.
        index.insert_batch(&vs[..40]).unwrap();
        index.flush().unwrap();
        assert_eq!(index.visible_len(), 40);
    }

    #[test]
    fn dimension_errors_abort_before_routing() {
        let index = sharded(2, 100);
        let bad = SparseVector::unit(vec![(64, 1.0)]).unwrap();
        assert!(index.insert(bad).is_err());
        assert_eq!(index.len(), 0);
    }

    #[test]
    fn delete_by_global_id_waits_for_inflight_points() {
        let index = sharded(3, 1_000);
        let vs = random_vecs(60, 3);
        let ids = index.insert_batch(&vs).unwrap();
        // Delete immediately — the point may still be queued.
        assert!(index.delete(ids[7]).unwrap());
        assert!(
            !index.delete(ids[7]).unwrap(),
            "double delete reports false"
        );
        assert!(!index.delete(9_999).unwrap(), "unknown id reports false");
        index.flush().unwrap();
        let resp = index.search(&SearchRequest::query(vs[7].clone())).unwrap();
        assert!(resp.hits().iter().all(|h| h.index != ids[7]));
    }

    #[test]
    fn vector_roundtrips_by_global_id() {
        let index = sharded(4, 1_000);
        let vs = random_vecs(40, 4);
        let ids = index.insert_batch(&vs).unwrap();
        index.flush().unwrap();
        for (v, &gid) in vs.iter().zip(&ids) {
            assert_eq!(index.vector(gid).as_ref(), Some(v));
        }
        assert_eq!(index.vector(999), None);
    }

    #[test]
    fn knn_merge_matches_global_ranking() {
        let index = sharded(3, 1_000);
        let vs = random_vecs(150, 5);
        index.insert_batch(&vs).unwrap();
        index.flush().unwrap();
        let resp = index
            .search(&SearchRequest::query(vs[0].clone()).top_k(5))
            .unwrap();
        let hits = resp.hits();
        assert!(!hits.is_empty());
        assert!(hits.len() <= 5);
        assert!(hits.windows(2).all(|w| {
            w[0].distance < w[1].distance
                || (w[0].distance == w[1].distance && w[0].index < w[1].index)
        }));
        assert_eq!(hits[0].index, 0, "self is the nearest neighbor");
    }

    #[test]
    fn background_merges_overlap_on_multiple_shards() {
        let index = ShardedIndex::builder(EngineConfig::new(params(64), 4_000).manual_merge())
            .shards(3)
            .threads(2)
            .build()
            .unwrap();
        let vs = random_vecs(900, 6);
        for chunk in vs.chunks(90) {
            index.insert_batch(chunk).unwrap();
        }
        index.flush().unwrap();
        let started = index.merge_all_in_background();
        assert_eq!(started, 3, "every shard has sealed data to merge");
        // Queries stay correct whatever phase each shard's merge is in.
        for probe in (0..900).step_by(113) {
            let resp = index
                .search(&SearchRequest::query(vs[probe].clone()))
                .unwrap();
            assert!(resp.hits().iter().any(|h| h.index == probe as u32));
        }
        index.quiesce().unwrap();
        assert_eq!(index.stats().merges, 3);
        for shard in 0..3 {
            assert_eq!(index.shard(shard).engine().delta_len(), 0);
        }
    }

    #[test]
    fn concurrent_ingest_and_query_smoke() {
        let index = Arc::new(sharded(3, 10_000));
        let vs = random_vecs(3_000, 7);
        let writer = {
            let index = index.clone();
            let vs = vs.clone();
            std::thread::spawn(move || {
                for chunk in vs.chunks(100) {
                    index.insert_batch(chunk).unwrap();
                }
                index.flush().unwrap();
            })
        };
        let reader = {
            let index = index.clone();
            let vs = vs.clone();
            std::thread::spawn(move || {
                let mut checked = 0;
                while checked < 50 {
                    // Condvar back-pressure: sleep until the writer has
                    // landed something instead of spinning on yield_now.
                    let visible = index.wait_for_visible(1);
                    let probe = (checked * 37) % visible.min(vs.len());
                    let resp = index
                        .search(&SearchRequest::query(vs[probe].clone()))
                        .unwrap();
                    // The probe's own id may or may not be visible yet, but
                    // the search must never error or return stale ids.
                    for hit in resp.hits() {
                        assert!((hit.index as usize) < index.len());
                    }
                    checked += 1;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        index.quiesce().unwrap();
        assert_eq!(index.visible_len(), 3_000);
        for probe in [0usize, 1_499, 2_999] {
            let resp = index
                .search(&SearchRequest::query(vs[probe].clone()))
                .unwrap();
            assert!(resp.hits().iter().any(|h| h.index == probe as u32));
        }
    }

    #[test]
    fn wait_for_visible_unblocks_and_health_reports_pinning() {
        let index = sharded(2, 1_000);
        let vs = random_vecs(30, 21);
        index.insert_batch(&vs).unwrap();
        // The barrier returns once the routed points are visible — woken
        // by the drain condvar, not by polling.
        assert!(index.wait_for_visible(30) >= 30);
        // Already-satisfied barriers return immediately.
        assert!(index.wait_for_visible(1) >= 30);
        let health = index.health();
        let ingest: Vec<_> = health
            .workers
            .iter()
            .filter(|w| w.name.ends_with(".ingest") && !w.name.contains("merge"))
            .collect();
        assert_eq!(ingest.len(), 2);
        // Pinning degrades to a no-op when disabled (PLSH_PIN=off or a
        // single-core host); the report must agree with the gate either
        // way: pinned cores only when pinning is possible, and always
        // inside the host's thread range.
        for w in &ingest {
            if let Some(core) = w.pinned_core {
                assert!(affinity::pinning_enabled());
                assert!(core < affinity::host_threads());
            }
        }
        if !affinity::pinning_enabled() {
            assert!(ingest.iter().all(|w| w.pinned_core.is_none()));
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plsh-sharded-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Sorted `(global id, distance bits)` radius answers — the
    /// bit-identical comparison key used across the equivalence suites.
    fn answers(index: &ShardedIndex, q: &SparseVector) -> Vec<(u32, u32)> {
        let mut hits: Vec<(u32, u32)> = index
            .search(&SearchRequest::query(q.clone()))
            .unwrap()
            .hits()
            .iter()
            .map(|h| (h.index, h.distance.to_bits()))
            .collect();
        hits.sort_unstable();
        hits
    }

    #[test]
    fn budget_splits_evenly_with_floor() {
        assert_eq!(split_budget(50, 4), vec![13, 13, 12, 12]);
        assert_eq!(split_budget(3, 3), vec![1, 1, 1]);
        assert_eq!(split_budget(2, 5), vec![1, 1, 1, 1, 1]);
        assert_eq!(split_budget(7, 1), vec![7]);
    }

    #[test]
    fn budgeted_search_honors_the_global_budget() {
        let index = sharded(5, 1_000);
        let vs = random_vecs(400, 9);
        index.insert_batch(&vs).unwrap();
        index.flush().unwrap();
        let budget = 40;
        let resp = index
            .search(
                &SearchRequest::query(vs[0].clone())
                    .with_max_candidates(budget)
                    .with_stats(),
            )
            .unwrap();
        let totals = resp.stats.unwrap().totals;
        assert!(
            totals.distance_computations <= budget as u64,
            "aggregate candidates {} exceed the global budget {budget}",
            totals.distance_computations
        );
        // Budgeted hits are a subset of the unbudgeted answer set.
        let full: Vec<u32> = index
            .search(&SearchRequest::query(vs[0].clone()))
            .unwrap()
            .hits()
            .iter()
            .map(|h| h.index)
            .collect();
        for h in resp.hits() {
            assert!(
                full.contains(&h.index),
                "budgeted hit {} not in the full answer set",
                h.index
            );
        }
    }

    #[test]
    fn cluster_manifest_rejects_corruption() {
        let good = encode_cluster_manifest(3, 64, 1_000, None);
        assert_eq!(
            decode_cluster_manifest(&good).unwrap(),
            (3, 64, 1_000, None)
        );
        let mut bad_crc = good.clone();
        bad_crc[8] ^= 1;
        assert!(decode_cluster_manifest(&bad_crc).is_err());
        assert!(decode_cluster_manifest(&good[..20]).is_err());
        assert!(decode_cluster_manifest(&encode_cluster_manifest(0, 64, 10, None)).is_err());
    }

    #[test]
    fn cluster_manifest_round_trips_window_specs() {
        for w in [
            Some(WindowSpec::Docs(500)),
            Some(WindowSpec::Duration(Duration::from_millis(1500))),
            None,
        ] {
            let bytes = encode_cluster_manifest(4, 128, 2_000, w);
            assert_eq!(decode_cluster_manifest(&bytes).unwrap(), (4, 128, 2_000, w));
        }
    }

    #[test]
    fn snapshot_flattens_with_purge_accounting() {
        let index = sharded(3, 1_000);
        let vs = random_vecs(150, 12);
        index.insert_batch(&vs).unwrap();
        index.flush().unwrap();
        index.delete(10).unwrap();
        index.quiesce().unwrap(); // fold every shard: id 10 gets purged
        index.delete(20).unwrap(); // stays pending
        let snap = index.snapshot();
        assert_eq!(snap.vectors.len(), 150);
        assert_eq!(snap.static_len, 150, "the flattened corpus is all static");
        assert!(snap.purged.contains(&10));
        assert!(snap.deleted.contains(&20));
        let pool = ThreadPool::new(2);
        let single = snap.restore(&pool).unwrap();
        for q in vs.iter().step_by(17) {
            let mut got: Vec<(u32, u32)> = single
                .query(q)
                .into_iter()
                .map(|n| (n.index, n.distance.to_bits()))
                .collect();
            got.sort_unstable();
            assert_eq!(got, answers(&index, q), "flattened snapshot diverged");
        }
    }

    #[test]
    fn persist_recover_round_trip() {
        let dir = tempdir("roundtrip");
        let vs = random_vecs(200, 10);
        let probes: Vec<SparseVector> = vs.iter().step_by(23).cloned().collect();
        let before: Vec<Vec<(u32, u32)>>;
        {
            let index = sharded(3, 1_000);
            index.insert_batch(&vs[..120]).unwrap();
            index.flush().unwrap();
            index.delete(17).unwrap();
            index.quiesce().unwrap(); // merge → purge 17 before the baseline
            index.persist_to(&dir).unwrap();
            // Post-baseline traffic flows through the per-shard WALs.
            index.insert_batch(&vs[120..]).unwrap();
            index.delete(150).unwrap();
            index.flush().unwrap();
            before = probes.iter().map(|q| answers(&index, q)).collect();
        }
        let recovered = ShardedIndex::recover_from(&dir).unwrap();
        assert_eq!(recovered.len(), 200);
        assert_eq!(recovered.num_shards(), 3);
        for (q, want) in probes.iter().zip(&before) {
            assert_eq!(&answers(&recovered, q), want, "recovery diverged");
        }
        // The recovered index keeps journaling: new inserts survive a
        // second recovery.
        let extra = random_vecs(30, 11);
        recovered.insert_batch(&extra).unwrap();
        recovered.flush().unwrap();
        let probe = extra[0].clone();
        let want = answers(&recovered, &probe);
        drop(recovered);
        let again = ShardedIndex::recover_from(&dir).unwrap();
        assert_eq!(again.len(), 230);
        assert_eq!(answers(&again, &probe), want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_shard_io_failure_degrades_read_only() {
        let dir = tempdir("degraded-shard");
        let index = sharded(2, 1_000);
        let vs = random_vecs(40, 13);
        index.insert_batch(&vs).unwrap();
        index.persist_to(&dir).unwrap();
        // Fail-stop: yank shard 0's data directory out from under it so
        // every durable write on that shard fails (retries included) and
        // the shard engine trips into degraded read-only mode.
        fs::remove_dir_all(dir.join("shard-0").join("data-0")).unwrap();
        // Route points until two head for shard 0: the first one's WAL
        // append exhausts its retries and degrades the engine, the
        // second is discarded by the (still running) worker.
        let mut shard0 = Vec::new();
        let mut next = index.len() as u32;
        let filler = random_vecs(1, 14).pop().unwrap();
        while shard0.len() < 2 {
            if index.route(next) == 0 {
                shard0.push(next);
            }
            match index.insert(filler.clone()) {
                Ok(_) => next += 1,
                Err(ClusterError::Node(PlshError::Degraded(_))) => break,
                Err(other) => panic!("unexpected ingest error: {other:?}"),
            }
        }
        // The discarded in-flight point surfaces the degradation, not a
        // hang and not a dead worker.
        let err = index.delete(shard0[0]).unwrap_err();
        assert!(
            matches!(err, ClusterError::Node(PlshError::Degraded(_))),
            "expected a typed degraded error, got {err:?}"
        );
        // Further writes routed at shard 0 fail fast with the same error.
        let err = index.insert_batch(&random_vecs(8, 15)).unwrap_err();
        assert!(matches!(err, ClusterError::Node(PlshError::Degraded(_))));
        // The flush barrier still completes: the worker drains (and
        // discards) instead of wedging producers.
        index.flush().unwrap();
        // Queries keep answering off the pinned epoch.
        let resp = index.search(&SearchRequest::query(vs[0].clone())).unwrap();
        assert!(!resp.results[0].is_empty(), "reads must survive degrade");
        // Health reports the degradation with live workers.
        let health = index.health();
        assert!(health.degraded);
        assert!(health.workers.iter().all(|w| w.alive));
        // Dropping the index is clean — the worker contained the fault.
        drop(index);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn paced_ingest_throttles_arrivals() {
        let index = ShardedIndex::builder(EngineConfig::new(params(64), 1_000))
            .shards(2)
            .threads(1)
            .ingest_rate(400.0)
            .build()
            .unwrap();
        let t0 = Instant::now();
        let vs = random_vecs(80, 8);
        for chunk in vs.chunks(10) {
            index.insert_batch(chunk).unwrap();
        }
        index.flush().unwrap();
        // ~40 points per shard at 400/s ⇒ the drain takes a measurable
        // fraction of 100 ms (first batch releases immediately).
        assert!(
            t0.elapsed() >= Duration::from_millis(40),
            "pacing must throttle the per-shard firehose, took {:?}",
            t0.elapsed()
        );
    }
    #[test]
    fn windowed_cluster_retires_a_consistent_cross_shard_cut() {
        let window = 60u32;
        let index = ShardedIndex::builder(
            EngineConfig::new(params(64), 1_000).with_window(WindowSpec::Docs(window)),
        )
        .shards(3)
        .threads(2)
        .build()
        .unwrap();
        assert_eq!(index.window(), Some(WindowSpec::Docs(window)));
        let vs = random_vecs(200, 31);
        for chunk in vs.chunks(25) {
            index.insert_batch(chunk).unwrap();
        }
        index.flush().unwrap();
        let cut = index.retired_below();
        assert_eq!(
            cut,
            200 - window,
            "cut must trail the stream head by the window"
        );
        // The cut is one consistent global position: every shard's local
        // watermark equals the count of globals below the cut it owns.
        let mut per_shard = vec![0u32; index.num_shards()];
        for g in 0..cut {
            per_shard[index.route(g)] += 1;
        }
        for (i, &expect) in per_shard.iter().enumerate() {
            assert_eq!(
                index.shard(i).engine().retired_below(),
                expect,
                "shard {i} watermark off the global cut"
            );
        }
        // Retired points are gone from answers and lookups; live ones stay.
        for (i, v) in vs.iter().enumerate() {
            let hits = answers(&index, v);
            if (i as u32) < cut {
                assert!(index.vector(i as u32).is_none(), "retired {i} resolved");
                assert!(
                    hits.iter().all(|&(id, _)| id != i as u32),
                    "retired {i} surfaced"
                );
            } else {
                assert!(hits.iter().any(|&(id, _)| id == i as u32), "live {i} lost");
            }
        }
    }

    #[test]
    fn windowed_cluster_matches_manual_delete_twin() {
        let window = 50u32;
        let windowed = ShardedIndex::builder(
            EngineConfig::new(params(64), 1_000).with_window(WindowSpec::Docs(window)),
        )
        .shards(3)
        .threads(2)
        .build()
        .unwrap();
        let twin = sharded(3, 1_000);
        let vs = random_vecs(170, 32);
        for chunk in vs.chunks(23) {
            windowed.insert_batch(chunk).unwrap();
            twin.insert_batch(chunk).unwrap();
            windowed.flush().unwrap();
            twin.flush().unwrap();
            for id in 0..windowed.retired_below() {
                let _ = twin.delete(id);
            }
        }
        windowed.quiesce().unwrap();
        twin.quiesce().unwrap();
        for v in &vs {
            assert_eq!(
                answers(&windowed, v),
                answers(&twin, v),
                "windowed cluster diverged from its delete twin"
            );
        }
    }

    #[test]
    fn windowed_cluster_recovers_its_window_edge() {
        let dir = tempdir("window-recovery");
        let window = 40u32;
        let vs = random_vecs(150, 33);
        let cut_before;
        {
            let index = ShardedIndex::builder(
                EngineConfig::new(params(64), 1_000).with_window(WindowSpec::Docs(window)),
            )
            .shards(3)
            .threads(2)
            .build()
            .unwrap();
            index.persist_to(&dir).unwrap();
            for chunk in vs.chunks(19) {
                index.insert_batch(chunk).unwrap();
            }
            index.quiesce().unwrap();
            cut_before = index.retired_below();
            assert_eq!(cut_before, 150 - window);
        }
        let recovered = ShardedIndex::recover_from(&dir).unwrap();
        assert_eq!(recovered.window(), Some(WindowSpec::Docs(window)));
        assert_eq!(recovered.len(), 150);
        assert_eq!(
            recovered.retired_below(),
            cut_before,
            "recovery must land on the same window edge"
        );
        for (i, v) in vs.iter().enumerate() {
            let hits = answers(&recovered, v);
            if (i as u32) < cut_before {
                assert!(hits.iter().all(|&(id, _)| id != i as u32));
            } else {
                assert!(hits.iter().any(|&(id, _)| id == i as u32), "live {i} lost");
            }
        }
        // The recovered cluster keeps sliding: new inserts advance the cut.
        let more = random_vecs(60, 34);
        recovered.insert_batch(&more).unwrap();
        recovered.flush().unwrap();
        assert_eq!(recovered.retired_below(), 210 - window);
        let _ = fs::remove_dir_all(&dir);
    }
}
