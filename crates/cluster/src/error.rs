//! Cluster-level errors, convertible into the workspace-wide
//! [`plsh_core::PlshError`] so multi-node and single-node callers share
//! one `Result` type end-to-end.

use std::fmt;

use plsh_core::PlshError;

/// Convenience alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Errors produced by the coordinator and its nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The cluster topology (node count, insert window) is invalid.
    Topology(String),
    /// A node engine rejected an operation; the node's error is carried
    /// verbatim.
    Node(PlshError),
    /// A shard's ingest worker thread died (it panicked) while routed
    /// points were still in flight, so the operation can never complete.
    /// The panic itself is re-raised when the index is dropped.
    IngestWorkerDied {
        /// Index of the shard whose worker is gone.
        shard: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Topology(msg) => write!(f, "invalid cluster topology: {msg}"),
            ClusterError::Node(e) => write!(f, "node engine error: {e}"),
            ClusterError::IngestWorkerDied { shard } => {
                write!(
                    f,
                    "shard {shard} ingest worker died with routed points still in flight"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<PlshError> for ClusterError {
    fn from(e: PlshError) -> Self {
        ClusterError::Node(e)
    }
}

impl From<ClusterError> for PlshError {
    fn from(e: ClusterError) -> Self {
        match e {
            ClusterError::Topology(msg) => {
                PlshError::InvalidParams(format!("cluster topology: {msg}"))
            }
            ClusterError::Node(e) => e,
            ClusterError::IngestWorkerDied { shard } => {
                PlshError::Io(format!("shard {shard} ingest worker died"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_core_error() {
        let node = ClusterError::from(PlshError::EmptyVector);
        assert_eq!(PlshError::from(node), PlshError::EmptyVector);
        let topo = ClusterError::Topology("window must divide nodes".into());
        match PlshError::from(topo) {
            PlshError::InvalidParams(msg) => assert!(msg.contains("window")),
            other => panic!("unexpected conversion: {other:?}"),
        }
    }
}
