//! # plsh-cluster — multi-node PLSH simulation
//!
//! The paper runs PLSH on 100 nodes (Section 4, Figure 1): every node holds
//! a disjoint slice of the data, queries are broadcast to all nodes and the
//! partial answers concatenated by a coordinator, and **inserts are
//! restricted to a rolling window of `M` nodes** so that when the cluster
//! fills up, the window containing the oldest data can be retired (erased)
//! wholesale — exact expiration without per-point timestamps.
//!
//! The real system used MPI over Infiniband; the paper measures
//! communication at well under 1% of query time (Section 8.4), so the
//! interesting behaviour is per-node. This crate therefore simulates nodes
//! **in-process**: each node is a full [`plsh_core::Engine`], the
//! coordinator broadcasts query batches with one work-stealing task per
//! node, and per-node compute times are measured directly — the max/avg/min
//! series of Figure 9 and the load-imbalance ratio come straight from
//! those measurements.
//!
//! [`firehose`] adds a producer/consumer harness (a bounded channel fed by
//! a generator thread) used by the streaming examples to mimic the Twitter
//! firehose's arrival pattern.
//!
//! [`sharded`] is the scaling successor to the broadcast coordinator: a
//! [`ShardedIndex`] routes inserts by a stable hash of the point id into
//! per-shard [`plsh_core::streaming::StreamingEngine`]s (each with its own
//! ingest queue and background merge), fans queries out over the shards
//! through a work-stealing pool, and defaults its shard count to a
//! Section-7 performance-model prediction. Unlike [`Cluster`], whose
//! ingest used to demand exclusive access, every `ShardedIndex` operation
//! takes `&self` and overlaps freely across threads.

mod cluster;
mod error;
pub mod firehose;
pub mod sharded;

pub use cluster::{Cluster, ClusterConfig, ClusterQueryReport, ClusterStats, GlobalNeighbor};
pub use error::{ClusterError, Result};
pub use sharded::{ShardedIndex, ShardedIndexBuilder, ShardedStats};
