//! A bounded-channel "firehose" producer for streaming experiments.
//!
//! Twitter delivers ~4 600 tweets/second average with 23 000/second peaks
//! (paper Section 4). The streaming examples need an arrival process that
//! is decoupled from ingestion — a producer thread pushing batches into a
//! bounded channel — so that insert/merge overhead measurements see
//! realistic back-pressure rather than a pre-materialized corpus. A
//! firehose can optionally be *paced* to a target arrival rate, and
//! [`Firehose::pump_into`] drains it from a dedicated ingest thread into a
//! [`StreamingEngine`] so queries (issued from any other thread) overlap
//! true inserts and background merges.

use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver};
use plsh_core::sparse::SparseVector;
use plsh_core::streaming::StreamingEngine;

/// A batch of arrived documents.
#[derive(Debug, Clone)]
pub struct ArrivalBatch {
    /// Monotonically increasing batch sequence number.
    pub seq: u64,
    /// The documents.
    pub docs: Vec<SparseVector>,
}

/// Handle to a producer thread feeding [`ArrivalBatch`]es.
pub struct Firehose {
    receiver: Receiver<ArrivalBatch>,
    handle: Option<JoinHandle<()>>,
}

impl Firehose {
    /// Spawns a producer that slices `docs` into `batch_size` chunks and
    /// sends them through a channel with capacity `channel_batches`.
    ///
    /// The producer stops after sending all batches; the receiving side
    /// keeps draining until the channel closes.
    pub fn start(docs: Vec<SparseVector>, batch_size: usize, channel_batches: usize) -> Self {
        Self::start_paced(docs, batch_size, channel_batches, f64::INFINITY)
    }

    /// Like [`start`](Self::start), but paces arrivals to
    /// `points_per_sec` (the paper's Twitter-rate scenario): each batch is
    /// released only once its arrival time has passed. Pass
    /// `f64::INFINITY` for an unpaced stream.
    pub fn start_paced(
        docs: Vec<SparseVector>,
        batch_size: usize,
        channel_batches: usize,
        points_per_sec: f64,
    ) -> Self {
        assert!(batch_size >= 1);
        assert!(points_per_sec > 0.0);
        let (tx, rx) = bounded(channel_batches.max(1));
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut seq = 0u64;
            let mut sent = 0usize;
            let mut iter = docs.into_iter().peekable();
            while iter.peek().is_some() {
                let batch: Vec<SparseVector> = iter.by_ref().take(batch_size).collect();
                if points_per_sec.is_finite() {
                    let due = Duration::from_secs_f64(sent as f64 / points_per_sec);
                    if let Some(wait) = due.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                }
                sent += batch.len();
                if tx.send(ArrivalBatch { seq, docs: batch }).is_err() {
                    break; // receiver hung up
                }
                seq += 1;
            }
        });
        Self {
            receiver: rx,
            handle: Some(handle),
        }
    }

    /// Spawns an ingest thread that drains this firehose into `engine`
    /// (insert → seal → background merge at `η·C`), so the caller's thread
    /// is free to run queries concurrently. Returns a handle that joins
    /// the thread and reports ingest statistics.
    ///
    /// If an insert fails (capacity exceeded, engine degraded to
    /// read-only), the pump stops drawing from the stream, records the
    /// error in [`IngestStats::error`], and returns — the firehose
    /// producer unblocks when the pump's receiver drops, so nothing
    /// hangs.
    pub fn pump_into(self, engine: StreamingEngine) -> IngestPump {
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut stats = IngestStats::default();
            while let Some(batch) = self.next_batch() {
                let t1 = Instant::now();
                if let Err(e) = engine.insert_batch(&batch.docs) {
                    stats.error = Some(e.to_string());
                    break;
                }
                stats.insert_time += t1.elapsed();
                stats.batches += 1;
                stats.points += batch.docs.len() as u64;
            }
            stats.elapsed = t0.elapsed();
            stats
        });
        IngestPump {
            handle: Some(handle),
        }
    }

    /// Receives the next batch, or `None` when the stream has ended.
    pub fn next_batch(&self) -> Option<ArrivalBatch> {
        self.receiver.recv().ok()
    }

    /// Iterates over the remaining batches.
    pub fn iter(&self) -> impl Iterator<Item = ArrivalBatch> + '_ {
        std::iter::from_fn(move || self.next_batch())
    }
}

impl Drop for Firehose {
    fn drop(&mut self) {
        // Unblock the producer by dropping the receiver first.
        let (_tx, rx) = bounded(0);
        self.receiver = rx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// What an ingest pump did, measured on the ingest thread.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Batches drained from the firehose.
    pub batches: u64,
    /// Points inserted.
    pub points: u64,
    /// Time spent inside `insert_batch` (hash + bucket + seal).
    pub insert_time: Duration,
    /// Wall time from pump start to stream end (includes waiting on a
    /// paced producer).
    pub elapsed: Duration,
    /// The insert error that stopped the pump early, if any (rendered;
    /// the typed error stays with the engine — e.g. its degraded flag).
    pub error: Option<String>,
}

impl IngestStats {
    /// Insert throughput over time actually spent inserting.
    pub fn insert_qps(&self) -> f64 {
        let s = self.insert_time.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.points as f64 / s
        }
    }
}

/// Handle to the ingest thread spawned by [`Firehose::pump_into`].
///
/// Dropping the pump without [`join`](IngestPump::join)ing it still joins
/// the thread (the firehose producer has either finished or unblocks when
/// the pump's receiver drops), so no dangling ingest thread outlives the
/// handle.
pub struct IngestPump {
    handle: Option<JoinHandle<IngestStats>>,
}

impl IngestPump {
    /// True once the ingest thread has drained the stream (or stopped
    /// early on an insert error — see [`IngestStats::error`]).
    pub fn is_finished(&self) -> bool {
        self.handle.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Joins the ingest thread and returns its statistics. A pump whose
    /// thread panicked (it shouldn't: insert errors stop it cleanly)
    /// yields default stats with the panic recorded in
    /// [`IngestStats::error`].
    pub fn join(mut self) -> IngestStats {
        let Some(handle) = self.handle.take() else {
            return IngestStats::default();
        };
        handle.join().unwrap_or_else(|payload| IngestStats {
            error: Some(format!(
                "ingest thread panicked: {}",
                plsh_parallel::panic_message(payload.as_ref())
            )),
            ..IngestStats::default()
        })
    }
}

impl Drop for IngestPump {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(n: usize) -> Vec<SparseVector> {
        (0..n as u32)
            .map(|i| SparseVector::unit(vec![(i % 50, 1.0), (50 + i % 10, 0.5)]).unwrap())
            .collect()
    }

    #[test]
    fn delivers_everything_in_order() {
        let d = docs(25);
        let hose = Firehose::start(d.clone(), 10, 2);
        let batches: Vec<ArrivalBatch> = hose.iter().collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].docs.len(), 10);
        assert_eq!(batches[1].docs.len(), 10);
        assert_eq!(batches[2].docs.len(), 5);
        let flat: Vec<SparseVector> = batches.into_iter().flat_map(|b| b.docs).collect();
        assert_eq!(flat, d);
    }

    #[test]
    fn sequence_numbers_increase() {
        let hose = Firehose::start(docs(30), 7, 1);
        let seqs: Vec<u64> = hose.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_stream_closes_immediately() {
        let hose = Firehose::start(Vec::new(), 5, 1);
        assert!(hose.next_batch().is_none());
    }

    #[test]
    fn dropping_receiver_does_not_hang() {
        let hose = Firehose::start(docs(1000), 1, 1);
        let first = hose.next_batch().unwrap();
        assert_eq!(first.seq, 0);
        drop(hose); // must not deadlock on the blocked producer
    }

    #[test]
    fn paced_stream_respects_the_arrival_rate() {
        // 40 points at 400/s should take at least ~75 ms (the first batch
        // is released immediately).
        let t0 = std::time::Instant::now();
        let hose = Firehose::start_paced(docs(40), 10, 2, 400.0);
        let batches: Vec<ArrivalBatch> = hose.iter().collect();
        assert_eq!(batches.len(), 4);
        assert!(
            t0.elapsed() >= Duration::from_millis(70),
            "pacing must throttle delivery, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn pump_drains_into_a_streaming_engine() {
        use plsh_core::engine::EngineConfig;
        use plsh_core::params::PlshParams;
        use plsh_parallel::ThreadPool;

        let d = docs(120);
        let params = PlshParams::builder(64)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(3)
            .build()
            .unwrap();
        let engine = StreamingEngine::new(
            EngineConfig::new(params, 200).with_eta(0.25),
            ThreadPool::new(2),
        )
        .unwrap();
        let pump = Firehose::start(d.clone(), 25, 2).pump_into(engine.clone());
        // Query concurrently while the pump drains (answers must only ever
        // reference consistent epochs).
        loop {
            let info = engine.epoch_info();
            assert_eq!(info.visible_points, info.static_points + info.sealed_points);
            if pump.is_finished() {
                break;
            }
            let _ = engine.query(&d[0]);
        }
        let stats = pump.join();
        engine.wait_for_merge();
        assert!(stats.error.is_none(), "clean pump: {:?}", stats.error);
        assert_eq!(stats.points, 120);
        assert_eq!(stats.batches, 5);
        assert!(stats.insert_qps() > 0.0);
        assert_eq!(engine.len(), 120);
        for (i, v) in d.iter().enumerate() {
            assert!(
                engine.query(v).iter().any(|h| h.index == i as u32),
                "doc {i}"
            );
        }
    }

    #[test]
    fn pump_surfaces_insert_errors_without_hanging() {
        use plsh_core::engine::EngineConfig;
        use plsh_core::params::PlshParams;
        use plsh_parallel::ThreadPool;

        let params = PlshParams::builder(64)
            .k(4)
            .m(4)
            .radius(0.9)
            .seed(5)
            .build()
            .unwrap();
        // Capacity 30 < 120 docs: the pump must stop at the failed batch
        // instead of panicking, and the blocked producer must unwind.
        let engine =
            StreamingEngine::new(EngineConfig::new(params, 30), ThreadPool::new(1)).unwrap();
        let pump = Firehose::start(docs(120), 25, 1).pump_into(engine.clone());
        let stats = pump.join();
        assert!(
            stats.error.is_some(),
            "capacity overflow must surface as an ingest error"
        );
        assert_eq!(stats.points, 25, "only the batch that fit landed");
        assert_eq!(engine.len(), 25);
    }

    #[test]
    fn dropping_an_unjoined_pump_joins_the_thread() {
        use plsh_core::engine::EngineConfig;
        use plsh_core::params::PlshParams;
        use plsh_parallel::ThreadPool;

        let params = PlshParams::builder(64)
            .k(4)
            .m(4)
            .radius(0.9)
            .seed(7)
            .build()
            .unwrap();
        let engine =
            StreamingEngine::new(EngineConfig::new(params, 200), ThreadPool::new(1)).unwrap();
        let pump = Firehose::start(docs(60), 20, 1).pump_into(engine.clone());
        drop(pump); // must block until the stream is fully drained
        assert_eq!(engine.len(), 60, "drop-join drained the whole stream");
    }
}
