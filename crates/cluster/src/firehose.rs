//! A bounded-channel "firehose" producer for streaming experiments.
//!
//! Twitter delivers ~4 600 tweets/second average with 23 000/second peaks
//! (paper Section 4). The streaming examples need an arrival process that
//! is decoupled from ingestion — a producer thread pushing batches into a
//! bounded channel — so that insert/merge overhead measurements see
//! realistic back-pressure rather than a pre-materialized corpus.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};
use plsh_core::sparse::SparseVector;

/// A batch of arrived documents.
#[derive(Debug, Clone)]
pub struct ArrivalBatch {
    /// Monotonically increasing batch sequence number.
    pub seq: u64,
    /// The documents.
    pub docs: Vec<SparseVector>,
}

/// Handle to a producer thread feeding [`ArrivalBatch`]es.
pub struct Firehose {
    receiver: Receiver<ArrivalBatch>,
    handle: Option<JoinHandle<()>>,
}

impl Firehose {
    /// Spawns a producer that slices `docs` into `batch_size` chunks and
    /// sends them through a channel with capacity `channel_batches`.
    ///
    /// The producer stops after sending all batches; the receiving side
    /// keeps draining until the channel closes.
    pub fn start(docs: Vec<SparseVector>, batch_size: usize, channel_batches: usize) -> Self {
        assert!(batch_size >= 1);
        let (tx, rx) = bounded(channel_batches.max(1));
        let handle = std::thread::spawn(move || {
            let mut seq = 0u64;
            let mut iter = docs.into_iter().peekable();
            while iter.peek().is_some() {
                let batch: Vec<SparseVector> = iter.by_ref().take(batch_size).collect();
                if tx
                    .send(ArrivalBatch {
                        seq,
                        docs: batch,
                    })
                    .is_err()
                {
                    break; // receiver hung up
                }
                seq += 1;
            }
        });
        Self {
            receiver: rx,
            handle: Some(handle),
        }
    }

    /// Receives the next batch, or `None` when the stream has ended.
    pub fn next_batch(&self) -> Option<ArrivalBatch> {
        self.receiver.recv().ok()
    }

    /// Iterates over the remaining batches.
    pub fn iter(&self) -> impl Iterator<Item = ArrivalBatch> + '_ {
        std::iter::from_fn(move || self.next_batch())
    }
}

impl Drop for Firehose {
    fn drop(&mut self) {
        // Unblock the producer by dropping the receiver first.
        let (_tx, rx) = bounded(0);
        self.receiver = rx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(n: usize) -> Vec<SparseVector> {
        (0..n as u32)
            .map(|i| SparseVector::unit(vec![(i % 50, 1.0), (50 + i % 10, 0.5)]).unwrap())
            .collect()
    }

    #[test]
    fn delivers_everything_in_order() {
        let d = docs(25);
        let hose = Firehose::start(d.clone(), 10, 2);
        let batches: Vec<ArrivalBatch> = hose.iter().collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].docs.len(), 10);
        assert_eq!(batches[1].docs.len(), 10);
        assert_eq!(batches[2].docs.len(), 5);
        let flat: Vec<SparseVector> =
            batches.into_iter().flat_map(|b| b.docs).collect();
        assert_eq!(flat, d);
    }

    #[test]
    fn sequence_numbers_increase() {
        let hose = Firehose::start(docs(30), 7, 1);
        let seqs: Vec<u64> = hose.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_stream_closes_immediately() {
        let hose = Firehose::start(Vec::new(), 5, 1);
        assert!(hose.next_batch().is_none());
    }

    #[test]
    fn dropping_receiver_does_not_hang() {
        let hose = Firehose::start(docs(1000), 1, 1);
        let first = hose.next_batch().unwrap();
        assert_eq!(first.seq, 0);
        drop(hose); // must not deadlock on the blocked producer
    }
}
