//! Property-based tests of cluster insert-routing invariants.

use proptest::prelude::*;

use plsh_cluster::{Cluster, ClusterConfig};
use plsh_core::engine::EngineConfig;
use plsh_core::params::PlshParams;
use plsh_core::rng::SplitMix64;
use plsh_core::sparse::SparseVector;
use plsh_parallel::ThreadPool;

fn params() -> PlshParams {
    PlshParams::builder(32)
        .k(4)
        .m(4)
        .radius(0.9)
        .seed(2)
        .build()
        .unwrap()
}

fn vectors(n: usize, seed: u64) -> Vec<SparseVector> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = rng.next_below(32) as u32;
            let b = (a + 1 + rng.next_below(31) as u32) % 32;
            SparseVector::unit(vec![(a, 1.0), (b, 0.5)]).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn routing_invariants_hold(
        capacity in 5usize..40,
        windows in 1usize..4,
        window_size in 1usize..4,
        stream_len in 1usize..300,
        seed in 0u64..1000,
    ) {
        let nodes = windows * window_size;
        let pool = ThreadPool::new(1);
        let config = ClusterConfig::new(
            EngineConfig::new(params(), capacity),
            nodes,
            window_size,
        );
        let cluster = Cluster::new(config, &pool).unwrap();
        let vs = vectors(stream_len, seed);
        let placed = cluster.insert_batch(&vs, &pool).unwrap();

        // Every point got a valid placement.
        prop_assert_eq!(placed.len(), stream_len);
        for &(node, local) in &placed {
            prop_assert!((node as usize) < nodes);
            prop_assert!((local as usize) < capacity);
        }

        let stats = cluster.stats();
        let total_capacity = nodes * capacity;
        // Stored points never exceed capacity, and without wrap-around
        // nothing is lost.
        prop_assert!(stats.total_points <= total_capacity);
        if stream_len <= total_capacity {
            prop_assert_eq!(stats.retirements, 0);
            prop_assert_eq!(stats.total_points, stream_len);
        } else {
            prop_assert!(stats.retirements >= 1);
        }
        // No node over capacity.
        for i in 0..nodes {
            prop_assert!(cluster.node(i).len() <= capacity);
        }
        // The most recently inserted point always survives (a retirement
        // can never erase the point that triggered it).
        let &(node, local) = placed.last().unwrap();
        prop_assert!((local as usize) < cluster.node(node as usize).len());
    }

    #[test]
    fn full_window_queries_agree_with_per_node_queries(
        stream_len in 1usize..60,
        seed in 0u64..100,
    ) {
        let pool = ThreadPool::new(2);
        let config = ClusterConfig::new(EngineConfig::new(params(), 30), 3, 3);
        let cluster = Cluster::new(config, &pool).unwrap();
        let vs = vectors(stream_len, seed);
        cluster.insert_batch(&vs, &pool).unwrap();
        // Coordinator answers = union of per-node answers.
        let q = &vs[0];
        let mut from_cluster: Vec<(u32, u32)> = cluster
            .query(q, &pool)
            .iter()
            .map(|h| (h.node, h.index))
            .collect();
        from_cluster.sort_unstable();
        let mut manual = Vec::new();
        for node in 0..cluster.num_nodes() {
            for h in cluster.node(node).query(q) {
                manual.push((node as u32, h.index));
            }
        }
        manual.sort_unstable();
        prop_assert_eq!(from_cluster, manual);
    }
}
