//! Synthetic tweet-like corpus generation.
//!
//! Two-pass construction mirroring the real pipeline: first draw every
//! document's distinct word set (Zipf-distributed words, Poisson length),
//! accumulating document frequencies; then weight each word by smoothed IDF
//! and normalize to a unit vector — exactly what `plsh-text` does to real
//! text, applied to synthetic word ids.
//!
//! A configurable fraction of documents are **near-duplicates**: a copy of
//! an earlier document with one word resampled (or added). Random Zipf
//! documents are nearly orthogonal to each other, so without injected
//! duplicates no query would have any `R = 0.9` neighbor besides itself;
//! with them, the corpus exhibits the near-duplicate structure (retweets,
//! reposted spam) that makes Twitter similarity search interesting
//! \[19, 25\].

use plsh_core::rng::SplitMix64;
use plsh_core::sparse::SparseVector;

use crate::distributions::{PoissonSampler, ZipfSampler};

/// Configuration for [`SyntheticCorpus::generate`].
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents `N`.
    pub num_docs: usize,
    /// Vocabulary size `D` (paper: 500 000).
    pub vocab_size: u32,
    /// Mean distinct words per document (paper: 7.2).
    pub mean_words: f64,
    /// Zipf exponent of the word distribution (1.0 = classic).
    pub zipf_exponent: f64,
    /// Fraction of documents generated as near-duplicates of an earlier
    /// document.
    pub duplicate_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// The scaled-down default workload used across the experiments:
    /// 100 K documents over a 50 K vocabulary.
    pub fn scaled_default() -> Self {
        Self {
            num_docs: 100_000,
            vocab_size: 50_000,
            mean_words: 7.2,
            zipf_exponent: 1.0,
            duplicate_fraction: 0.2,
            seed: 0xC0FFEE,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(num_docs: usize, seed: u64) -> Self {
        Self {
            num_docs,
            vocab_size: 2_000,
            mean_words: 7.2,
            zipf_exponent: 1.0,
            duplicate_fraction: 0.2,
            seed,
        }
    }

    /// A Wikipedia-abstract-like workload: the paper's second model-
    /// validation dataset (8 M abstracts, 500 K vocabulary) scaled down.
    /// Abstracts are much longer than tweets (~25 distinct cleaned words)
    /// and contain fewer near-duplicates.
    pub fn wikipedia_like() -> Self {
        Self {
            num_docs: 50_000,
            vocab_size: 50_000,
            mean_words: 25.0,
            zipf_exponent: 1.0,
            duplicate_fraction: 0.05,
            seed: 0x1781,
        }
    }

    /// Returns a copy with a different document count.
    pub fn with_num_docs(mut self, n: usize) -> Self {
        self.num_docs = n;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different duplicate fraction.
    pub fn with_duplicate_fraction(mut self, f: f64) -> Self {
        self.duplicate_fraction = f;
        self
    }
}

/// A generated corpus: unit vectors plus the word-set provenance needed by
/// tests and query generators.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    config: CorpusConfig,
    vectors: Vec<SparseVector>,
    /// For near-duplicates, the id of the original document.
    duplicate_of: Vec<Option<u32>>,
}

impl SyntheticCorpus {
    /// Generates a corpus deterministically from `config`.
    pub fn generate(config: CorpusConfig) -> Self {
        assert!(config.num_docs >= 1);
        assert!(config.vocab_size >= 16);
        assert!((0.0..=1.0).contains(&config.duplicate_fraction));
        let mut rng = SplitMix64::new(config.seed);
        let zipf = ZipfSampler::new(config.vocab_size as usize, config.zipf_exponent);
        let poisson = PoissonSampler::new(config.mean_words);

        // Pass 1: draw word sets, track document frequencies.
        let mut word_sets: Vec<Vec<u32>> = Vec::with_capacity(config.num_docs);
        let mut duplicate_of: Vec<Option<u32>> = Vec::with_capacity(config.num_docs);
        let mut doc_freq = vec![0u32; config.vocab_size as usize];
        for i in 0..config.num_docs {
            let dup = i > 0 && rng.next_f64() < config.duplicate_fraction;
            let words = if dup {
                let src = rng.next_below(i as u64) as usize;
                duplicate_of.push(Some(src as u32));
                perturb(&word_sets[src], &zipf, config.vocab_size, &mut rng)
            } else {
                duplicate_of.push(None);
                fresh_word_set(&zipf, &poisson, config.vocab_size, &mut rng)
            };
            for &w in &words {
                doc_freq[w as usize] += 1;
            }
            word_sets.push(words);
        }

        // Pass 2: IDF-weight and normalize (smoothed IDF, as plsh-text).
        let n = config.num_docs as f64;
        let idf: Vec<f32> = doc_freq
            .iter()
            .map(|&df| (((1.0 + n) / (1.0 + df as f64)).ln() + 1.0) as f32)
            .collect();
        let vectors = word_sets
            .into_iter()
            .map(|words| {
                let pairs: Vec<(u32, f32)> =
                    words.into_iter().map(|w| (w, idf[w as usize])).collect();
                SparseVector::unit(pairs).expect("word sets are non-empty")
            })
            .collect();

        Self {
            config,
            vectors,
            duplicate_of,
        }
    }

    /// Generation parameters.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Vector-space dimensionality `D`.
    pub fn dim(&self) -> u32 {
        self.config.vocab_size
    }

    /// The documents as sparse unit vectors.
    pub fn vectors(&self) -> &[SparseVector] {
        &self.vectors
    }

    /// One document.
    pub fn vector(&self, id: u32) -> &SparseVector {
        &self.vectors[id as usize]
    }

    /// For a near-duplicate document, the id it was derived from.
    pub fn duplicate_of(&self, id: u32) -> Option<u32> {
        self.duplicate_of[id as usize]
    }

    /// Mean non-zeros per document.
    pub fn avg_nnz(&self) -> f64 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        self.vectors.iter().map(SparseVector::nnz).sum::<usize>() as f64 / self.vectors.len() as f64
    }
}

/// Draws a fresh document: `Poisson(λ)∨1` distinct Zipf words.
fn fresh_word_set(
    zipf: &ZipfSampler,
    poisson: &PoissonSampler,
    vocab: u32,
    rng: &mut SplitMix64,
) -> Vec<u32> {
    let target = poisson.sample_at_least_one(rng).min(vocab) as usize;
    let mut words: Vec<u32> = Vec::with_capacity(target);
    // Resample collisions: documents hold *distinct* words (the cleaning
    // step removed duplicates). Bounded retries keep this total.
    let mut attempts = 0;
    while words.len() < target && attempts < target * 64 {
        attempts += 1;
        let w = zipf.sample(rng);
        if !words.contains(&w) {
            words.push(w);
        }
    }
    words.sort_unstable();
    words
}

/// Near-duplicate perturbation: replace one word with a fresh draw, or —
/// for short documents, where a replacement can carry most of the IDF mass
/// and push the copy outside the radius — add a word instead.
fn perturb(src: &[u32], zipf: &ZipfSampler, _vocab: u32, rng: &mut SplitMix64) -> Vec<u32> {
    let mut words = src.to_vec();
    let replacement = loop {
        let w = zipf.sample(rng);
        if !src.contains(&w) {
            break w;
        }
    };
    if words.len() >= 4 {
        let victim = rng.next_below(words.len() as u64) as usize;
        words[victim] = replacement;
    } else {
        words.push(replacement);
    }
    words.sort_unstable();
    words.dedup();
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCorpus::generate(CorpusConfig::tiny(200, 7));
        let b = SyntheticCorpus::generate(CorpusConfig::tiny(200, 7));
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() as u32 {
            assert_eq!(a.vector(i), b.vector(i));
        }
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(200, 8));
        let diff = (0..200u32).filter(|&i| a.vector(i) != c.vector(i)).count();
        assert!(diff > 150, "different seeds must differ ({diff})");
    }

    #[test]
    fn vectors_are_unit_and_in_range() {
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(300, 1));
        for v in c.vectors() {
            assert!((v.norm() - 1.0).abs() < 1e-5);
            assert!(v.max_index().unwrap() < c.dim());
            assert!(v.nnz() >= 1);
            // Distinct sorted indices.
            assert!(v.indices().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn mean_length_tracks_lambda() {
        let c =
            SyntheticCorpus::generate(CorpusConfig::tiny(5_000, 3).with_duplicate_fraction(0.0));
        let avg = c.avg_nnz();
        assert!((avg - 7.2).abs() < 0.4, "avg nnz {avg}");
    }

    #[test]
    fn duplicates_are_near_their_source() {
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(2_000, 5));
        let mut dup_count = 0;
        let mut near = 0;
        for i in 0..c.len() as u32 {
            if let Some(src) = c.duplicate_of(i) {
                dup_count += 1;
                let d = c.vector(i).angular_distance(c.vector(src));
                if d < 0.9 {
                    near += 1;
                }
            }
        }
        // The overwhelming majority of duplicates must fall inside R; a
        // small tail (short docs whose perturbed word carries most of the
        // IDF mass) may not, which the exact ground truth accounts for.
        assert!(
            near as f64 / dup_count as f64 > 0.9,
            "{near}/{dup_count} duplicates inside R"
        );
        // ~20% of documents are duplicates.
        let frac = dup_count as f64 / c.len() as f64;
        assert!((0.15..0.25).contains(&frac), "{frac}");
    }

    #[test]
    fn unrelated_documents_are_far() {
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(500, 9).with_duplicate_fraction(0.0));
        // Sample pairs; the overwhelming majority must be outside R = 0.9.
        let mut far = 0;
        let mut total = 0;
        for i in (0..500u32).step_by(7) {
            for j in (1..500u32).step_by(11) {
                if i != j {
                    total += 1;
                    if c.vector(i).angular_distance(c.vector(j)) > 0.9 {
                        far += 1;
                    }
                }
            }
        }
        assert!(far as f64 / total as f64 > 0.95, "{far}/{total}");
    }

    #[test]
    fn zipf_makes_top_words_common() {
        let c =
            SyntheticCorpus::generate(CorpusConfig::tiny(3_000, 11).with_duplicate_fraction(0.0));
        let mut df = vec![0u32; c.dim() as usize];
        for v in c.vectors() {
            for &w in v.indices() {
                df[w as usize] += 1;
            }
        }
        // Word 0 (rank 0) must appear far more often than the median word.
        let mut sorted = df.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(
            df[0] > median.max(1) * 20,
            "df[0]={} median={}",
            df[0],
            median
        );
    }
}
