//! Query-set generation (paper Section 8: "For queries, we use a random
//! subset of 1000 tweets from the database").

use plsh_core::rng::SplitMix64;
use plsh_core::sparse::SparseVector;

use crate::corpus::SyntheticCorpus;

/// A set of queries drawn from (or derived from) a corpus.
#[derive(Debug, Clone)]
pub struct QuerySet {
    queries: Vec<SparseVector>,
    /// Source document id for each query (when drawn from the corpus).
    source_ids: Vec<Option<u32>>,
}

impl QuerySet {
    /// Draws `count` distinct random documents from the corpus as queries —
    /// the paper's protocol.
    pub fn sample_from_corpus(corpus: &SyntheticCorpus, count: usize, seed: u64) -> Self {
        assert!(
            count <= corpus.len(),
            "cannot sample more queries than documents"
        );
        let mut rng = SplitMix64::new(seed);
        // Partial Fisher–Yates over the id space for distinct draws.
        let mut ids: Vec<u32> = (0..corpus.len() as u32).collect();
        for i in 0..count {
            let j = i + rng.next_below((ids.len() - i) as u64) as usize;
            ids.swap(i, j);
        }
        ids.truncate(count);
        let queries = ids.iter().map(|&id| corpus.vector(id).clone()).collect();
        let source_ids = ids.iter().map(|&id| Some(id)).collect();
        Self {
            queries,
            source_ids,
        }
    }

    /// Builds a query set from explicit vectors (e.g. vectorized user text
    /// snippets; the paper notes these "perform equally well").
    pub fn from_vectors(queries: Vec<SparseVector>) -> Self {
        let source_ids = vec![None; queries.len()];
        Self {
            queries,
            source_ids,
        }
    }

    /// The query vectors.
    pub fn queries(&self) -> &[SparseVector] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when there are no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Source document id of query `i`, when drawn from a corpus.
    pub fn source_id(&self, i: usize) -> Option<u32> {
        self.source_ids[i]
    }

    /// A prefix of the query set (for batch-size sweeps, Figure 10).
    pub fn prefix(&self, count: usize) -> &[SparseVector] {
        &self.queries[..count.min(self.queries.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn corpus() -> SyntheticCorpus {
        SyntheticCorpus::generate(CorpusConfig::tiny(500, 33))
    }

    #[test]
    fn sampled_queries_match_their_source() {
        let c = corpus();
        let qs = QuerySet::sample_from_corpus(&c, 50, 1);
        assert_eq!(qs.len(), 50);
        for i in 0..qs.len() {
            let src = qs.source_id(i).unwrap();
            assert_eq!(&qs.queries()[i], c.vector(src));
        }
    }

    #[test]
    fn sampled_ids_are_distinct() {
        let c = corpus();
        let qs = QuerySet::sample_from_corpus(&c, 200, 2);
        let mut ids: Vec<u32> = (0..200).map(|i| qs.source_id(i).unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn sampling_is_deterministic() {
        let c = corpus();
        let a = QuerySet::sample_from_corpus(&c, 30, 5);
        let b = QuerySet::sample_from_corpus(&c, 30, 5);
        for i in 0..30 {
            assert_eq!(a.source_id(i), b.source_id(i));
        }
        let d = QuerySet::sample_from_corpus(&c, 30, 6);
        let same = (0..30)
            .filter(|&i| a.source_id(i) == d.source_id(i))
            .count();
        assert!(same < 10, "different seeds should pick different queries");
    }

    #[test]
    fn whole_corpus_can_be_queries() {
        let c = corpus();
        let qs = QuerySet::sample_from_corpus(&c, c.len(), 9);
        assert_eq!(qs.len(), c.len());
    }

    #[test]
    #[should_panic(expected = "cannot sample more")]
    fn oversampling_panics() {
        let c = corpus();
        let _ = QuerySet::sample_from_corpus(&c, c.len() + 1, 1);
    }

    #[test]
    fn from_vectors_has_no_sources() {
        let c = corpus();
        let qs = QuerySet::from_vectors(vec![c.vector(0).clone()]);
        assert_eq!(qs.len(), 1);
        assert_eq!(qs.source_id(0), None);
    }

    #[test]
    fn prefix_clamps() {
        let c = corpus();
        let qs = QuerySet::sample_from_corpus(&c, 10, 3);
        assert_eq!(qs.prefix(3).len(), 3);
        assert_eq!(qs.prefix(100).len(), 10);
    }
}
