//! # plsh-workload — synthetic tweet-like corpora and evaluation inputs
//!
//! The paper evaluates on 1.05 billion real tweets: sparse IDF-weighted
//! unit vectors over a 500 000-word vocabulary, averaging 7.2 words per
//! tweet, with the Zipf word-frequency distribution of natural language
//! (Section 5.1.1 relies on that skew for cache behaviour). Real tweets are
//! not available here, so this crate generates the closest synthetic
//! equivalent:
//!
//! * [`ZipfSampler`] / [`PoissonSampler`] — exact inverse-CDF Zipf word
//!   draws and Knuth Poisson document lengths.
//! * [`SyntheticCorpus`] — a reproducible corpus of IDF-weighted unit
//!   vectors with a configurable fraction of injected near-duplicates
//!   (without them, random tweets are near-orthogonal and *nothing* lies
//!   within the paper's radius `R = 0.9` except the query itself).
//! * [`QuerySet`] — random database subsets used as queries, the paper's
//!   protocol ("we use a random subset of 1000 tweets from the database").
//! * [`GroundTruth`] — exact `R`-near neighbors from an exhaustive scan,
//!   for recall measurement (the paper's 92%-accuracy claim).
//!
//! Everything is seeded and deterministic.

mod corpus;
mod distributions;
mod ground_truth;
mod queries;

pub use corpus::{CorpusConfig, SyntheticCorpus};
pub use distributions::{PoissonSampler, ZipfSampler};
pub use ground_truth::{recall, GroundTruth};
pub use queries::QuerySet;
