//! Exact `R`-near-neighbor ground truth and recall measurement.
//!
//! LSH is randomized: each `R`-near neighbor is reported with probability
//! `≥ 1 − δ`. The paper validates the realized accuracy (92% at δ = 0.1)
//! against deterministic exhaustive search; this module computes that
//! reference answer, parallelized over queries.

use plsh_core::sparse::SparseVector;
use plsh_parallel::ThreadPool;

/// Exact neighbor lists for a set of queries.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    radius: f32,
    /// Per query: sorted ids of all points within the radius.
    neighbors: Vec<Vec<u32>>,
}

impl GroundTruth {
    /// Computes exact `radius`-near neighbors of every query by exhaustive
    /// scan over `data`.
    pub fn compute(
        data: &[SparseVector],
        queries: &[SparseVector],
        radius: f32,
        pool: &ThreadPool,
    ) -> Self {
        let neighbors = pool.parallel_map(queries.iter(), |q| {
            let mut hits: Vec<u32> = Vec::new();
            for (id, v) in data.iter().enumerate() {
                if q.angular_distance(v) <= radius {
                    hits.push(id as u32);
                }
            }
            hits
        });
        Self { radius, neighbors }
    }

    /// The radius the truth was computed for.
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when no queries are covered.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Sorted exact neighbor ids of query `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[i]
    }

    /// Total exact neighbors across all queries.
    pub fn total_neighbors(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }

    /// Micro-averaged recall of `reported` (per-query id lists, any order)
    /// against this truth: fraction of all true neighbors that were
    /// reported.
    pub fn recall_of(&self, reported: &[Vec<u32>]) -> f64 {
        assert_eq!(reported.len(), self.neighbors.len());
        let mut found = 0usize;
        let mut total = 0usize;
        for (truth, rep) in self.neighbors.iter().zip(reported) {
            total += truth.len();
            for id in truth {
                if rep.contains(id) {
                    found += 1;
                }
            }
        }
        recall(found, total)
    }
}

/// `found / total`, defined as 1 when there is nothing to find.
pub fn recall(found: usize, total: usize) -> f64 {
    if total == 0 {
        1.0
    } else {
        found as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusConfig, SyntheticCorpus};

    #[test]
    fn self_is_always_a_neighbor() {
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(100, 1));
        let pool = ThreadPool::new(2);
        let queries: Vec<SparseVector> = (0..10u32).map(|i| c.vector(i).clone()).collect();
        let gt = GroundTruth::compute(c.vectors(), &queries, 0.9, &pool);
        for i in 0..10 {
            assert!(gt.neighbors(i).contains(&(i as u32)), "query {i}");
        }
    }

    #[test]
    fn neighbors_are_within_radius_and_sorted() {
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(300, 2));
        let pool = ThreadPool::new(1);
        let queries: Vec<SparseVector> = (0..20u32).map(|i| c.vector(i * 3).clone()).collect();
        let gt = GroundTruth::compute(c.vectors(), &queries, 0.9, &pool);
        for (qi, q) in queries.iter().enumerate() {
            let hits = gt.neighbors(qi);
            assert!(hits.windows(2).all(|w| w[0] < w[1]));
            for &id in hits {
                assert!(q.angular_distance(c.vector(id)) <= 0.9);
            }
            // Complement check on a sample: no neighbor was missed.
            for id in (0..c.len() as u32).step_by(17) {
                if q.angular_distance(c.vector(id)) <= 0.9 {
                    assert!(hits.contains(&id));
                }
            }
        }
    }

    #[test]
    fn duplicates_produce_multi_neighbor_queries() {
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(1_000, 3));
        let pool = ThreadPool::new(2);
        let queries: Vec<SparseVector> = (0..100u32).map(|i| c.vector(i).clone()).collect();
        let gt = GroundTruth::compute(c.vectors(), &queries, 0.9, &pool);
        // With a 20% duplicate fraction there must be queries with more
        // than just themselves in range.
        assert!(
            gt.total_neighbors() > queries.len(),
            "total {} <= {}",
            gt.total_neighbors(),
            queries.len()
        );
    }

    #[test]
    fn recall_of_counts_correctly() {
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(50, 4));
        let pool = ThreadPool::new(1);
        let queries: Vec<SparseVector> = vec![c.vector(0).clone(), c.vector(1).clone()];
        let gt = GroundTruth::compute(c.vectors(), &queries, 0.9, &pool);
        // Perfect reporting.
        let perfect: Vec<Vec<u32>> = (0..2).map(|i| gt.neighbors(i).to_vec()).collect();
        assert_eq!(gt.recall_of(&perfect), 1.0);
        // Empty reporting.
        let nothing = vec![Vec::new(), Vec::new()];
        assert_eq!(gt.recall_of(&nothing), 0.0);
    }

    #[test]
    fn recall_edge_cases() {
        assert_eq!(recall(0, 0), 1.0);
        assert_eq!(recall(1, 2), 0.5);
        assert_eq!(recall(2, 2), 1.0);
    }

    #[test]
    fn parallel_and_serial_truth_agree() {
        let c = SyntheticCorpus::generate(CorpusConfig::tiny(200, 5));
        let queries: Vec<SparseVector> = (0..15u32).map(|i| c.vector(i).clone()).collect();
        let a = GroundTruth::compute(c.vectors(), &queries, 0.9, &ThreadPool::new(1));
        let b = GroundTruth::compute(c.vectors(), &queries, 0.9, &ThreadPool::new(4));
        for i in 0..15 {
            assert_eq!(a.neighbors(i), b.neighbors(i));
        }
    }
}
