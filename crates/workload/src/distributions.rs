//! Samplers for the word-frequency and document-length distributions.
//!
//! Natural-language word frequencies follow a Zipf law — the property the
//! paper leans on when arguing the hot rows of the hyperplane matrix stay
//! cached (Section 5.1.1) — and tweet lengths concentrate tightly around
//! 7.2 cleaned words. We model the former with an exact inverse-CDF Zipf
//! sampler and the latter with a Poisson draw clamped to be ≥ 1.

use plsh_core::rng::SplitMix64;

/// Exact Zipf(`s`) sampler over ranks `0..n` via a precomputed CDF and
/// binary search.
///
/// Memory is `8n` bytes; for the vocabulary sizes used here (≤ 500 K) this
/// is at most 4 MB and sampling is `O(log n)` with no rejection loops,
/// which keeps corpus generation deterministic across platforms.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s > 0`
    /// (`s = 1` is classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has zero ranks (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        let hi = self.cdf[r];
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        hi - lo
    }

    /// Draws one rank in `0..n` (0 is the most frequent).
    pub fn sample(&self, rng: &mut SplitMix64) -> u32 {
        let u = rng.next_f64();
        // First index with cdf >= u.
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// Poisson(λ) sampler (Knuth's product method — λ here is ~7.2, far below
/// the regime where the method degrades).
#[derive(Debug, Clone, Copy)]
pub struct PoissonSampler {
    exp_neg_lambda: f64,
    lambda: f64,
}

impl PoissonSampler {
    /// Builds a sampler with mean `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda < 700.0, "lambda out of range");
        Self {
            exp_neg_lambda: (-lambda).exp(),
            lambda,
        }
    }

    /// The configured mean.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one count.
    pub fn sample(&self, rng: &mut SplitMix64) -> u32 {
        let mut k = 0u32;
        let mut p = 1.0f64;
        loop {
            p *= rng.next_f64();
            if p <= self.exp_neg_lambda {
                return k;
            }
            k += 1;
        }
    }

    /// Draws one count, clamped to at least 1 (documents are non-empty).
    pub fn sample_at_least_one(&self, rng: &mut SplitMix64) -> u32 {
        self.sample(rng).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_pmf_sums_to_one_and_decreases() {
        let z = ZipfSampler::new(1000, 1.0);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..1000 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf_for_top_ranks() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = SplitMix64::new(42);
        let n = 200_000;
        let mut counts = vec![0u32; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (r, &count) in counts.iter().enumerate().take(5) {
            let emp = count as f64 / n as f64;
            let the = z.pmf(r);
            assert!(
                (emp - the).abs() / the < 0.05,
                "rank {r}: empirical {emp} vs pmf {the}"
            );
        }
        // Rank 0 should be about twice rank 1 for s = 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = ZipfSampler::new(7, 1.2);
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!((z.sample(&mut rng) as usize) < 7);
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = SplitMix64::new(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    fn zipf_is_deterministic() {
        let z = ZipfSampler::new(500, 1.0);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn poisson_mean_and_variance() {
        let p = PoissonSampler::new(7.2);
        let mut rng = SplitMix64::new(123);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..n {
            let k = p.sample(&mut rng) as f64;
            sum += k;
            sum_sq += k * k;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 7.2).abs() < 0.1, "mean {mean}");
        assert!((var - 7.2).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_at_least_one() {
        let p = PoissonSampler::new(0.5); // frequently draws 0
        let mut rng = SplitMix64::new(5);
        for _ in 0..5_000 {
            assert!(p.sample_at_least_one(&mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "lambda out of range")]
    fn poisson_rejects_bad_lambda() {
        let _ = PoissonSampler::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
