//! # plsh-baselines — deterministic nearest-neighbor baselines
//!
//! The paper's Table 2 compares PLSH against two deterministic algorithms
//! on the same workload:
//!
//! * [`ExhaustiveSearch`] — computes the distance from the query to every
//!   point (the `N` distance computations / 115 ms row).
//! * [`InvertedIndex`] — uses a term → documents index to gather candidate
//!   documents sharing at least one word with the query, then filters by
//!   distance (the 847 K distance computations / ≥ 21.8 ms row; the paper
//!   charges it only for the distance computations, not the postings
//!   lookups, and so do we — see [`InvertedIndex::query`]).
//!
//! Both are parallelized over queries like PLSH itself ("all algorithms
//! have been parallelized to use multiple cores to execute queries").

mod exhaustive;
mod inverted;

pub use exhaustive::ExhaustiveSearch;
pub use inverted::InvertedIndex;

/// A baseline query answer: matching point ids with distances, plus the
/// number of distance computations performed (the Table 2 metric).
#[derive(Debug, Clone, Default)]
pub struct BaselineAnswer {
    /// Matches within the radius, as `(id, distance)`.
    pub matches: Vec<(u32, f32)>,
    /// Distance computations performed for this query.
    pub distance_computations: u64,
}
