//! Inverted index baseline: the "Inverted index" row of Table 2.
//!
//! A term → posting-list index. A query gathers the union of posting lists
//! of its terms — every document sharing at least one word — and filters
//! those candidates by exact distance. Because common (low-IDF) words have
//! huge posting lists, the candidate set is far larger than PLSH's
//! (847 K vs 120 K on the paper's workload), which is exactly why PLSH
//! wins Table 2.
//!
//! Following the paper, reported cost counts only the distance
//! computations ("we do not include the time to generate the candidate
//! matches"), making the comparison conservative in the baseline's favor.

use plsh_core::dedup::CandidateSet;
use plsh_core::sparse::{angular_from_dot, CrsMatrix, SparseVector};
use plsh_parallel::ThreadPool;

use crate::BaselineAnswer;

/// A term → documents inverted index with distance filtering.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    data: CrsMatrix,
    /// CSR-style postings: `postings[offsets[t]..offsets[t+1]]` are the
    /// documents containing term `t`.
    offsets: Vec<u32>,
    postings: Vec<u32>,
    radius: f32,
}

impl InvertedIndex {
    /// Builds the index over `data` with query radius `radius`.
    pub fn new(dim: u32, data: &[SparseVector], radius: f32) -> Self {
        let mut m = CrsMatrix::with_capacity(dim, data.len(), 8);
        for v in data {
            m.push(v).expect("corpus vectors must fit the declared dim");
        }
        // Counting pass, prefix, fill — the same partition plan as the LSH
        // tables, over terms instead of buckets.
        let mut counts = vec![0u32; dim as usize];
        for v in data {
            for &t in v.indices() {
                counts[t as usize] += 1;
            }
        }
        let offsets = plsh_parallel::exclusive_prefix_sum(&counts);
        let mut cursors = offsets[..dim as usize].to_vec();
        let mut postings = vec![0u32; *offsets.last().unwrap() as usize];
        for (doc, v) in data.iter().enumerate() {
            for &t in v.indices() {
                let c = &mut cursors[t as usize];
                postings[*c as usize] = doc as u32;
                *c += 1;
            }
        }
        Self {
            data: m,
            offsets,
            postings,
            radius,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.data.num_rows()
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The posting list of term `t`.
    pub fn postings(&self, t: u32) -> &[u32] {
        let lo = self.offsets[t as usize] as usize;
        let hi = self.offsets[t as usize + 1] as usize;
        &self.postings[lo..hi]
    }

    /// Answers one query: union the posting lists of the query's terms,
    /// deduplicate, and filter candidates by exact distance.
    pub fn query(&self, q: &SparseVector) -> BaselineAnswer {
        let mut cand = CandidateSet::new(self.len());
        for &t in q.indices() {
            if (t as usize) < self.offsets.len() - 1 {
                for &doc in self.postings(t) {
                    cand.insert(doc);
                }
            }
        }
        let mut matches = Vec::new();
        let mut computations = 0u64;
        for &id in cand.candidates() {
            let dot = self.data.dot_row(id, q);
            computations += 1;
            let dist = angular_from_dot(dot);
            if dist <= self.radius {
                matches.push((id, dist));
            }
        }
        matches.sort_by_key(|&(id, _)| id);
        BaselineAnswer {
            matches,
            distance_computations: computations,
        }
    }

    /// Answers a batch of queries in parallel (one task per query).
    pub fn query_batch(&self, qs: &[SparseVector], pool: &ThreadPool) -> Vec<BaselineAnswer> {
        pool.parallel_map(qs.iter(), |q| self.query(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<SparseVector> {
        vec![
            SparseVector::unit(vec![(0, 1.0), (1, 1.0)]).unwrap(),
            SparseVector::unit(vec![(0, 1.0), (1, 0.9)]).unwrap(),
            SparseVector::unit(vec![(5, 1.0), (6, 1.0)]).unwrap(),
            SparseVector::unit(vec![(1, 1.0), (5, 1.0)]).unwrap(),
        ]
    }

    #[test]
    fn postings_are_correct() {
        let data = corpus();
        let idx = InvertedIndex::new(10, &data, 0.9);
        assert_eq!(idx.postings(0), &[0, 1]);
        assert_eq!(idx.postings(1), &[0, 1, 3]);
        assert_eq!(idx.postings(5), &[2, 3]);
        assert_eq!(idx.postings(9), &[] as &[u32]);
    }

    #[test]
    fn query_only_touches_sharing_documents() {
        let data = corpus();
        let idx = InvertedIndex::new(10, &data, 0.9);
        // Query on terms {5, 6}: candidates are docs 2 and 3 only.
        let ans = idx.query(&data[2]);
        assert_eq!(ans.distance_computations, 2);
        let ids: Vec<u32> = ans.matches.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn matches_exhaustive_answers() {
        let data = corpus();
        let idx = InvertedIndex::new(10, &data, 0.9);
        let exh = crate::ExhaustiveSearch::new(10, &data, 0.9);
        for q in &data {
            let a = idx.query(q);
            let mut b = exh.query(q);
            b.matches.sort_by_key(|&(id, _)| id);
            // An inverted index is exact for angular distance below π/2:
            // any match must share a term (positive dot product required).
            assert_eq!(a.matches, b.matches);
            assert!(a.distance_computations <= b.distance_computations);
        }
    }

    #[test]
    fn batch_matches_singles() {
        let data = corpus();
        let idx = InvertedIndex::new(10, &data, 0.9);
        let pool = ThreadPool::new(2);
        let answers = idx.query_batch(&data, &pool);
        for (q, got) in data.iter().zip(&answers) {
            assert_eq!(got.matches, idx.query(q).matches);
        }
    }

    #[test]
    fn empty_corpus_and_oov_query() {
        let idx = InvertedIndex::new(10, &[], 0.9);
        assert!(idx.is_empty());
        let q = SparseVector::unit(vec![(3, 1.0)]).unwrap();
        let ans = idx.query(&q);
        assert!(ans.matches.is_empty());
        assert_eq!(ans.distance_computations, 0);
    }

    #[test]
    fn candidate_count_grows_with_common_terms() {
        // A corpus where term 0 is ubiquitous: querying it scans everything.
        let data: Vec<SparseVector> = (0..20u32)
            .map(|i| SparseVector::unit(vec![(0, 1.0), (i + 1, 1.0)]).unwrap())
            .collect();
        let idx = InvertedIndex::new(32, &data, 0.9);
        let q = SparseVector::unit(vec![(0, 1.0), (1, 1.0)]).unwrap();
        let ans = idx.query(&q);
        assert_eq!(ans.distance_computations, 20, "common term pulls all docs");
    }
}
