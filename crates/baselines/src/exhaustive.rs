//! Exhaustive linear scan: the "Exhaustive search" row of Table 2.

use plsh_core::sparse::{CrsMatrix, SparseVector};
use plsh_parallel::ThreadPool;

use crate::BaselineAnswer;

/// A linear-scan `R`-near-neighbor searcher over a CRS corpus.
///
/// Every query computes its distance to every point — the `O(N)` reference
/// algorithm PLSH is measured against.
#[derive(Debug, Clone)]
pub struct ExhaustiveSearch {
    data: CrsMatrix,
    radius: f32,
}

impl ExhaustiveSearch {
    /// Builds the searcher over `data` with query radius `radius`.
    pub fn new(dim: u32, data: &[SparseVector], radius: f32) -> Self {
        let mut m = CrsMatrix::with_capacity(dim, data.len(), 8);
        for v in data {
            m.push(v).expect("corpus vectors must fit the declared dim");
        }
        Self { data: m, radius }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.data.num_rows()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured radius.
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// Answers one query by scanning all points.
    pub fn query(&self, q: &SparseVector) -> BaselineAnswer {
        let n = self.data.num_rows() as u32;
        let mut matches = Vec::new();
        for id in 0..n {
            let dot = self.data.dot_row(id, q);
            let dist = plsh_core::sparse::angular_from_dot(dot);
            if dist <= self.radius {
                matches.push((id, dist));
            }
        }
        BaselineAnswer {
            matches,
            distance_computations: n as u64,
        }
    }

    /// Answers a batch of queries in parallel (one task per query).
    pub fn query_batch(&self, qs: &[SparseVector], pool: &ThreadPool) -> Vec<BaselineAnswer> {
        pool.parallel_map(qs.iter(), |q| self.query(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<SparseVector> {
        vec![
            SparseVector::unit(vec![(0, 1.0), (1, 1.0)]).unwrap(),
            SparseVector::unit(vec![(0, 1.0), (1, 0.9)]).unwrap(),
            SparseVector::unit(vec![(5, 1.0), (6, 1.0)]).unwrap(),
        ]
    }

    #[test]
    fn finds_exactly_the_in_radius_points() {
        let data = corpus();
        let s = ExhaustiveSearch::new(10, &data, 0.9);
        let ans = s.query(&data[0]);
        let ids: Vec<u32> = ans.matches.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(ans.distance_computations, 3);
        // Distances are correct and within radius.
        for &(id, d) in &ans.matches {
            assert!((data[0].angular_distance(&data[id as usize]) - d).abs() < 1e-6);
            assert!(d <= 0.9);
        }
    }

    #[test]
    fn distance_count_is_always_n() {
        let data = corpus();
        let s = ExhaustiveSearch::new(10, &data, 0.1);
        let far = SparseVector::unit(vec![(9, 1.0)]).unwrap();
        let ans = s.query(&far);
        assert!(ans.matches.is_empty());
        assert_eq!(ans.distance_computations, 3);
    }

    #[test]
    fn batch_matches_singles() {
        let data = corpus();
        let s = ExhaustiveSearch::new(10, &data, 0.9);
        let pool = ThreadPool::new(2);
        let answers = s.query_batch(&data, &pool);
        assert_eq!(answers.len(), 3);
        for (q, got) in data.iter().zip(&answers) {
            let expect = s.query(q);
            assert_eq!(got.matches, expect.matches);
        }
    }

    #[test]
    fn empty_corpus() {
        let s = ExhaustiveSearch::new(10, &[], 0.9);
        assert!(s.is_empty());
        let q = SparseVector::unit(vec![(0, 1.0)]).unwrap();
        let ans = s.query(&q);
        assert!(ans.matches.is_empty());
        assert_eq!(ans.distance_computations, 0);
    }
}
