//! A shared-read streaming handle over the [`Engine`].
//!
//! [`StreamingEngine`] is a cheaply cloneable handle (`Arc<Engine>` plus a
//! worker pool) that lets ingest, merge, and query run from *different
//! threads at the same time* — the paper's headline scenario of answering
//! queries while the Twitter firehose streams in:
//!
//! * `insert_batch` hashes and seals under the engine's write mutex;
//! * queries pin an epoch lock-free and never block on the write path;
//! * when the sealed delta crosses `η·C`, the merge is handed to a
//!   **background thread** instead of running inline — ingest and queries
//!   continue against the current epoch until the merged epoch is
//!   published with a single swap.
//!
//! ```
//! use plsh_core::{EngineConfig, PlshParams, SparseVector};
//! use plsh_core::streaming::StreamingEngine;
//! use plsh_parallel::ThreadPool;
//!
//! let params = PlshParams::builder(16).k(4).m(4).radius(0.9).seed(42).build().unwrap();
//! let s = StreamingEngine::new(EngineConfig::new(params, 64), ThreadPool::new(2)).unwrap();
//! let ingest = s.clone();
//! let writer = std::thread::spawn(move || {
//!     let v = SparseVector::unit(vec![(0, 1.0), (3, 2.0)]).unwrap();
//!     ingest.insert_batch(&[v]).unwrap();
//! });
//! writer.join().unwrap();
//! let q = SparseVector::unit(vec![(0, 1.0), (3, 2.0)]).unwrap();
//! assert!(s.query(&q).iter().any(|h| h.index == 0));
//! s.wait_for_merge();
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use plsh_parallel::{affinity, Backoff, ThreadPool, WorkerStatus};

use crate::engine::{Engine, EngineConfig, EngineStats, EpochInfo, MergeReport};
use crate::error::Result;
use crate::fault;
use crate::health::{HealthReport, WorkerHealth};
use crate::query::{BatchStats, Neighbor};
use crate::search::{SearchBackend, SearchRequest, SearchResponse};
use crate::sparse::SparseVector;

/// What [`StreamingEngine::shutdown`] managed to wind down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Whether the open generation was fully sealed — `false` means rows
    /// remain buffered (and WAL-covered, if persistence is attached), e.g.
    /// because the engine is degraded and the seal was aborted.
    pub drained: bool,
    /// Whether a background merge was still running at the deadline and
    /// was detached rather than joined. An abandoned merge keeps running
    /// harmlessly (its publish is a single atomic swap) — the process just
    /// stops waiting for it.
    pub merge_abandoned: bool,
}

/// Sentinel for "no core" in [`MergePin`]'s atomic slots.
const NOT_PINNED: usize = usize::MAX;

/// Core-affinity request for the background-merge worker (shard-per-core
/// clusters point it at the owning shard's core). `want` is the requested
/// core, `got` the core the most recent merge thread actually pinned —
/// they differ when pinning is disabled or the kernel refused.
struct MergePin {
    want: AtomicUsize,
    got: AtomicUsize,
}

impl MergePin {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            want: AtomicUsize::new(NOT_PINNED),
            got: AtomicUsize::new(NOT_PINNED),
        })
    }

    /// Worker-thread-side: attempt the requested pin, remember the result.
    fn apply(&self) {
        let want = self.want.load(Ordering::SeqCst);
        if want != NOT_PINNED && affinity::pin_current_thread(want) {
            self.got.store(want, Ordering::SeqCst);
        }
    }

    fn pinned(&self) -> Option<usize> {
        match self.got.load(Ordering::SeqCst) {
            NOT_PINNED => None,
            core => Some(core),
        }
    }
}

/// A cloneable, thread-safe streaming handle (see the module docs).
#[derive(Clone)]
pub struct StreamingEngine {
    engine: Arc<Engine>,
    pool: ThreadPool,
    /// The in-flight background merge, if any (all clones share it).
    merger: Arc<Mutex<Option<JoinHandle<()>>>>,
    /// Liveness/restart accounting for the background merge worker (all
    /// clones share it; surfaced through [`health`](Self::health)).
    merge_status: Arc<WorkerStatus>,
    /// Core-affinity request for merge worker threads (all clones share
    /// it).
    merge_pin: Arc<MergePin>,
}

impl StreamingEngine {
    /// Creates a fresh engine wrapped in a streaming handle.
    pub fn new(config: EngineConfig, pool: ThreadPool) -> Result<Self> {
        let engine = Engine::new(config, &pool)?;
        Ok(Self::from_engine(engine, pool))
    }

    /// Wraps an existing engine (e.g. one pre-loaded from a snapshot).
    pub fn from_engine(engine: Engine, pool: ThreadPool) -> Self {
        Self {
            engine: Arc::new(engine),
            pool,
            merger: Arc::new(Mutex::new(None)),
            merge_status: Arc::new(WorkerStatus::new()),
            merge_pin: MergePin::new(),
        }
    }

    /// Requests that every future background-merge worker thread pin
    /// itself to `core` (shard-per-core clusters pass the owning shard's
    /// core, so ingest and merge share it and stay off the query cores).
    /// A no-op when pinning is disabled (`PLSH_PIN=off`, single-core
    /// host) or the kernel refuses; [`health`](Self::health) reports the
    /// core actually pinned.
    pub fn pin_merge_to(&self, core: usize) {
        self.merge_pin.want.store(core, Ordering::SeqCst);
    }

    /// Attaches incremental durability (see [`crate::persist`]): writes a
    /// baseline of the current contents into `dir`, then keeps the
    /// directory in sync from every insert, seal, delete, merge, and
    /// clear this handle (or any clone) performs.
    pub fn persist_to(&self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        self.engine.persist_to(dir)
    }

    /// Recovers an engine from a directory written by
    /// [`persist_to`](Self::persist_to) and wraps it in a streaming
    /// handle, with persistence re-attached. Answers are bit-identical to
    /// a from-scratch build over the recovered rows.
    pub fn recover_from(dir: impl AsRef<std::path::Path>, pool: ThreadPool) -> Result<Self> {
        let engine = Engine::recover_from(dir, &pool)?;
        Ok(Self::from_engine(engine, pool))
    }

    /// The underlying engine (all its `&self` operations are safe to call
    /// concurrently with this handle's).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The worker pool the handle drives hashing, merging, and batched
    /// queries with.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Inserts a batch and seals it (visible to queries on return). When
    /// the sealed delta crosses `η·C` (and auto-merge is on), a background
    /// merge is kicked off instead of blocking this call.
    pub fn insert_batch(&self, vs: &[SparseVector]) -> Result<Vec<u32>> {
        let (ids, merge_due) = self.engine.insert_batch_deferring_merge(vs, &self.pool)?;
        if merge_due {
            self.merge_in_background();
        }
        Ok(ids)
    }

    /// Inserts one vector; returns its id.
    pub fn insert(&self, v: SparseVector) -> Result<u32> {
        Ok(self.insert_batch(std::slice::from_ref(&v))?[0])
    }

    /// Seals the open generation, if the engine was configured to coalesce
    /// batches (`seal_min_points > 1`).
    pub fn seal(&self) -> bool {
        self.engine.seal()
    }

    /// Tombstones a point.
    pub fn delete(&self, id: u32) -> bool {
        self.engine.delete(id)
    }

    /// Advances the sliding-window retirement watermark: every id below
    /// `watermark` becomes dead as one range tombstone (see
    /// [`Engine::retire_to`]). Windowed engines advance it automatically
    /// on insert; this is the manual/cluster entry point.
    pub fn retire_to(&self, watermark: u32) -> Result<bool> {
        self.engine.retire_to(watermark)
    }

    /// Answers one [`SearchRequest`] against the current epoch, using the
    /// handle's own pool for batch fan-out. The one typed entry point —
    /// see [`Engine::search`].
    pub fn search(&self, req: &SearchRequest) -> Result<SearchResponse> {
        self.engine.search(req, &self.pool)
    }

    /// Answers one radius query against the current epoch (thin
    /// convenience over [`search`](Self::search)).
    pub fn query(&self, q: &SparseVector) -> Vec<Neighbor> {
        self.engine.query(q)
    }

    /// Answers a batch through the batched SIMD pipeline, all against one
    /// pinned epoch (thin convenience over [`search`](Self::search)).
    pub fn query_batch(&self, qs: &[SparseVector]) -> (Vec<Vec<Neighbor>>, BatchStats) {
        self.engine.query_batch(qs, &self.pool)
    }

    /// Runs a merge on *this* thread (blocks until published).
    pub fn merge_now(&self) {
        self.engine.merge_delta(&self.pool);
    }

    /// Starts a background merge unless one is already in flight; returns
    /// whether a new merge was started.
    ///
    /// The merge runs *supervised*: a panic (the merge build itself, or an
    /// armed [`crate::fault`] injection) is caught, recorded in
    /// [`health`](Self::health), and the merge is retried under bounded
    /// exponential backoff. A merge that keeps panicking through the
    /// restart budget marks the worker dead instead of spinning forever.
    pub fn merge_in_background(&self) -> bool {
        let mut slot = self.merger.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(handle) = slot.take() {
            if !handle.is_finished() {
                *slot = Some(handle);
                return false; // one merge at a time; the next trigger re-checks
            }
            join_merge(handle);
        }
        let engine = self.engine.clone();
        let pool = self.pool.clone();
        let status = self.merge_status.clone();
        let pin = self.merge_pin.clone();
        *slot = Some(std::thread::spawn(move || {
            pin.apply();
            supervised_merge(&engine, &pool, &status);
        }));
        true
    }

    /// Blocks until the in-flight background merge (if any) has finished.
    /// Merge panics never propagate here — they are absorbed by the
    /// supervisor and reported through [`health`](Self::health).
    pub fn wait_for_merge(&self) {
        let handle = self.merger.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            join_merge(h);
        }
    }

    /// Quiesces the write path: seals any buffered open generation, waits
    /// for an in-flight background merge, then folds every remaining sealed
    /// generation into the static epoch on this thread. On return the
    /// engine is fully static (and every insert made before the call is
    /// query-visible through the static tables).
    pub fn flush(&self) {
        self.seal();
        self.wait_for_merge();
        self.merge_now();
    }

    /// True while a background merge is building.
    pub fn merge_in_flight(&self) -> bool {
        self.merger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .is_some_and(|h| !h.is_finished())
    }

    /// Winds the handle down for a clean exit: seals (drains) whatever the
    /// open generation still buffers, then waits up to `deadline` for an
    /// in-flight background merge, detaching it if it misses. Idempotent;
    /// the handle stays usable afterwards.
    pub fn shutdown(&self, deadline: Duration) -> ShutdownReport {
        let t0 = Instant::now();
        self.engine.seal();
        let drained = self.engine.health().wal_lag_rows == 0;
        let handle = self.merger.lock().unwrap_or_else(|e| e.into_inner()).take();
        let merge_abandoned = if let Some(h) = handle {
            while !h.is_finished() && t0.elapsed() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if h.is_finished() {
                join_merge(h);
                false
            } else {
                drop(h); // detach: stop waiting, let it publish on its own
                true
            }
        } else {
            false
        };
        ShutdownReport {
            drained,
            merge_abandoned,
        }
    }

    /// Engine health plus the background merge worker's liveness.
    pub fn health(&self) -> HealthReport {
        let mut report = self.engine.health();
        report.workers.push(WorkerHealth {
            name: "merge".to_string(),
            alive: self.merge_status.alive(),
            restarts: self.merge_status.restarts(),
            last_panic: self.merge_status.last_panic(),
            pinned_core: self.merge_pin.pinned(),
        });
        report
    }

    /// Attempts to leave degraded read-only mode (see [`Engine::heal`]);
    /// also revives a merge worker that died under persistent faults.
    pub fn heal(&self) -> bool {
        let ok = self.engine.heal();
        if ok {
            self.merge_status.mark_alive();
        }
        ok
    }

    /// Stored points (sealed + open).
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Accounting passthrough.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Published-epoch shape passthrough.
    pub fn epoch_info(&self) -> EpochInfo {
        self.engine.epoch_info()
    }

    /// Most recent merge timings.
    pub fn last_merge(&self) -> MergeReport {
        self.engine.last_merge()
    }
}

impl SearchBackend for StreamingEngine {
    /// Trait entry point for generic drivers; `pool` supplies the batch
    /// fan-out workers (the inherent [`search`](StreamingEngine::search)
    /// uses the handle's own pool instead).
    fn search(&self, req: &SearchRequest, pool: &ThreadPool) -> Result<SearchResponse> {
        self.engine.search(req, pool)
    }
}

/// Joins a background-merge thread. The supervised loop inside the thread
/// catches every panic, so the join itself cannot fail; a defensive join
/// error is ignored rather than re-raised (the failure is already recorded
/// in the worker status).
fn join_merge(handle: JoinHandle<()>) {
    let _ = handle.join();
}

/// The supervised body of a background-merge thread: run the merge under
/// `catch_unwind`, absorb panics, and retry with bounded exponential
/// backoff. The [`fault::MERGE_BUILD`] failpoint fires *inside* the
/// catch but *outside* every engine lock, so an injected panic exercises
/// the restart path without poisoning the write path.
///
/// The build itself is the *paced* merge: bounded
/// [`crate::table::MergeStepper`] slices that sleep while queries are in
/// flight (`PLSH_MERGE_PACING=off` reverts to the monolithic build), and
/// any pool fan-out it does perform is submitted at background priority so
/// foreground query batches always dispatch first.
fn supervised_merge(engine: &Engine, pool: &ThreadPool, status: &WorkerStatus) {
    const MAX_RESTARTS: u32 = 3;
    let mut backoff = Backoff::new(
        Duration::from_millis(1),
        Duration::from_millis(50),
        0x6d65_7267, // "merg"
    );
    for attempt in 0..=MAX_RESTARTS {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            fault::point(fault::MERGE_BUILD);
            engine.merge_delta_paced(&pool.background());
        }));
        match outcome {
            Ok(()) => {
                status.mark_alive();
                return;
            }
            Err(payload) => {
                status.record_restart(payload.as_ref());
                if attempt == MAX_RESTARTS {
                    status.mark_dead();
                    return;
                }
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PlshParams;
    use crate::rng::SplitMix64;

    fn params(dim: u32) -> PlshParams {
        PlshParams::builder(dim)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(7)
            .build()
            .unwrap()
    }

    fn random_vec(rng: &mut SplitMix64, dim: u32) -> SparseVector {
        let a = rng.next_below(dim as u64) as u32;
        let b = (a + 1 + rng.next_below(dim as u64 - 1) as u32) % dim;
        SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
    }

    #[test]
    fn background_merge_publishes_eventually() {
        let s = StreamingEngine::new(
            EngineConfig::new(params(64), 1000).with_eta(0.1),
            ThreadPool::new(2),
        )
        .unwrap();
        let mut rng = SplitMix64::new(1);
        let vs: Vec<SparseVector> = (0..400).map(|_| random_vec(&mut rng, 64)).collect();
        for chunk in vs.chunks(50) {
            s.insert_batch(chunk).unwrap();
        }
        s.wait_for_merge();
        assert!(s.stats().merges >= 1, "threshold crossings must merge");
        assert!(s.engine().static_len() > 0);
        for (i, v) in vs.iter().enumerate() {
            assert!(s.query(v).iter().any(|h| h.index == i as u32), "point {i}");
        }
    }

    #[test]
    fn clones_share_the_engine() {
        let s = StreamingEngine::new(
            EngineConfig::new(params(64), 100).manual_merge(),
            ThreadPool::new(1),
        )
        .unwrap();
        let t = s.clone();
        let v = SparseVector::unit(vec![(1, 1.0), (2, 0.5)]).unwrap();
        let id = s.insert(v.clone()).unwrap();
        assert!(t.query(&v).iter().any(|h| h.index == id));
        assert!(t.delete(id));
        assert!(s.query(&v).iter().all(|h| h.index != id));
        assert_eq!(s.len(), t.len());
    }

    #[test]
    fn flush_seals_and_folds_everything_static() {
        let s = StreamingEngine::new(
            EngineConfig::new(params(64), 100)
                .manual_merge()
                .with_seal_min_points(50),
            ThreadPool::new(1),
        )
        .unwrap();
        let mut rng = SplitMix64::new(3);
        let vs: Vec<SparseVector> = (0..20).map(|_| random_vec(&mut rng, 64)).collect();
        s.insert_batch(&vs).unwrap();
        // Below the seal threshold: buffered, invisible.
        assert_eq!(s.engine().visible_len(), 0);
        s.flush();
        assert_eq!(s.engine().static_len(), 20, "flush must seal + merge");
        for (i, v) in vs.iter().enumerate() {
            assert!(s.query(v).iter().any(|h| h.index == i as u32), "point {i}");
        }
    }

    #[test]
    fn queries_run_while_a_merge_is_in_flight() {
        let s = StreamingEngine::new(
            EngineConfig::new(params(64), 2000).manual_merge(),
            ThreadPool::new(2),
        )
        .unwrap();
        let mut rng = SplitMix64::new(2);
        let vs: Vec<SparseVector> = (0..800).map(|_| random_vec(&mut rng, 64)).collect();
        for chunk in vs.chunks(100) {
            s.insert_batch(chunk).unwrap();
        }
        s.merge_in_background();
        // Whatever phase the merge is in, answers stay correct.
        for probe in (0..800).step_by(97) {
            assert!(s.query(&vs[probe]).iter().any(|h| h.index == probe as u32));
        }
        s.wait_for_merge();
        assert_eq!(s.engine().static_len(), 800);
        for probe in (0..800).step_by(97) {
            assert!(s.query(&vs[probe]).iter().any(|h| h.index == probe as u32));
        }
    }
}
