//! PLSH parameters, collision probability math, and parameter selection.
//!
//! The algorithm is governed by (paper Section 3):
//!
//! * `D` — dimensionality of the vector space (vocabulary size);
//! * `k` — bits per table index (even; each table key is the concatenation
//!   of two `k/2`-bit half-keys);
//! * `m` — number of `k/2`-bit hash functions `u_1..u_m`, combined pairwise
//!   into `L = m(m−1)/2` tables;
//! * `R` — query radius (angular distance);
//! * `δ` — failure probability: every `R`-near neighbor is reported with
//!   probability ≥ `1 − δ`.
//!
//! Section 7.2 gives the collision calculus for the all-pairs scheme: with
//! `p(t) = 1 − t/π` the hyperplane-collision probability at angle `t`, a
//! point at distance `t` is *missed* only if it collides with the query on
//! zero or one of the `m` half-keys, so the probability it is reported is
//!
//! ```text
//! P'(t, k, m) = 1 − (1 − q)^m − m·q·(1 − q)^(m−1),   q = p(t)^(k/2)
//! ```
//!
//! [`ParamSelection::select`] implements Section 7.3: enumerate `k`, find
//! the smallest `m` with `P'(R, k, m) ≥ 1 − δ`, reject pairs violating the
//! memory budget (Eq. 7.4), estimate the query cost
//! `T_Q2·E[#collisions] + T_Q3·E[#unique]` from a distance sample
//! (Eqs. 7.1/7.2), and pick the cheapest feasible pair.

use crate::error::{PlshError, Result};

/// Validated PLSH parameter set.
///
/// ```
/// use plsh_core::PlshParams;
///
/// // The paper's single-node setting: k = 16, m = 40 → L = 780 tables.
/// let p = PlshParams::builder(500_000)
///     .k(16)
///     .m(40)
///     .radius(0.9)
///     .delta(0.1)
///     .build()
///     .unwrap();
/// assert_eq!(p.l(), 780);
/// assert_eq!(p.num_hashes(), 320); // m * k/2 hyperplanes
/// // ~31 GB of tables for the paper's 10M-point node (Eq. 7.4).
/// assert!(p.table_memory_bytes(10_000_000) > 31_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlshParams {
    dim: u32,
    k: u32,
    m: u32,
    radius: f64,
    delta: f64,
    seed: u64,
}

impl PlshParams {
    /// Starts building a parameter set for vectors of dimensionality `dim`.
    pub fn builder(dim: u32) -> PlshParamsBuilder {
        PlshParamsBuilder::new(dim)
    }

    /// Dimensionality `D`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Bits per table index `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Bits per half-key, `k/2`.
    pub fn half_bits(&self) -> u32 {
        self.k / 2
    }

    /// Number of half-key hash functions `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of hash tables `L = m(m−1)/2`.
    pub fn l(&self) -> u32 {
        self.m * (self.m - 1) / 2
    }

    /// Total individual hyperplane hashes computed per point, `m·k/2`.
    pub fn num_hashes(&self) -> u32 {
        self.m * self.half_bits()
    }

    /// Buckets per table, `2^k`.
    pub fn buckets_per_table(&self) -> usize {
        1usize << self.k
    }

    /// Buckets per first-level partition, `2^(k/2)`.
    pub fn buckets_per_level(&self) -> usize {
        1usize << self.half_bits()
    }

    /// Query radius `R` (angular distance in `[0, π]`).
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Failure probability `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Seed for hyperplane generation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probability that one random hyperplane hash collides for two unit
    /// vectors at angular distance `t`: `p(t) = 1 − t/π` (Charikar).
    pub fn collision_probability(t: f64) -> f64 {
        (1.0 - t / std::f64::consts::PI).clamp(0.0, 1.0)
    }

    /// Probability a point at distance `t` shares one specific `k/2`-bit
    /// half-key with the query: `q = p(t)^(k/2)`.
    pub fn half_key_collision(&self, t: f64) -> f64 {
        Self::collision_probability(t).powi(self.half_bits() as i32)
    }

    /// Probability a point at distance `t` lands in the query's bucket of
    /// one specific table: `p(t)^k`.
    pub fn table_collision(&self, t: f64) -> f64 {
        Self::collision_probability(t).powi(self.k as i32)
    }

    /// `P'(t, k, m)` — probability a point at distance `t` is reported
    /// (Section 7.2).
    pub fn recall_at(&self, t: f64) -> f64 {
        recall(t, self.k, self.m)
    }

    /// Recall guarantee at the configured radius; by construction of a
    /// selected parameter set this is `≥ 1 − δ`.
    pub fn recall_at_radius(&self) -> f64 {
        self.recall_at(self.radius)
    }

    /// Memory for the static hash tables in bytes: `(L·N + 2^k·L)·4`
    /// (Eq. 7.4).
    pub fn table_memory_bytes(&self, n: usize) -> usize {
        table_memory_bytes(self.k, self.m, n)
    }
}

/// `P'(t, k, m)` for arbitrary `(k, m)` — shared by [`PlshParams`] and the
/// selection loop.
pub fn recall(t: f64, k: u32, m: u32) -> f64 {
    let q = PlshParams::collision_probability(t).powi((k / 2) as i32);
    let miss0 = (1.0 - q).powi(m as i32);
    let miss1 = m as f64 * q * (1.0 - q).powi(m as i32 - 1);
    (1.0 - miss0 - miss1).clamp(0.0, 1.0)
}

/// Static-table memory in bytes for `(k, m)` over `n` points (Eq. 7.4).
pub fn table_memory_bytes(k: u32, m: u32, n: usize) -> usize {
    let l = (m as usize) * (m as usize - 1) / 2;
    (l * n + (1usize << k) * l) * 4
}

/// Builder for [`PlshParams`].
#[derive(Debug, Clone)]
pub struct PlshParamsBuilder {
    dim: u32,
    k: u32,
    m: u32,
    radius: f64,
    delta: f64,
    seed: u64,
}

impl PlshParamsBuilder {
    fn new(dim: u32) -> Self {
        // Paper defaults (Section 8): R = 0.9, δ = 0.1. k and m default to
        // the scaled single-node settings used throughout this repo.
        Self {
            dim,
            k: 14,
            m: 16,
            radius: 0.9,
            delta: 0.1,
            seed: 0x9D2C_5680,
        }
    }

    /// Sets `k`, the bits per table index (must be even, `2..=32`).
    pub fn k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Sets `m`, the number of half-key functions (must be `>= 2`).
    pub fn m(mut self, m: u32) -> Self {
        self.m = m;
        self
    }

    /// Sets the angular query radius `R ∈ (0, π)`.
    pub fn radius(mut self, radius: f64) -> Self {
        self.radius = radius;
        self
    }

    /// Sets the failure probability `δ ∈ (0, 1)`.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the hyperplane seed (reproducibility knob).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and builds the parameter set.
    pub fn build(self) -> Result<PlshParams> {
        if self.dim == 0 {
            return Err(PlshError::InvalidParams(
                "dimensionality D must be > 0".into(),
            ));
        }
        if self.k < 2 || !self.k.is_multiple_of(2) {
            return Err(PlshError::InvalidParams(format!(
                "k must be even and >= 2, got {}",
                self.k
            )));
        }
        if self.k > 32 {
            return Err(PlshError::InvalidParams(format!(
                "k must be <= 32 (half-keys are packed in u32 and tables are \
                 directly indexed by 2^k buckets), got {}",
                self.k
            )));
        }
        if self.m < 2 {
            return Err(PlshError::InvalidParams(format!(
                "m must be >= 2 so that L = m(m-1)/2 >= 1, got {}",
                self.m
            )));
        }
        if self.m > 4096 {
            return Err(PlshError::InvalidParams(format!(
                "m = {} is unreasonably large (L would be {})",
                self.m,
                self.m as u64 * (self.m as u64 - 1) / 2
            )));
        }
        if !(self.radius > 0.0 && self.radius < std::f64::consts::PI) {
            return Err(PlshError::InvalidParams(format!(
                "radius must lie in (0, pi), got {}",
                self.radius
            )));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(PlshError::InvalidParams(format!(
                "delta must lie in (0, 1), got {}",
                self.delta
            )));
        }
        Ok(PlshParams {
            dim: self.dim,
            k: self.k,
            m: self.m,
            radius: self.radius,
            delta: self.delta,
            seed: self.seed,
        })
    }
}

/// Per-operation cost weights (in CPU cycles) used to score candidate
/// parameter pairs; see [`crate::model::PerformanceModel::cost_weights`].
#[derive(Debug, Clone, Copy)]
pub struct CostWeights {
    /// Cycles charged per hash-table collision (Step Q2).
    pub cycles_per_collision: f64,
    /// Cycles charged per unique candidate (Step Q3).
    pub cycles_per_unique: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Paper Section 7.1 on the evaluation machine: T_Q2 = 1.4
        // cycles/collision (11 ops over 8 cores), T_Q3 = 21.8 cycles/unique
        // (256 bytes at 12.3 bytes/cycle, plus ~1 cycle of compute).
        Self {
            cycles_per_collision: 1.4,
            cycles_per_unique: 21.8,
        }
    }
}

/// One `(k, m)` candidate examined during selection.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ParamCandidate {
    /// Bits per table index.
    pub k: u32,
    /// Half-key function count (smallest satisfying the recall constraint).
    pub m: u32,
    /// Table count `m(m−1)/2`.
    pub l: u32,
    /// `P'(R, k, m)`.
    pub recall_at_radius: f64,
    /// Expected collisions per query, `E[#collisions]` (Eq. 7.1).
    pub expected_collisions: f64,
    /// Expected unique candidates per query, `E[#unique]` (Eq. 7.2).
    pub expected_unique: f64,
    /// Estimated query cost in cycles.
    pub estimated_cost_cycles: f64,
    /// Static-table memory in bytes (Eq. 7.4).
    pub memory_bytes: usize,
    /// Whether the candidate fits the memory budget.
    pub feasible: bool,
}

/// Inputs to parameter selection.
#[derive(Debug, Clone)]
pub struct SelectionInput<'a> {
    /// Dimensionality of the data.
    pub dim: u32,
    /// Number of points the node will hold (`N`).
    pub n: usize,
    /// Memory budget for the static tables, in bytes (Eq. 7.4).
    pub memory_bytes: usize,
    /// Query radius `R`.
    pub radius: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Angular distances of sampled `(query, point)` pairs; the paper uses
    /// 1000 random queries × 1000 random points (Section 7.3).
    pub sample_distances: &'a [f32],
    /// Per-operation cost weights.
    pub cost: CostWeights,
    /// Largest `k` to enumerate (paper: 40, or lower when memory-bound).
    pub k_max: u32,
    /// Seed carried into the resulting [`PlshParams`].
    pub seed: u64,
}

/// Result of parameter selection: the chosen parameters plus every
/// candidate examined (the data behind Figure 7).
#[derive(Debug, Clone)]
pub struct ParamSelection {
    /// The cheapest feasible parameter set.
    pub chosen: PlshParams,
    /// All candidates in enumeration order (one per `k`).
    pub candidates: Vec<ParamCandidate>,
}

impl ParamSelection {
    /// Runs the Section 7.3 selection procedure.
    ///
    /// For each even `k` up to `k_max`, the smallest `m` with
    /// `P'(R, k, m) ≥ 1 − δ` is located; the candidate's expected collision
    /// and unique-candidate counts are estimated from the distance sample;
    /// infeasible (memory) candidates are kept in the report but excluded
    /// from the final choice.
    pub fn select(input: &SelectionInput<'_>) -> Result<ParamSelection> {
        if input.sample_distances.is_empty() {
            return Err(PlshError::InvalidParams(
                "parameter selection needs a non-empty distance sample".into(),
            ));
        }
        if !(input.radius > 0.0 && input.radius < std::f64::consts::PI) {
            return Err(PlshError::InvalidParams(
                "radius must lie in (0, pi)".into(),
            ));
        }
        let mut candidates = Vec::new();
        let mut best: Option<(f64, &ParamCandidate)> = None;

        let ks: Vec<u32> = (1..=input.k_max / 2).map(|h| h * 2).collect();
        for &k in &ks {
            let Some(m) = smallest_m(input.radius, input.delta, k, 4096) else {
                continue; // No m up to the cap meets the recall bound.
            };
            let l = m * (m - 1) / 2;
            let (e_coll, e_uniq) = estimate_candidates(input.sample_distances, input.n, k, m);
            let cost =
                input.cost.cycles_per_collision * e_coll + input.cost.cycles_per_unique * e_uniq;
            let mem = table_memory_bytes(k, m, input.n);
            candidates.push(ParamCandidate {
                k,
                m,
                l,
                recall_at_radius: recall(input.radius, k, m),
                expected_collisions: e_coll,
                expected_unique: e_uniq,
                estimated_cost_cycles: cost,
                memory_bytes: mem,
                feasible: mem <= input.memory_bytes,
            });
        }
        for cand in &candidates {
            if cand.feasible {
                match best {
                    Some((best_cost, _)) if best_cost <= cand.estimated_cost_cycles => {}
                    _ => best = Some((cand.estimated_cost_cycles, cand)),
                }
            }
        }
        let Some((_, chosen)) = best else {
            return Err(PlshError::NoFeasibleParams(format!(
                "no (k <= {}, m) pair meets recall >= {} within {} bytes for N = {}",
                input.k_max,
                1.0 - input.delta,
                input.memory_bytes,
                input.n
            )));
        };
        let chosen = PlshParams::builder(input.dim)
            .k(chosen.k)
            .m(chosen.m)
            .radius(input.radius)
            .delta(input.delta)
            .seed(input.seed)
            .build()?;
        Ok(ParamSelection { chosen, candidates })
    }
}

/// Smallest `m >= 2` with `P'(R, k, m) >= 1 - delta`, or `None` up to `cap`.
///
/// `P'` is monotonically non-decreasing in `m` (more half-key functions can
/// only help), so a linear scan terminates at the first hit.
pub fn smallest_m(radius: f64, delta: f64, k: u32, cap: u32) -> Option<u32> {
    let target = 1.0 - delta;
    (2..=cap).find(|&m| recall(radius, k, m) >= target)
}

/// Monte-Carlo estimates of `E[#collisions]` and `E[#unique]` per query
/// (Eqs. 7.1 / 7.2) from a sample of query–point angular distances.
///
/// Each sampled distance `t` stands for `N / sample_len` real points, so
/// the estimator scales the sample means by `N`.
pub fn estimate_candidates(sample_distances: &[f32], n: usize, k: u32, m: u32) -> (f64, f64) {
    let l = (m as f64) * (m as f64 - 1.0) / 2.0;
    let mut coll = 0.0f64;
    let mut uniq = 0.0f64;
    for &t in sample_distances {
        let p = PlshParams::collision_probability(t as f64);
        coll += p.powi(k as i32);
        uniq += recall(t as f64, k, m);
    }
    let scale = n as f64 / sample_distances.len() as f64;
    (l * coll * scale, uniq * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_derived_quantities() {
        let p = PlshParams::builder(50_000).build().unwrap();
        assert_eq!(p.dim(), 50_000);
        assert_eq!(p.k(), 14);
        assert_eq!(p.half_bits(), 7);
        assert_eq!(p.m(), 16);
        assert_eq!(p.l(), 120);
        assert_eq!(p.num_hashes(), 112);
        assert_eq!(p.buckets_per_table(), 1 << 14);
        assert_eq!(p.buckets_per_level(), 1 << 7);
    }

    #[test]
    fn builder_rejects_bad_params() {
        assert!(PlshParams::builder(0).build().is_err());
        assert!(PlshParams::builder(10).k(3).build().is_err());
        assert!(PlshParams::builder(10).k(0).build().is_err());
        assert!(PlshParams::builder(10).k(34).build().is_err());
        assert!(PlshParams::builder(10).m(1).build().is_err());
        assert!(PlshParams::builder(10).radius(0.0).build().is_err());
        assert!(PlshParams::builder(10).radius(4.0).build().is_err());
        assert!(PlshParams::builder(10).delta(0.0).build().is_err());
        assert!(PlshParams::builder(10).delta(1.0).build().is_err());
    }

    #[test]
    fn collision_probability_endpoints() {
        assert!((PlshParams::collision_probability(0.0) - 1.0).abs() < 1e-12);
        assert!(PlshParams::collision_probability(std::f64::consts::PI).abs() < 1e-12);
        let half = PlshParams::collision_probability(std::f64::consts::FRAC_PI_2);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_monotonic_in_m_and_decreasing_in_t() {
        for k in [4u32, 8, 14, 16] {
            let mut prev = 0.0;
            for m in 2..60 {
                let r = recall(0.9, k, m);
                assert!(r >= prev - 1e-12, "recall must not decrease with m");
                prev = r;
            }
        }
        let mut prev = 1.0;
        for i in 1..30 {
            let t = i as f64 * 0.1;
            let r = recall(t, 14, 16);
            assert!(r <= prev + 1e-12, "recall must not increase with distance");
            prev = r;
        }
    }

    #[test]
    fn paper_parameters_recall_value() {
        // Evaluating the paper's own P' formula at its chosen setting
        // (k = 16, m = 40, R = 0.9) gives ≈ 0.76, not ≥ 0.9 — the paper's
        // reported 92% accuracy is *empirical* recall over real neighbors,
        // which sit mostly well inside the radius where P' is much higher
        // (see EXPERIMENTS.md). Pin the formula's actual value so any
        // change to the math is caught.
        let r = recall(0.9, 16, 40);
        assert!((0.74..0.78).contains(&r), "P'(0.9, 16, 40) = {r}");
        // Recall deep inside the radius is near-perfect, which is what
        // drives the high empirical accuracy.
        assert!(recall(0.3, 16, 40) > 0.999);
    }

    #[test]
    fn smallest_m_is_minimal() {
        let m = smallest_m(0.9, 0.1, 16, 4096).unwrap();
        assert!(recall(0.9, 16, m) >= 0.9);
        assert!(recall(0.9, 16, m - 1) < 0.9);
        // The formula requires m = 57 for k = 16 at R = 0.9, δ = 0.1.
        assert_eq!(m, 57);
    }

    #[test]
    fn memory_formula_matches_paper_example() {
        // Paper Section 5.3: N = 10M, L = 780 → hash tables ≈ 31 GB
        // (L·N·4 bytes dominating).
        let bytes = table_memory_bytes(16, 40, 10_000_000);
        let gb = bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((29.0..33.0).contains(&gb), "{gb} GB");
    }

    #[test]
    fn estimate_scales_with_n() {
        let dists = vec![0.3f32, 0.8, 1.2, 2.0];
        let (c1, u1) = estimate_candidates(&dists, 1000, 8, 6);
        let (c2, u2) = estimate_candidates(&dists, 2000, 8, 6);
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
        assert!((u2 / u1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unique_never_exceeds_collisions_expectation() {
        // Each unique candidate collides at least twice (the P' event needs
        // >= 2 half-key collisions) or once... in fact E[unique] <= N and
        // E[collisions] can exceed N; sanity: both non-negative and unique <= n.
        let dists: Vec<f32> = (0..100).map(|i| 0.03 * i as f32).collect();
        let (c, u) = estimate_candidates(&dists, 5000, 14, 16);
        assert!(c >= 0.0 && u >= 0.0);
        assert!(u <= 5000.0);
    }

    #[test]
    fn selection_picks_feasible_minimum() {
        // A sample with mass near the radius and far away.
        let dists: Vec<f32> = (0..1000).map(|i| 0.5 + 2.0 * (i as f32 / 1000.0)).collect();
        let input = SelectionInput {
            dim: 1000,
            n: 100_000,
            memory_bytes: 512 << 20,
            radius: 0.9,
            delta: 0.1,
            sample_distances: &dists,
            cost: CostWeights::default(),
            k_max: 20,
            seed: 3,
        };
        let sel = ParamSelection::select(&input).unwrap();
        assert!(sel.chosen.recall_at_radius() >= 0.9);
        assert!(sel.chosen.table_memory_bytes(100_000) <= 512 << 20);
        assert!(!sel.candidates.is_empty());
        // Chosen must be the min-cost feasible candidate.
        let min_cost = sel
            .candidates
            .iter()
            .filter(|c| c.feasible)
            .map(|c| c.estimated_cost_cycles)
            .fold(f64::INFINITY, f64::min);
        let chosen_cand = sel
            .candidates
            .iter()
            .find(|c| c.k == sel.chosen.k() && c.m == sel.chosen.m())
            .unwrap();
        assert!((chosen_cand.estimated_cost_cycles - min_cost).abs() < 1e-9);
    }

    #[test]
    fn selection_fails_without_memory() {
        let dists = vec![1.0f32; 100];
        let input = SelectionInput {
            dim: 1000,
            n: 10_000_000,
            memory_bytes: 1024, // absurdly small
            radius: 0.9,
            delta: 0.1,
            sample_distances: &dists,
            cost: CostWeights::default(),
            k_max: 20,
            seed: 3,
        };
        assert!(matches!(
            ParamSelection::select(&input).unwrap_err(),
            PlshError::NoFeasibleParams(_)
        ));
    }

    #[test]
    fn selection_rejects_empty_sample() {
        let input = SelectionInput {
            dim: 10,
            n: 100,
            memory_bytes: 1 << 30,
            radius: 0.9,
            delta: 0.1,
            sample_distances: &[],
            cost: CostWeights::default(),
            k_max: 16,
            seed: 0,
        };
        assert!(ParamSelection::select(&input).is_err());
    }
}
