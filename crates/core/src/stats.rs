//! Query statistics and timing helpers.
//!
//! The performance model (Section 7) is driven by two per-query quantities:
//! `#collisions` — bucket entries read across all `L` tables including
//! duplicates — and `#unique` — distinct candidates whose distance is
//! actually computed. The query pipeline records both, plus the match
//! count, so experiments can report the same columns as Table 2 and
//! validate the model (Figure 6).

use std::time::{Duration, Instant};

/// Per-query counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct QueryStats {
    /// Bucket entries read over all tables (with duplicates) — the
    /// `#collisions` of Eq. 7.1.
    pub collisions: u64,
    /// Unique candidates after duplicate elimination — the `#unique` of
    /// Eq. 7.2.
    pub unique_candidates: u64,
    /// Sparse dot products evaluated (distance computations; equals
    /// `unique_candidates` minus deleted entries skipped).
    pub distance_computations: u64,
    /// Neighbors within the radius.
    pub matches: u64,
}

impl QueryStats {
    /// Accumulates another query's counters into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.collisions += other.collisions;
        self.unique_candidates += other.unique_candidates;
        self.distance_computations += other.distance_computations;
        self.matches += other.matches;
    }
}

/// Aggregated counters and wall time for a query batch.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct BatchStats {
    /// Number of queries in the batch.
    pub queries: u64,
    /// Summed per-query counters.
    pub totals: QueryStats,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchStats {
    /// Mean collisions per query.
    pub fn avg_collisions(&self) -> f64 {
        ratio(self.totals.collisions, self.queries)
    }

    /// Mean unique candidates per query.
    pub fn avg_unique(&self) -> f64 {
        ratio(self.totals.unique_candidates, self.queries)
    }

    /// Mean distance computations per query (the Table 2 column).
    pub fn avg_distance_computations(&self) -> f64 {
        ratio(self.totals.distance_computations, self.queries)
    }

    /// Mean matches per query.
    pub fn avg_matches(&self) -> f64 {
        ratio(self.totals.matches, self.queries)
    }

    /// Mean latency per query.
    pub fn avg_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.queries as u32
        }
    }

    /// Queries per second over the batch.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A tiny stopwatch for experiment harnesses.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as a float.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts the stopwatch, returning the previous elapsed time.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = QueryStats {
            collisions: 10,
            unique_candidates: 5,
            distance_computations: 5,
            matches: 1,
        };
        let b = QueryStats {
            collisions: 3,
            unique_candidates: 2,
            distance_computations: 2,
            matches: 0,
        };
        a.merge(&b);
        assert_eq!(a.collisions, 13);
        assert_eq!(a.unique_candidates, 7);
        assert_eq!(a.distance_computations, 7);
        assert_eq!(a.matches, 1);
    }

    #[test]
    fn batch_averages() {
        let b = BatchStats {
            queries: 4,
            totals: QueryStats {
                collisions: 40,
                unique_candidates: 20,
                distance_computations: 18,
                matches: 8,
            },
            elapsed: Duration::from_millis(8),
        };
        assert_eq!(b.avg_collisions(), 10.0);
        assert_eq!(b.avg_unique(), 5.0);
        assert_eq!(b.avg_distance_computations(), 4.5);
        assert_eq!(b.avg_matches(), 2.0);
        assert_eq!(b.avg_latency(), Duration::from_millis(2));
        assert!((b.throughput_qps() - 500.0).abs() < 1.0);
    }

    #[test]
    fn zero_queries_safe() {
        let b = BatchStats::default();
        assert_eq!(b.avg_collisions(), 0.0);
        assert_eq!(b.avg_latency(), Duration::ZERO);
        assert_eq!(b.throughput_qps(), 0.0);
    }

    #[test]
    fn stopwatch_runs_forward() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_ms() >= 1.0);
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(1));
        assert!(sw.elapsed() <= lap + Duration::from_millis(50));
    }
}
