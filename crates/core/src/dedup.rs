//! Bitvector duplicate elimination (paper Section 5.2.1).
//!
//! Step Q2 of the query pipeline merges the buckets of all `L` tables; a
//! point colliding with the query in several tables appears several times,
//! and computing its distance repeatedly is wasted work. The paper compares
//! sorting, tree sets, and a histogram, and picks the histogram realized as
//! a **bitvector over the point-id space** `0..N` — `O(1)` per collision
//! with a tiny constant, and small enough (1.25 MB for N = 10 M) to stay in
//! cache.
//!
//! [`CandidateSet`] is that bitvector plus the discovered-candidate list
//! used to (a) clear only the touched words after a query, keeping the
//! per-query cost proportional to the candidates rather than to `N`, and
//! (b) optionally extract a **sorted** unique-candidate array by scanning
//! the bitvector — the array that makes the Step Q3 data accesses
//! predictable and prefetchable (Section 5.2.2).

/// A reusable bitvector over point ids with candidate tracking.
///
/// ```
/// use plsh_core::dedup::CandidateSet;
///
/// let mut set = CandidateSet::new(1000);
/// assert!(set.insert(42));
/// assert!(!set.insert(42), "duplicates are filtered in O(1)");
/// set.insert(7);
/// let mut sorted = Vec::new();
/// set.extract_sorted(&mut sorted);
/// assert_eq!(sorted, vec![7, 42]);
/// set.clear(); // O(candidates), not O(capacity)
/// assert!(set.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CandidateSet {
    words: Vec<u64>,
    /// Unique ids in discovery order (also the clear list).
    candidates: Vec<u32>,
    /// Smallest id the bitvector can represent: bit `i` covers id
    /// `base + i`. A sliding-window engine compacts its retired prefix
    /// away, so ids keep growing while the *live span* stays bounded —
    /// rebasing keeps the bitvector sized to the span, not the lifetime.
    base: u32,
}

impl CandidateSet {
    /// Creates a set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0u64; capacity.div_ceil(64)],
            candidates: Vec::new(),
            base: 0,
        }
    }

    /// Re-anchors the bitvector at `base`: subsequent inserts cover ids
    /// `base..base + capacity`. Must be called on an empty (cleared) set.
    #[inline]
    pub fn rebase(&mut self, base: u32) {
        debug_assert!(self.candidates.is_empty(), "rebase of a non-empty set");
        self.base = base;
    }

    /// The id bit 0 covers.
    #[inline]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Capacity in ids.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Grows the set to hold ids `0..capacity` (never shrinks).
    pub fn ensure_capacity(&mut self, capacity: usize) {
        let need = capacity.div_ceil(64);
        if need > self.words.len() {
            self.words.resize(need, 0);
        }
    }

    /// Inserts `id`; returns `true` iff it was not yet present.
    ///
    /// This is the paper's 11-operation kernel: locate the word, test the
    /// bit, set it if clear.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        debug_assert!(id >= self.base, "id {id} below base {}", self.base);
        let off = id - self.base;
        let word = (off >> 6) as usize;
        let bit = 1u64 << (off & 63);
        debug_assert!(word < self.words.len(), "id {id} beyond capacity");
        let w = self.words[word];
        if w & bit != 0 {
            return false;
        }
        self.words[word] = w | bit;
        self.candidates.push(id);
        true
    }

    /// True iff `id` has been inserted since the last clear.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let off = id - self.base;
        let word = (off >> 6) as usize;
        self.words[word] & (1u64 << (off & 63)) != 0
    }

    /// Number of unique ids inserted.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when no ids are present.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Unique ids in discovery order.
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    /// Scans the bitvector and writes the unique ids **in sorted order**
    /// into `out` (cleared first); returns how many were written.
    ///
    /// This is the Section 5.2.2 extraction pass: a linear scan of the
    /// words whose output is inherently sorted and duplicate-free, enabling
    /// software prefetch of the succeeding data items during Step Q3.
    pub fn extract_sorted(&self, out: &mut Vec<u32>) -> usize {
        out.clear();
        out.reserve(self.candidates.len());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push(self.base + (wi * 64) as u32 + b);
                bits &= bits - 1;
            }
        }
        debug_assert_eq!(out.len(), self.candidates.len());
        out.len()
    }

    /// Clears the set in `O(candidates)` by zeroing only touched words.
    pub fn clear(&mut self) {
        for &id in &self.candidates {
            self.words[((id - self.base) >> 6) as usize] = 0;
        }
        self.candidates.clear();
    }

    /// Bytes held by the bitvector (the paper's 1.25 MB for N = 10 M).
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_dedups() {
        let mut s = CandidateSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(64));
        assert!(s.insert(63));
        assert_eq!(s.len(), 3);
        assert!(s.contains(5) && s.contains(63) && s.contains(64));
        assert!(!s.contains(6));
        assert_eq!(s.candidates(), &[5, 64, 63]);
    }

    #[test]
    fn extract_sorted_is_sorted_unique() {
        let mut s = CandidateSet::new(256);
        for id in [200u32, 3, 64, 3, 199, 0, 255] {
            s.insert(id);
        }
        let mut out = Vec::new();
        let n = s.extract_sorted(&mut out);
        assert_eq!(n, 6);
        assert_eq!(out, vec![0, 3, 64, 199, 200, 255]);
    }

    #[test]
    fn clear_only_touches_candidates_but_fully_resets() {
        let mut s = CandidateSet::new(1024);
        for id in 0..100u32 {
            s.insert(id * 7 % 1024);
        }
        s.clear();
        assert!(s.is_empty());
        for id in 0..1024u32 {
            assert!(!s.contains(id), "id {id} survived clear");
        }
        // Reusable.
        assert!(s.insert(42));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn capacity_boundary_ids() {
        let mut s = CandidateSet::new(65); // rounds up to 128 bits
        assert!(s.capacity() >= 65);
        assert!(s.insert(64));
        assert!(s.contains(64));
        s.clear();
        assert!(!s.contains(64));
    }

    #[test]
    fn ensure_capacity_grows() {
        let mut s = CandidateSet::new(64);
        s.insert(10);
        s.ensure_capacity(1000);
        assert!(s.capacity() >= 1000);
        assert!(s.contains(10), "growth must preserve contents");
        s.insert(999);
        assert!(s.contains(999));
    }

    #[test]
    fn agrees_with_reference_set() {
        let mut s = CandidateSet::new(4096);
        let mut reference = BTreeSet::new();
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let id = (x >> 33) as u32 % 4096;
            assert_eq!(s.insert(id), reference.insert(id));
        }
        let mut out = Vec::new();
        s.extract_sorted(&mut out);
        let expect: Vec<u32> = reference.into_iter().collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn rebase_covers_a_sliding_span() {
        let mut s = CandidateSet::new(128);
        s.rebase(1_000_000);
        assert!(s.insert(1_000_000));
        assert!(s.insert(1_000_127));
        assert!(!s.insert(1_000_000));
        assert!(s.contains(1_000_127));
        assert_eq!(s.candidates(), &[1_000_000, 1_000_127]);
        let mut out = Vec::new();
        s.extract_sorted(&mut out);
        assert_eq!(out, vec![1_000_000, 1_000_127]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(1_000_000));
        s.rebase(2_000_000);
        assert!(s.insert(2_000_001));
        assert_eq!(s.candidates(), &[2_000_001]);
    }

    #[test]
    fn memory_matches_paper_scale() {
        // N = 10M -> about 1.25 MB of bitvector (paper Section 5.2.1).
        let s = CandidateSet::new(10_000_000);
        let mb = s.memory_bytes() as f64 / (1024.0 * 1024.0);
        assert!((1.1..1.3).contains(&mb), "{mb} MB");
    }
}
