//! Error type shared by every fallible PLSH operation.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PlshError>;

/// Errors produced by PLSH configuration and data-path operations.
///
/// The hot query/insert paths are infallible by construction (inputs are
/// validated when vectors and parameters are created), so this type shows up
/// only at configuration boundaries and capacity limits.
#[derive(Debug, Clone, PartialEq)]
pub enum PlshError {
    /// Parameter combination rejected by [`crate::PlshParamsBuilder::build`].
    InvalidParams(String),
    /// A vector used a dimension index `>= dim` of the index it was given to.
    DimensionOutOfRange {
        /// Offending dimension index.
        index: u32,
        /// Dimensionality `D` of the index.
        dim: u32,
    },
    /// A vector had no non-zero components (the paper drops "0-length
    /// queries" — tweets made entirely of out-of-vocabulary tokens).
    EmptyVector,
    /// A vector contained a non-finite or non-positive norm contribution.
    NotNormalizable,
    /// Dimension indices were not strictly increasing.
    UnsortedIndices,
    /// Insert rejected because the node is at capacity `C`; the caller
    /// (coordinator) must retire old data first (paper Section 6).
    CapacityExceeded {
        /// Configured node capacity.
        capacity: usize,
    },
    /// Parameter selection found no `(k, m)` pair meeting the recall and
    /// memory constraints (Equations 7.3 / 7.4).
    NoFeasibleParams(String),
    /// An I/O or decode failure while saving or loading a snapshot. The
    /// message is carried as a string so the error stays `Clone`-able and
    /// comparable like every other variant.
    Io(String),
    /// The engine entered degraded read-only mode after a persistent
    /// persistence failure (WAL, segment, or manifest I/O kept failing
    /// through retries): queries keep answering off the pinned epoch, but
    /// every write returns this until `Engine::heal` resynchronizes the
    /// directory. The message is the underlying I/O error.
    Degraded(String),
}

impl From<std::io::Error> for PlshError {
    fn from(e: std::io::Error) -> Self {
        PlshError::Io(e.to_string())
    }
}

impl fmt::Display for PlshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlshError::InvalidParams(msg) => write!(f, "invalid PLSH parameters: {msg}"),
            PlshError::DimensionOutOfRange { index, dim } => {
                write!(f, "dimension index {index} out of range for D={dim}")
            }
            PlshError::EmptyVector => write!(f, "vector has no non-zero components"),
            PlshError::NotNormalizable => {
                write!(f, "vector cannot be normalized to a unit vector")
            }
            PlshError::UnsortedIndices => {
                write!(f, "sparse indices must be strictly increasing")
            }
            PlshError::CapacityExceeded { capacity } => {
                write!(
                    f,
                    "node capacity of {capacity} points exceeded; retire data first"
                )
            }
            PlshError::NoFeasibleParams(msg) => {
                write!(f, "no feasible (k, m) parameters: {msg}")
            }
            PlshError::Io(msg) => write!(f, "snapshot I/O failed: {msg}"),
            PlshError::Degraded(msg) => {
                write!(f, "engine degraded to read-only (writes rejected): {msg}")
            }
        }
    }
}

impl std::error::Error for PlshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PlshError::DimensionOutOfRange { index: 9, dim: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = PlshError::CapacityExceeded { capacity: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PlshError::EmptyVector);
    }
}
