//! Sparse vectors and CRS (Compressed Row Storage) matrices.
//!
//! PLSH represents each document as a sparse unit vector in the vocabulary
//! space (IDF-weighted term scores, paper Section 8) and stores the whole
//! corpus in CRS form (Section 5.1.1) so that hashing is a sparse-times-
//! dense matrix product with sequential access to the sparse side.
//!
//! Distances are angular: `t(p, q) = acos(p·q)` for unit vectors, with the
//! collision probability of the sign-random-projection family being
//! `p(t) = 1 − t/π` (Section 3).

use crate::error::{PlshError, Result};

/// A sparse vector with strictly increasing dimension indices.
///
/// Invariants (enforced at construction):
/// * `indices` strictly increasing, one `f32` value per index;
/// * at least one non-zero component;
/// * all values finite.
///
/// Most callers want [`SparseVector::unit`], which also normalizes to unit
/// Euclidean length — the representation assumed by the angular-distance
/// kernels and by the LSH collision math.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseVector {
    /// Builds a vector from `(dimension, value)` pairs in any order.
    ///
    /// Pairs with duplicate dimensions are combined by summation; pairs
    /// whose combined value is exactly zero are dropped.
    pub fn new(mut pairs: Vec<(u32, f32)>) -> Result<Self> {
        if pairs.iter().any(|(_, v)| !v.is_finite()) {
            return Err(PlshError::NotNormalizable);
        }
        pairs.sort_unstable_by_key(|&(d, _)| d);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f32> = Vec::with_capacity(pairs.len());
        for (d, v) in pairs {
            match indices.last() {
                Some(&last) if last == d => {
                    *values.last_mut().expect("values parallel to indices") += v;
                }
                _ => {
                    indices.push(d);
                    values.push(v);
                }
            }
        }
        // Drop exact zeros produced by cancellation.
        let mut keep_idx = Vec::with_capacity(indices.len());
        let mut keep_val = Vec::with_capacity(values.len());
        for (d, v) in indices.into_iter().zip(values) {
            if v != 0.0 {
                keep_idx.push(d);
                keep_val.push(v);
            }
        }
        if keep_idx.is_empty() {
            return Err(PlshError::EmptyVector);
        }
        Ok(Self {
            indices: keep_idx,
            values: keep_val,
        })
    }

    /// Builds a **unit** vector from `(dimension, value)` pairs.
    pub fn unit(pairs: Vec<(u32, f32)>) -> Result<Self> {
        let mut v = Self::new(pairs)?;
        v.normalize()?;
        Ok(v)
    }

    /// Builds a vector from parallel, already strictly-increasing arrays.
    ///
    /// This is the zero-copy path used by corpus loaders; it validates the
    /// ordering invariant instead of repairing it.
    pub fn from_sorted(indices: Vec<u32>, values: Vec<f32>) -> Result<Self> {
        if indices.is_empty() {
            return Err(PlshError::EmptyVector);
        }
        if indices.len() != values.len() {
            return Err(PlshError::InvalidParams(
                "indices and values must have equal length".into(),
            ));
        }
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PlshError::UnsortedIndices);
        }
        if values.iter().any(|v| !v.is_finite() || *v == 0.0) {
            return Err(PlshError::NotNormalizable);
        }
        Ok(Self { indices, values })
    }

    /// Scales the vector to unit Euclidean length in place.
    pub fn normalize(&mut self) -> Result<()> {
        let norm = self.norm();
        if !norm.is_finite() || norm <= 0.0 {
            return Err(PlshError::NotNormalizable);
        }
        let inv = 1.0 / norm;
        for v in &mut self.values {
            *v *= inv;
        }
        Ok(())
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.values
            .iter()
            .map(|v| (*v as f64).powi(2))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Number of non-zero components (`NNZ` in the paper's cost model).
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sorted dimension indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Values parallel to [`indices`](Self::indices).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Largest dimension index used, or `None` for (impossible) empties.
    pub fn max_index(&self) -> Option<u32> {
        self.indices.last().copied()
    }

    /// Merge-join dot product with another sparse vector.
    ///
    /// This is the "naive" sparse dot product of Section 5.2.3 — iterate one
    /// index array while searching the other — used as the unoptimized
    /// baseline in the Figure 5 ablation.
    pub fn dot(&self, other: &SparseVector) -> f32 {
        dot_sorted(&self.indices, &self.values, &other.indices, &other.values)
    }

    /// Angular distance `acos(p·q) ∈ [0, π]`, assuming both are unit vectors.
    pub fn angular_distance(&self, other: &SparseVector) -> f32 {
        angular_from_dot(self.dot(other))
    }
}

/// Angular distance from a dot product of unit vectors, clamped against
/// floating-point drift outside `[-1, 1]`.
#[inline]
pub fn angular_from_dot(dot: f32) -> f32 {
    dot.clamp(-1.0, 1.0).acos()
}

/// Merge-join dot product over two sorted index/value pairs.
#[inline]
pub fn dot_sorted(ai: &[u32], av: &[f32], bi: &[u32], bv: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    let (mut x, mut y) = (0usize, 0usize);
    while x < ai.len() && y < bi.len() {
        let (da, db) = (ai[x], bi[y]);
        if da == db {
            acc += av[x] * bv[y];
            x += 1;
            y += 1;
        } else if da < db {
            x += 1;
        } else {
            y += 1;
        }
    }
    acc
}

/// A growable CRS (a.k.a. CSR) matrix of sparse rows.
///
/// Row data is stored in three flat arrays (`row_offsets`, `cols`, `vals`),
/// the layout of Duff et al. \[17\] used by the paper for both the corpus
/// and the hashing matrix product. Rows are immutable once pushed; the
/// only mutation is appending (streaming inserts) and truncation
/// (retirement of a node's data).
#[derive(Debug, Clone)]
pub struct CrsMatrix {
    dim: u32,
    row_offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}

impl CrsMatrix {
    /// Creates an empty matrix whose rows live in `0..dim`.
    pub fn new(dim: u32) -> Self {
        Self {
            dim,
            row_offsets: vec![0],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with storage reserved for `rows` rows of
    /// about `nnz_per_row` non-zeros each.
    pub fn with_capacity(dim: u32, rows: usize, nnz_per_row: usize) -> Self {
        let mut m = Self::new(dim);
        m.row_offsets.reserve(rows);
        m.cols.reserve(rows * nnz_per_row);
        m.vals.reserve(rows * nnz_per_row);
        m
    }

    /// Dimensionality `D` of the column space.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of rows (`N`).
    pub fn num_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Total number of stored non-zeros.
    pub fn total_nnz(&self) -> usize {
        self.cols.len()
    }

    /// Mean non-zeros per row (the `NNZ` constant of the cost model).
    pub fn avg_nnz(&self) -> f64 {
        if self.num_rows() == 0 {
            0.0
        } else {
            self.total_nnz() as f64 / self.num_rows() as f64
        }
    }

    /// Appends a row; returns its row index.
    pub fn push(&mut self, row: &SparseVector) -> Result<u32> {
        if let Some(max) = row.max_index() {
            if max >= self.dim {
                return Err(PlshError::DimensionOutOfRange {
                    index: max,
                    dim: self.dim,
                });
            }
        }
        let id = self.num_rows() as u32;
        self.cols.extend_from_slice(row.indices());
        self.vals.extend_from_slice(row.values());
        self.row_offsets.push(self.cols.len());
        Ok(id)
    }

    /// Borrowed view of row `i` as `(indices, values)`.
    #[inline]
    pub fn row(&self, i: u32) -> (&[u32], &[f32]) {
        let lo = self.row_offsets[i as usize];
        let hi = self.row_offsets[i as usize + 1];
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Owned copy of row `i`.
    pub fn row_vector(&self, i: u32) -> SparseVector {
        let (idx, val) = self.row(i);
        SparseVector {
            indices: idx.to_vec(),
            values: val.to_vec(),
        }
    }

    /// Appends every row of `other` (bulk flat-array copy — the corpus
    /// consolidation step of a streaming merge, bound by memory bandwidth
    /// like the table scatter it accompanies).
    pub fn extend_from(&mut self, other: &CrsMatrix) {
        assert_eq!(self.dim, other.dim, "row spaces must match");
        let base = self.cols.len();
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
        self.row_offsets
            .extend(other.row_offsets[1..].iter().map(|o| o + base));
    }

    /// Appends the rows of `other` starting at row `from_row` (the
    /// window-compaction variant of [`extend_from`](Self::extend_from):
    /// a merge that retires an expired prefix copies only the surviving
    /// suffix, still one flat-array copy per buffer).
    pub fn extend_from_range(&mut self, other: &CrsMatrix, from_row: usize) {
        assert_eq!(self.dim, other.dim, "row spaces must match");
        let from_row = from_row.min(other.num_rows());
        let lo = other.row_offsets[from_row];
        let base = self.cols.len();
        self.cols.extend_from_slice(&other.cols[lo..]);
        self.vals.extend_from_slice(&other.vals[lo..]);
        self.row_offsets.extend(
            other.row_offsets[from_row + 1..]
                .iter()
                .map(|o| o - lo + base),
        );
    }

    /// Drops every row with index `>= keep`, retaining storage.
    pub fn truncate(&mut self, keep: usize) {
        if keep >= self.num_rows() {
            return;
        }
        let end = self.row_offsets[keep];
        self.cols.truncate(end);
        self.vals.truncate(end);
        self.row_offsets.truncate(keep + 1);
    }

    /// Removes all rows, retaining storage (node retirement, Section 6).
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Dot product between row `i` and an external sparse vector.
    pub fn dot_row(&self, i: u32, q: &SparseVector) -> f32 {
        let (idx, val) = self.row(i);
        dot_sorted(idx, val, q.indices(), q.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::new(pairs.to_vec()).unwrap()
    }

    #[test]
    fn new_sorts_and_merges_duplicates() {
        let v = sv(&[(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(v.indices(), &[2, 5]);
        assert_eq!(v.values(), &[2.0, 4.0]);
    }

    #[test]
    fn new_drops_cancelled_zeros() {
        let v = sv(&[(1, 1.0), (1, -1.0), (3, 2.0)]);
        assert_eq!(v.indices(), &[3]);
    }

    #[test]
    fn new_rejects_empty_and_nan() {
        assert_eq!(
            SparseVector::new(vec![]).unwrap_err(),
            PlshError::EmptyVector
        );
        assert_eq!(
            SparseVector::new(vec![(0, f32::NAN)]).unwrap_err(),
            PlshError::NotNormalizable
        );
    }

    #[test]
    fn from_sorted_validates() {
        assert!(SparseVector::from_sorted(vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert_eq!(
            SparseVector::from_sorted(vec![1, 1], vec![1.0, 2.0]).unwrap_err(),
            PlshError::UnsortedIndices
        );
        assert_eq!(
            SparseVector::from_sorted(vec![2, 1], vec![1.0, 2.0]).unwrap_err(),
            PlshError::UnsortedIndices
        );
        assert_eq!(
            SparseVector::from_sorted(vec![0], vec![1.0, 2.0]).unwrap_err(),
            PlshError::InvalidParams("indices and values must have equal length".into())
        );
    }

    #[test]
    fn unit_normalizes() {
        let v = SparseVector::unit(vec![(0, 3.0), (1, 4.0)]).unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        assert!((v.values()[0] - 0.6).abs() < 1e-6);
        assert!((v.values()[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn dot_merge_join() {
        let a = sv(&[(0, 1.0), (2, 2.0), (7, 3.0)]);
        let b = sv(&[(2, 5.0), (6, 1.0), (7, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
        // Disjoint supports dot to zero.
        let c = sv(&[(100, 1.0)]);
        assert_eq!(a.dot(&c), 0.0);
    }

    #[test]
    fn angular_distance_identity_and_orthogonal() {
        let a = SparseVector::unit(vec![(0, 1.0)]).unwrap();
        let b = SparseVector::unit(vec![(1, 1.0)]).unwrap();
        assert!(a.angular_distance(&a) < 1e-3);
        assert!((a.angular_distance(&b) - std::f32::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn angular_from_dot_clamps() {
        assert_eq!(angular_from_dot(1.0 + 1e-6), 0.0);
        assert!((angular_from_dot(-1.0 - 1e-6) - std::f32::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn crs_push_and_row_roundtrip() {
        let mut m = CrsMatrix::new(10);
        let a = sv(&[(0, 1.0), (3, 2.0)]);
        let b = sv(&[(9, 5.0)]);
        assert_eq!(m.push(&a).unwrap(), 0);
        assert_eq!(m.push(&b).unwrap(), 1);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.total_nnz(), 3);
        assert_eq!(m.row_vector(0), a);
        assert_eq!(m.row_vector(1), b);
        assert!((m.avg_nnz() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn crs_extend_from_range_copies_the_suffix() {
        let rows = [sv(&[(0, 1.0)]), sv(&[(1, 2.0), (3, 1.0)]), sv(&[(2, 4.0)])];
        let mut src = CrsMatrix::new(8);
        for r in &rows {
            src.push(r).unwrap();
        }
        let mut dst = CrsMatrix::new(8);
        dst.push(&rows[2]).unwrap();
        dst.extend_from_range(&src, 1);
        assert_eq!(dst.num_rows(), 3);
        assert_eq!(dst.row_vector(0), rows[2]);
        assert_eq!(dst.row_vector(1), rows[1]);
        assert_eq!(dst.row_vector(2), rows[2]);
        // Degenerate ranges: whole matrix and empty suffix.
        let mut all = CrsMatrix::new(8);
        all.extend_from_range(&src, 0);
        assert_eq!(all.num_rows(), 3);
        let mut none = CrsMatrix::new(8);
        none.extend_from_range(&src, 3);
        assert_eq!(none.num_rows(), 0);
    }

    #[test]
    fn crs_rejects_out_of_range() {
        let mut m = CrsMatrix::new(4);
        let v = sv(&[(4, 1.0)]);
        assert_eq!(
            m.push(&v).unwrap_err(),
            PlshError::DimensionOutOfRange { index: 4, dim: 4 }
        );
        assert_eq!(m.num_rows(), 0, "failed push must not leave partial state");
        assert_eq!(m.total_nnz(), 0);
    }

    #[test]
    fn crs_truncate_and_clear() {
        let mut m = CrsMatrix::new(10);
        for i in 0..5u32 {
            m.push(&sv(&[(i, 1.0)])).unwrap();
        }
        m.truncate(3);
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.row_vector(2), sv(&[(2, 1.0)]));
        m.truncate(7); // no-op beyond current size
        assert_eq!(m.num_rows(), 3);
        m.clear();
        assert_eq!(m.num_rows(), 0);
        assert_eq!(m.total_nnz(), 0);
        // Matrix is reusable after clear.
        m.push(&sv(&[(1, 1.0)])).unwrap();
        assert_eq!(m.num_rows(), 1);
    }

    #[test]
    fn extend_from_concatenates_rows() {
        let mut a = CrsMatrix::new(10);
        a.push(&sv(&[(0, 1.0), (3, 2.0)])).unwrap();
        let mut b = CrsMatrix::new(10);
        b.push(&sv(&[(9, 5.0)])).unwrap();
        b.push(&sv(&[(1, 1.0), (2, 1.0), (4, 1.0)])).unwrap();
        a.extend_from(&b);
        assert_eq!(a.num_rows(), 3);
        assert_eq!(a.row_vector(0), sv(&[(0, 1.0), (3, 2.0)]));
        assert_eq!(a.row_vector(1), sv(&[(9, 5.0)]));
        assert_eq!(a.row_vector(2), sv(&[(1, 1.0), (2, 1.0), (4, 1.0)]));
        assert_eq!(a.total_nnz(), 6);
        // Appending an empty matrix is a no-op.
        a.extend_from(&CrsMatrix::new(10));
        assert_eq!(a.num_rows(), 3);
    }

    #[test]
    fn dot_row_matches_vector_dot() {
        let mut m = CrsMatrix::new(16);
        let a = sv(&[(0, 0.5), (7, 0.5)]);
        let q = sv(&[(7, 2.0), (9, 1.0)]);
        m.push(&a).unwrap();
        assert_eq!(m.dot_row(0, &q), a.dot(&q));
    }
}
