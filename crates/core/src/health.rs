//! Liveness, degradation, and supervision reporting.
//!
//! Every backend — [`Engine`](crate::engine::Engine),
//! [`StreamingEngine`](crate::streaming::StreamingEngine), the sharded
//! cluster, and the root `plsh::Index` — answers `health()` with the
//! same [`HealthReport`]: is the write path degraded to read-only, how
//! many rows are durable only in the WAL (replay lag on restart), how
//! hard has the persistence layer been retrying, how deep is the ingest
//! backlog, and what state is every supervised background worker in.
//! A server front-end's `/healthz` is a straight serialization of this
//! struct; the chaos suite asserts on it.

/// One supervised background worker (a merge thread, a shard's ingest
/// worker), as seen at the instant of the report.
#[derive(Debug, Clone)]
pub struct WorkerHealth {
    /// Stable worker name, e.g. `merge` or `shard3.ingest`.
    pub name: String,
    /// Whether the worker (or its supervisor) is still able to make
    /// progress. `false` means the supervisor exhausted its restart
    /// budget and gave the worker up.
    pub alive: bool,
    /// Panics the supervisor absorbed and restarted from.
    pub restarts: u64,
    /// Message of the most recent absorbed panic, if any.
    pub last_panic: Option<String>,
    /// The core this worker pinned itself to, when core/shard pinning is
    /// active (`None`: pinning disabled, refused by the kernel, or not
    /// applicable to this worker).
    pub pinned_core: Option<usize>,
}

/// A point-in-time health summary of one backend.
///
/// Aggregating backends (the sharded index, the root `Index`) fold their
/// children's reports with [`absorb`](Self::absorb): flags OR, counters
/// add, worker lists concatenate.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// The engine has entered degraded read-only mode: queries keep
    /// answering off the pinned epoch, writes return
    /// [`PlshError::Degraded`](crate::error::PlshError::Degraded).
    pub degraded: bool,
    /// Why the engine degraded (the persistent I/O error), if it did.
    pub degraded_reason: Option<String>,
    /// Rows durable only in the WAL — not yet sealed into an immutable
    /// segment. This is the replay lag a restart would pay.
    pub wal_lag_rows: usize,
    /// Transient persistence I/O errors absorbed by retry-with-backoff
    /// since the persister attached.
    pub persist_retries: u64,
    /// Ingest rows accepted but not yet applied by a worker (sharded
    /// backends; always 0 on a bare engine).
    pub pending_ingest: u64,
    /// Sealed delta generations waiting for a background merge — the
    /// merge backlog a `/metrics` scrape wants to watch. Grows while
    /// ingest outruns the merger; a large value means query-side delta
    /// probing is doing extra work.
    pub merge_backlog: usize,
    /// Points answerable right now: inside the sliding window (when one
    /// is configured) and not tombstoned.
    pub live_points: usize,
    /// Window-retired rows still physically resident, awaiting the next
    /// compacting merge. Persistently large means retirement is outrunning
    /// merges.
    pub retired_pending_purge: usize,
    /// Resident points beyond what the window spec allows — how far
    /// retirement lags the configured window (0 without a window).
    pub window_lag: usize,
    /// Every supervised background worker.
    pub workers: Vec<WorkerHealth>,
}

impl HealthReport {
    /// `true` when nothing is wrong: not degraded and every worker alive.
    pub fn healthy(&self) -> bool {
        !self.degraded && self.workers.iter().all(|w| w.alive)
    }

    /// Total supervisor restarts across all workers.
    pub fn total_restarts(&self) -> u64 {
        self.workers.iter().map(|w| w.restarts).sum()
    }

    /// Folds a child backend's report into this one, prefixing its
    /// worker names with `prefix` (e.g. `shard3`) so they stay unique.
    pub fn absorb(&mut self, prefix: &str, child: HealthReport) {
        if child.degraded && !self.degraded {
            self.degraded = true;
            self.degraded_reason = child
                .degraded_reason
                .map(|r| format!("{prefix}: {r}"))
                .or(Some(format!("{prefix} degraded")));
        }
        self.wal_lag_rows += child.wal_lag_rows;
        self.persist_retries += child.persist_retries;
        self.pending_ingest += child.pending_ingest;
        self.merge_backlog += child.merge_backlog;
        self.live_points += child.live_points;
        self.retired_pending_purge += child.retired_pending_purge;
        self.window_lag += child.window_lag;
        self.workers.extend(child.workers.into_iter().map(|mut w| {
            w.name = format!("{prefix}.{}", w.name);
            w
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_aggregates_and_prefixes() {
        let mut agg = HealthReport::default();
        agg.absorb(
            "shard0",
            HealthReport {
                degraded: false,
                degraded_reason: None,
                wal_lag_rows: 10,
                persist_retries: 2,
                pending_ingest: 5,
                merge_backlog: 1,
                live_points: 100,
                retired_pending_purge: 7,
                window_lag: 1,
                workers: vec![WorkerHealth {
                    name: "ingest".into(),
                    alive: true,
                    restarts: 1,
                    last_panic: None,
                    pinned_core: Some(0),
                }],
            },
        );
        agg.absorb(
            "shard1",
            HealthReport {
                degraded: true,
                degraded_reason: Some("disk gone".into()),
                wal_lag_rows: 3,
                persist_retries: 0,
                pending_ingest: 0,
                merge_backlog: 2,
                live_points: 50,
                retired_pending_purge: 0,
                window_lag: 0,
                workers: vec![WorkerHealth {
                    name: "ingest".into(),
                    alive: false,
                    restarts: 4,
                    last_panic: Some("boom".into()),
                    pinned_core: None,
                }],
            },
        );
        assert!(agg.degraded);
        assert_eq!(agg.degraded_reason.as_deref(), Some("shard1: disk gone"));
        assert_eq!(agg.wal_lag_rows, 13);
        assert_eq!(agg.persist_retries, 2);
        assert_eq!(agg.pending_ingest, 5);
        assert_eq!(agg.merge_backlog, 3);
        assert_eq!(agg.live_points, 150);
        assert_eq!(agg.retired_pending_purge, 7);
        assert_eq!(agg.window_lag, 1);
        assert_eq!(agg.total_restarts(), 5);
        assert!(!agg.healthy());
        assert_eq!(agg.workers[1].name, "shard1.ingest");
    }

    #[test]
    fn empty_report_is_healthy() {
        assert!(HealthReport::default().healthy());
    }
}
