//! Engine snapshots: save/restore a node's contents to a byte stream.
//!
//! An adoption feature beyond the paper: operators of an in-memory system
//! need warm restarts. A snapshot stores the *inputs* — parameters, corpus
//! rows, static/delta split, deletion tombstones — in a compact
//! little-endian binary layout; on load, sketches and tables are rebuilt
//! deterministically from the stored seed, so the restored engine answers
//! every query identically to the original (tested).
//!
//! ## How sealed generations serialize
//!
//! The streaming engine's in-memory state is segmented — a static epoch
//! plus a list of sealed [`DeltaGeneration`](crate::table::DeltaGeneration)s —
//! but a snapshot deliberately flattens that: it records only the
//! `static_len` split point and every row in global-id order (rows are
//! read out of whichever segment holds them). On restore, the static
//! prefix is re-inserted and merged, and the entire delta suffix is
//! re-inserted as **one** sealed generation. The generation *boundaries*
//! are not preserved — they are an ingest-batching artifact with no effect
//! on answers (tested: all segmentations of the same rows answer
//! identically) — which keeps the format independent of batch sizes and
//! merge timing.
//!
//! Tombstones serialize as two id lists: `deleted` (bits still set in the
//! live bitvector) and `purged` (ids a past merge already evicted from the
//! static tables, bits reclaimed). Restore replays them in that order —
//! purged ids are deleted *before* the restore-merge so the merge purges
//! exactly them, then the still-pending tombstones are applied — so the
//! restored engine reproduces both the answers and the purge accounting of
//! the original.
//!
//! Format (version 3): magic `PLSH` + version, the parameter block, the
//! engine layout (capacity, eta, static length, the sliding-window base
//! and retirement watermark), the CRS corpus as three length-prefixed
//! arrays, the pending-tombstone id list, and the purged-id list. Rows
//! are *resident* rows only: everything a sliding-window engine already
//! compacted away stays gone, and `base` records the global id of the
//! first stored row so ids survive the round trip.

use std::io::{self, Read, Write};

use plsh_parallel::ThreadPool;

use crate::engine::{Engine, EngineConfig};
use crate::error::Result as PlshResult;
use crate::params::PlshParams;
use crate::sparse::SparseVector;

const MAGIC: &[u8; 4] = b"PLSH";
const VERSION: u32 = 3;

/// Everything needed to reconstruct an [`Engine`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// LSH parameters (including the hyperplane seed).
    pub params: PlshParams,
    /// Node capacity `C`.
    pub capacity: u64,
    /// Merge threshold `η`.
    pub eta: f64,
    /// Points in the static structure (the rest live in the delta).
    pub static_len: u64,
    /// Global id of `vectors[0]` — the sliding window's compaction cut at
    /// capture time (0 for engines without a window).
    pub base: u64,
    /// Retirement watermark at capture time (`>= base`): ids below it are
    /// dead by range tombstone, pending physical purge.
    pub retired_below: u64,
    /// All *resident* rows, in insertion order (global ids
    /// `base..base + vectors.len()`).
    pub vectors: Vec<SparseVector>,
    /// Tombstoned point ids whose bits are still set (not yet purged).
    pub deleted: Vec<u32>,
    /// Tombstoned ids already purged from the static tables by a merge.
    pub purged: Vec<u32>,
}

impl Snapshot {
    /// Captures an engine's state — safe to call while other threads keep
    /// inserting and merging: the rows, split point, and tombstone lists
    /// come out of one atomic capture.
    pub fn capture(engine: &Engine) -> Self {
        let (base, static_len, vectors, deleted, purged, retired_below) = engine.capture_state();
        Self {
            params: engine.params().clone(),
            capacity: engine.capacity() as u64,
            eta: engine.config().eta,
            static_len: static_len as u64,
            base: base as u64,
            retired_below: retired_below as u64,
            vectors,
            deleted,
            purged,
        }
    }

    /// Restores an engine that answers identically to the captured one.
    ///
    /// The static/delta split is reproduced exactly: the static prefix is
    /// inserted, the purged ids are tombstoned and a merge purges them
    /// again, then the delta suffix is inserted unmerged (as one sealed
    /// generation) and the pending tombstones are re-applied.
    pub fn restore(&self, pool: &ThreadPool) -> PlshResult<Engine> {
        let config = EngineConfig::new(self.params.clone(), self.capacity as usize)
            .manual_merge()
            .with_eta(self.eta);
        let engine = Engine::new(config, pool)?;
        if self.base > 0 {
            engine.fast_forward_empty(self.base as u32);
        }
        let split = self.static_len as usize;
        if split > 0 {
            engine.insert_batch(&self.vectors[..split], pool)?;
            for &id in &self.purged {
                engine.delete(id);
            }
            engine.merge_delta(pool);
        }
        if split < self.vectors.len() {
            engine.insert_batch(&self.vectors[split..], pool)?;
        }
        for &id in &self.deleted {
            engine.delete(id);
        }
        // Watermark last, with no merge behind it, so the restored
        // engine's compaction state matches the captured one.
        let _ = engine.retire_to(self.retired_below as u32);
        Ok(engine)
    }

    /// Serializes the snapshot.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        put_u32(w, VERSION)?;
        // Parameter block.
        put_u32(w, self.params.dim())?;
        put_u32(w, self.params.k())?;
        put_u32(w, self.params.m())?;
        put_f64(w, self.params.radius())?;
        put_f64(w, self.params.delta())?;
        put_u64(w, self.params.seed())?;
        // Layout block.
        put_u64(w, self.capacity)?;
        put_f64(w, self.eta)?;
        put_u64(w, self.static_len)?;
        put_u64(w, self.base)?;
        put_u64(w, self.retired_below)?;
        // Corpus as CRS: row nnz counts, then flattened indices/values.
        put_u64(w, self.vectors.len() as u64)?;
        for v in &self.vectors {
            put_u32(w, v.nnz() as u32)?;
        }
        for v in &self.vectors {
            for &d in v.indices() {
                put_u32(w, d)?;
            }
            for &x in v.values() {
                put_f32(w, x)?;
            }
        }
        // Tombstones: pending, then purged.
        put_u64(w, self.deleted.len() as u64)?;
        for &id in &self.deleted {
            put_u32(w, id)?;
        }
        put_u64(w, self.purged.len() as u64)?;
        for &id in &self.purged {
            put_u32(w, id)?;
        }
        Ok(())
    }

    /// Deserializes a snapshot, validating every invariant it can.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a PLSH snapshot (bad magic)"));
        }
        let version = get_u32(r)?;
        if version != VERSION {
            return Err(bad(format!("unsupported snapshot version {version}")));
        }
        let dim = get_u32(r)?;
        let k = get_u32(r)?;
        let m = get_u32(r)?;
        let radius = get_f64(r)?;
        let delta = get_f64(r)?;
        let seed = get_u64(r)?;
        let params = PlshParams::builder(dim)
            .k(k)
            .m(m)
            .radius(radius)
            .delta(delta)
            .seed(seed)
            .build()
            .map_err(|e| bad(e.to_string()))?;

        let capacity = get_u64(r)?;
        let eta = get_f64(r)?;
        let static_len = get_u64(r)?;
        let base = get_u64(r)?;
        let retired_below = get_u64(r)?;
        if retired_below < base {
            return Err(bad("retired_below below the compaction base"));
        }

        let n = get_u64(r)? as usize;
        if n as u64 > capacity {
            return Err(bad("snapshot holds more points than its capacity"));
        }
        if static_len > n as u64 {
            return Err(bad("static_len exceeds the point count"));
        }
        if retired_below > base + n as u64 {
            return Err(bad("retired_below beyond the stored id range"));
        }
        let mut nnz = Vec::with_capacity(n);
        for _ in 0..n {
            nnz.push(get_u32(r)? as usize);
        }
        let mut vectors = Vec::with_capacity(n);
        for (row, &count) in nnz.iter().enumerate() {
            let mut indices = Vec::with_capacity(count);
            for _ in 0..count {
                indices.push(get_u32(r)?);
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(get_f32(r)?);
            }
            let v = SparseVector::from_sorted(indices, values)
                .map_err(|e| bad(format!("row {row}: {e}")))?;
            if v.max_index().unwrap_or(0) >= dim {
                return Err(bad(format!("row {row} exceeds dimensionality {dim}")));
            }
            vectors.push(v);
        }
        let d = get_u64(r)? as usize;
        let mut deleted = Vec::with_capacity(d);
        for _ in 0..d {
            let id = get_u32(r)?;
            if (id as u64) < base || id as u64 >= base + n as u64 {
                return Err(bad(format!("tombstone {id} out of range")));
            }
            deleted.push(id);
        }
        let p = get_u64(r)? as usize;
        let mut purged = Vec::with_capacity(p);
        for _ in 0..p {
            let id = get_u32(r)?;
            // Purging only ever happens to ids merged into the static
            // structure.
            if (id as u64) < base || id as u64 >= base + static_len {
                return Err(bad(format!("purged id {id} outside the static prefix")));
            }
            purged.push(id);
        }
        Ok(Self {
            params,
            capacity,
            eta,
            static_len,
            base,
            retired_below,
            vectors,
            deleted,
            purged,
        })
    }
}

impl Engine {
    /// Writes a snapshot of this engine (see [`Snapshot`]).
    pub fn save_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        Snapshot::capture(self).write_to(w)
    }

    /// Restores an engine from a snapshot stream.
    pub fn load_from<R: Read>(r: &mut R, pool: &ThreadPool) -> io::Result<Engine> {
        Snapshot::read_from(r)?
            .restore(pool)
            .map_err(|e| bad(e.to_string()))
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn put_u32<W: Write>(w: &mut W, x: u32) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn put_f32<W: Write>(w: &mut W, x: f32) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn put_f64<W: Write>(w: &mut W, x: f64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn get_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn sample_engine(pool: &ThreadPool) -> Engine {
        let params = PlshParams::builder(64)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(77)
            .build()
            .unwrap();
        let e = Engine::new(
            EngineConfig::new(params, 500).manual_merge().with_eta(0.2),
            pool,
        )
        .unwrap();
        let mut rng = SplitMix64::new(5);
        let mut vs = Vec::new();
        for _ in 0..80 {
            let a = rng.next_below(64) as u32;
            let b = (a + 1 + rng.next_below(63) as u32) % 64;
            vs.push(SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap());
        }
        e.insert_batch(&vs[..50], pool).unwrap();
        e.merge_delta(pool);
        e.insert_batch(&vs[50..], pool).unwrap(); // stays in delta
        e.delete(7);
        e.delete(65);
        e
    }

    #[test]
    fn snapshot_round_trips_bytes() {
        let pool = ThreadPool::new(1);
        let engine = sample_engine(&pool);
        let snap = Snapshot::capture(&engine);
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let back = Snapshot::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn restored_engine_answers_identically() {
        let pool = ThreadPool::new(1);
        let engine = sample_engine(&pool);
        let mut bytes = Vec::new();
        engine.save_to(&mut bytes).unwrap();
        let restored = Engine::load_from(&mut bytes.as_slice(), &pool).unwrap();

        assert_eq!(restored.len(), engine.len());
        assert_eq!(restored.static_len(), engine.static_len());
        assert_eq!(restored.delta_len(), engine.delta_len());
        assert_eq!(
            restored.stats().deleted_points,
            engine.stats().deleted_points
        );
        for id in 0..engine.len() as u32 {
            let q = engine.vector(id).expect("no id was purged");
            let mut a: Vec<u32> = engine.query(&q).iter().map(|h| h.index).collect();
            let mut b: Vec<u32> = restored.query(&q).iter().map(|h| h.index).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "answers diverged for point {id}");
        }
    }

    #[test]
    fn purged_tombstones_round_trip() {
        let pool = ThreadPool::new(1);
        let engine = sample_engine(&pool);
        // Merge everything: both tombstones (7 static, 65 delta) get
        // purged; then tombstone one more point whose delete stays pending.
        engine.merge_delta(&pool);
        engine.delete(20);
        assert_eq!(engine.stats().purged_points, 2);

        let snap = Snapshot::capture(&engine);
        assert_eq!(snap.purged, vec![7, 65]);
        assert_eq!(snap.deleted, vec![20]);
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let restored = Snapshot::read_from(&mut bytes.as_slice())
            .unwrap()
            .restore(&pool)
            .unwrap();
        assert_eq!(restored.stats().purged_points, engine.stats().purged_points);
        assert_eq!(
            restored.stats().deleted_points,
            engine.stats().deleted_points
        );
        for id in [7u32, 65, 20] {
            assert!(restored.is_deleted(id));
            // Purged ids no longer hand out their (retired) rows; the
            // snapshot still carries them, so probe with those.
            if snap.purged.contains(&id) {
                assert_eq!(engine.vector(id), None);
            }
            let q = snap.vectors[id as usize].clone();
            assert!(restored.query(&q).iter().all(|h| h.index != id));
        }
    }

    #[test]
    fn empty_engine_round_trips() {
        let pool = ThreadPool::new(1);
        let params = PlshParams::builder(16)
            .k(4)
            .m(4)
            .radius(0.9)
            .seed(1)
            .build()
            .unwrap();
        let engine = Engine::new(EngineConfig::new(params, 10), &pool).unwrap();
        let mut bytes = Vec::new();
        engine.save_to(&mut bytes).unwrap();
        let restored = Engine::load_from(&mut bytes.as_slice(), &pool).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let pool = ThreadPool::new(1);
        let engine = sample_engine(&pool);
        let mut bytes = Vec::new();
        engine.save_to(&mut bytes).unwrap();

        // Bad magic.
        let mut junk = bytes.clone();
        junk[0] = b'X';
        assert!(Snapshot::read_from(&mut junk.as_slice()).is_err());

        // Bad version.
        let mut junk = bytes.clone();
        junk[4] = 99;
        assert!(Snapshot::read_from(&mut junk.as_slice()).is_err());

        // Truncation at every prefix must error, never panic.
        for cut in [5usize, 20, 60, bytes.len() - 3] {
            let mut slice = &bytes[..cut];
            assert!(Snapshot::read_from(&mut slice).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn tombstone_out_of_range_is_rejected() {
        let pool = ThreadPool::new(1);
        let engine = sample_engine(&pool);
        let mut snap = Snapshot::capture(&engine);
        snap.deleted.push(10_000);
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        assert!(Snapshot::read_from(&mut bytes.as_slice()).is_err());
    }
}
