//! Deterministic random number generation for hyperplane construction.
//!
//! The LSH hash family needs Gaussian-distributed hyperplane components
//! `a ~ N(0, 1)^D` (Charikar's sign-random-projection family). Two access
//! patterns matter:
//!
//! * **Materialized** generation fills the dense hyperplane matrix once, in
//!   dimension-major order, and is fed by a sequential [`SplitMix64`]
//!   stream.
//! * **On-the-fly** generation (the memory-free alternative for very large
//!   `D`, see `Hyperplanes::OnTheFly`) must produce the *same* component
//!   value for `(dimension, hash-function)` every time it is asked, with no
//!   state. [`gaussian_at`] provides that counter-based access: it seeds a
//!   tiny SplitMix64 from `(seed, d, j)` and applies one Box–Muller step.
//!
//! Everything here is deterministic given the seed, which makes every index
//! build and every experiment in the repository reproducible bit-for-bit.

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG (Steele et al.).
///
/// Used both as a sequential stream and, re-seeded per coordinate, as a
/// counter-based generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Different seeds give independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        mix(self.state)
    }

    /// Uniform `f64` in the half-open interval `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift reduction;
    /// the modulo bias is < 2^-32 for the bounds used here).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Standard normal variate via the Box–Muller transform.
    ///
    /// Consumes two uniforms and returns one normal; the second Box–Muller
    /// output is intentionally discarded so the generator remains a pure
    /// function of how many draws preceded it (simpler reasoning about
    /// reproducibility than caching the spare value).
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid u1 == 0 which would send ln(u1) to -inf.
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Stateless Gaussian component for hyperplane `j`, dimension `d`.
///
/// `gaussian_at(seed, d, j)` is a pure function: the on-the-fly hyperplane
/// store calls it at query time and gets exactly the value the materialized
/// store would have been filled with had it used the same per-coordinate
/// seeding.
#[inline]
pub fn gaussian_at(seed: u64, d: u32, j: u32) -> f32 {
    // Combine (seed, d, j) injectively into one 64-bit stream seed.
    let coord = ((d as u64) << 32) | j as u64;
    let mut rng = SplitMix64::new(seed ^ mix(coord));
    rng.next_gaussian() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SplitMix64::new(123);
        let n = 200_000;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..n {
            let g = rng.next_gaussian();
            sum += g;
            sum_sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gaussian_at_is_pure() {
        for d in [0u32, 1, 77, 49_999] {
            for j in [0u32, 1, 319] {
                assert_eq!(gaussian_at(5, d, j), gaussian_at(5, d, j));
            }
        }
        // Distinct coordinates give distinct values (w.h.p.).
        assert_ne!(gaussian_at(5, 0, 0), gaussian_at(5, 0, 1));
        assert_ne!(gaussian_at(5, 0, 0), gaussian_at(5, 1, 0));
        assert_ne!(gaussian_at(5, 0, 0), gaussian_at(6, 0, 0));
    }

    #[test]
    fn gaussian_at_distribution_is_standard_normal() {
        // Pool many coordinates; mean ~0, var ~1, and the sign is a fair coin
        // (the property the hash family actually relies on).
        let mut pos = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let n = 50_000u32;
        for i in 0..n {
            let g = gaussian_at(99, i % 500, i / 500) as f64;
            if g > 0.0 {
                pos += 1;
            }
            sum += g;
            sum_sq += g * g;
        }
        let frac_pos = pos as f64 / n as f64;
        assert!((frac_pos - 0.5).abs() < 0.01, "sign bias {frac_pos}");
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.05);
    }
}
