//! The PLSH query pipeline (paper Section 5.2).
//!
//! Every query runs four steps:
//!
//! * **Q1** — hash the query with all `m·k/2` functions and compose the
//!   `L` bucket keys (cheap).
//! * **Q2** — read the matching bucket of every table (static and delta)
//!   and eliminate duplicate point ids.
//! * **Q3** — for each unique candidate, load its data row and compute the
//!   exact angular distance.
//! * **Q4** — emit candidates within the radius (cheap).
//!
//! The [`QueryStrategy`] switches reproduce the Figure 5 ablation:
//!
//! | level | switch | paper optimization |
//! |---|---|---|
//! | 0 | none | "No optimizations" (tree-set dedup, merge-join dot product) |
//! | 1 | `bitvector_dedup` | "+bitvector" (Section 5.2.1) |
//! | 2 | `optimized_sparse_dot` | "+optimized sparse DP" (Section 5.2.3) |
//! | 3 | `candidate_array` | "+sw prefetch" (Section 5.2.2) |
//! | 4 | `huge_pages` | "+large pages" (2 MB pages for the data table) |

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use plsh_parallel::{current_num_threads_hint, ThreadPool, WorkerLocal};

use crate::dedup::CandidateSet;
use crate::hash::{allpairs, Hyperplanes, SketchMatrix};
use crate::simd;
use crate::sparse::{angular_from_dot, dot_sorted, CrsMatrix, SparseVector};
pub use crate::stats::{BatchStats, QueryStats};
use crate::table::{DeltaGeneration, StaticTables};

/// How far ahead of the distance computation the candidate loop prefetches
/// data rows (Section 5.2.2).
const PREFETCH_DISTANCE: usize = 8;

/// Queries hashed together per `SketchMatrix::sketch_batch` call in the
/// batched pipeline: large enough to reuse each plane row across many
/// queries while the per-chunk accumulator block (`B · m·k/2` floats) stays
/// comfortably inside L2.
const SKETCH_BATCH: usize = 32;

/// Queries per work-stealing task in the batched pipeline's Q2–Q4 fan-out:
/// small enough that stealing still balances candidate-count skew, large
/// enough to amortize scratch checkout across queries.
const FANOUT_CHUNK: usize = 8;

/// A reported near neighbor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Neighbor {
    /// Node-local point id.
    pub index: u32,
    /// Angular distance to the query, `<= R`.
    pub distance: f32,
}

/// Ablation switches for the query pipeline; see the module docs.
///
/// The default is fully optimized. Switches are cumulative in the paper's
/// ablation but independent here — any combination works and returns the
/// same answers (tested), only speed differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStrategy {
    /// Bitvector duplicate elimination instead of a tree set.
    pub bitvector_dedup: bool,
    /// Query-side vocabulary bitvector + dense value lookup for the sparse
    /// dot product, instead of a merge join.
    pub optimized_sparse_dot: bool,
    /// Extract a sorted unique-candidate array from the bitvector and
    /// software-prefetch upcoming data rows.
    pub candidate_array: bool,
    /// Hint the kernel to back the data table with huge pages (applied by
    /// the engine at build time; recorded here so ablations can toggle it).
    pub huge_pages: bool,
}

impl Default for QueryStrategy {
    fn default() -> Self {
        Self::optimized()
    }
}

impl QueryStrategy {
    /// Level 0: tree-set dedup and merge-join dot products.
    pub fn unoptimized() -> Self {
        Self {
            bitvector_dedup: false,
            optimized_sparse_dot: false,
            candidate_array: false,
            huge_pages: false,
        }
    }

    /// Level 1: "+bitvector".
    pub fn with_bitvector() -> Self {
        Self {
            bitvector_dedup: true,
            ..Self::unoptimized()
        }
    }

    /// Level 2: "+optimized sparse DP".
    pub fn with_sparse_dot() -> Self {
        Self {
            optimized_sparse_dot: true,
            ..Self::with_bitvector()
        }
    }

    /// Level 3: "+sw prefetch".
    pub fn with_prefetch() -> Self {
        Self {
            candidate_array: true,
            ..Self::with_sparse_dot()
        }
    }

    /// Level 4: "+large pages" — everything on.
    pub fn optimized() -> Self {
        Self {
            bitvector_dedup: true,
            optimized_sparse_dot: true,
            candidate_array: true,
            huge_pages: true,
        }
    }

    /// The five cumulative levels of Figure 5, with their paper labels.
    pub fn ablation_levels() -> [(&'static str, QueryStrategy); 5] {
        [
            ("No optimizations", Self::unoptimized()),
            ("+bitvector", Self::with_bitvector()),
            ("+optimized sparse DP", Self::with_sparse_dot()),
            ("+sw prefetch", Self::with_prefetch()),
            ("+large pages", Self::optimized()),
        ]
    }
}

/// Borrowed view of everything a query needs — one pinned epoch.
///
/// The corpus a query sees is *segmented*: rows `0..static_len` live in the
/// static epoch's consolidated matrix, and each sealed [`DeltaGeneration`]
/// holds a contiguous run of later rows under local ids. A context is built
/// once per query (or per batch) from an epoch snapshot, so every bucket
/// read and distance computation within it observes one consistent
/// `(static tables, sealed generations)` pair — never a half-merged state.
#[derive(Clone, Copy)]
pub struct QueryContext<'a> {
    /// Rows `0..static_len` (used for exact distances in Q3).
    pub static_data: &'a CrsMatrix,
    /// The hash family.
    pub planes: &'a Hyperplanes,
    /// Static tables, if any points have been merged.
    pub static_tables: Option<&'a StaticTables>,
    /// Sealed delta generations, ascending by base id and contiguous from
    /// `static_len` upward.
    pub deltas: &'a [Arc<DeltaGeneration>],
    /// Deletion bitvector words (bit set ⇒ point deleted), if any. Atomic
    /// because deletes land concurrently with queries; readers use relaxed
    /// loads (a delete is visible to queries that start after it).
    pub deleted: Option<&'a [AtomicU64]>,
    /// Number of half-key functions `m`.
    pub m: u32,
    /// Bits per half key (`k/2`).
    pub half_bits: u32,
    /// Angular query radius `R`.
    pub radius: f32,
    /// Global id of `static_data` row 0 — nonzero once a sliding-window
    /// compaction has rebased the static structure. Also the anchor of the
    /// `deleted` bitvector and the candidate bitvector.
    pub base: u32,
    /// Range tombstone: candidates below this watermark are retired
    /// (filtered like deletions, but by one comparison instead of a bit).
    pub retired_below: u32,
    /// Ablation switches.
    pub strategy: QueryStrategy,
    /// Per-query candidate budget: at most this many unique candidates get
    /// an exact distance computation (Q3), in candidate order. `usize::MAX`
    /// means unbounded; a finite budget bounds worst-case latency at the
    /// cost of possibly missing matches beyond it (a request-level
    /// deadline knob, surfaced as
    /// [`SearchRequest::with_max_candidates`](crate::search::SearchRequest::with_max_candidates)).
    pub max_candidates: usize,
}

impl<'a> QueryContext<'a> {
    /// Resident points visible to this context (static + sealed
    /// generations) — the span `base..end`, which sizes the candidate
    /// bitvector and scratch.
    pub fn num_points(&self) -> usize {
        let end = self.deltas.last().map_or(self.static_end(), |g| g.end());
        (end - self.base) as usize
    }

    /// One-past-the-end global id of the static rows.
    #[inline]
    fn static_end(&self) -> u32 {
        self.base + self.static_data.num_rows() as u32
    }

    /// Resolves a global id to its row, whichever segment holds it.
    #[inline]
    pub fn row(&self, id: u32) -> (&'a [u32], &'a [f32]) {
        if id < self.static_end() {
            return self.static_data.row(id - self.base);
        }
        // Generations are contiguous and ascending; binary-search the one
        // covering `id` (there are few — merges keep the list short).
        let i = self.deltas.partition_point(|g| g.end() <= id);
        let g = &self.deltas[i];
        debug_assert!(id >= g.base() && id < g.end());
        g.data().row(id - g.base())
    }
}

/// Reusable per-thread scratch space: hash accumulators, the candidate
/// bitvector over point ids, the query-side vocabulary bitvector, and the
/// output neighbor buffer.
#[derive(Debug)]
pub struct QueryScratch {
    acc: Vec<f32>,
    half_keys: Vec<u32>,
    keys: Vec<u32>,
    cand: CandidateSet,
    sorted: Vec<u32>,
    /// Query bitvector over the vocabulary space (Section 5.2.3).
    qmask: Vec<u64>,
    /// Dense query values; only positions flagged in `qmask` are valid.
    qvals: Vec<f32>,
    /// Owned output buffer: [`execute_query_into`] appends here, so a
    /// steady-state query performs no allocation at all.
    out: Vec<Neighbor>,
}

impl QueryScratch {
    /// Allocates scratch for `m` functions of `half_bits` bits, `n` points,
    /// and dimensionality `dim`.
    pub fn new(m: u32, half_bits: u32, n: usize, dim: u32) -> Self {
        let l = allpairs::num_tables(m) as usize;
        Self {
            acc: vec![0.0; (m * half_bits) as usize],
            half_keys: vec![0; m as usize],
            keys: vec![0; l],
            cand: CandidateSet::new(n),
            sorted: Vec::new(),
            qmask: vec![0u64; (dim as usize).div_ceil(64)],
            qvals: vec![0.0; dim as usize],
            out: Vec::new(),
        }
    }

    /// The neighbors produced by the most recent [`execute_query_into`].
    pub fn neighbors(&self) -> &[Neighbor] {
        &self.out
    }

    fn ensure_points(&mut self, n: usize) {
        self.cand.ensure_capacity(n);
    }
}

/// A **lock-free** pool of [`QueryScratch`] reused across batch queries, so
/// steady-state querying performs no allocation.
///
/// Built on [`WorkerLocal`]: each borrow is one compare-and-swap on a
/// cache-padded slot, so concurrent batch workers never serialize on a
/// mutex the way the previous `Mutex<Vec<_>>` pool did. When more workers
/// than slots race (transient oversubscription), `take` falls back to a
/// fresh allocation instead of blocking.
pub struct ScratchPool {
    m: u32,
    half_bits: u32,
    dim: u32,
    slots: WorkerLocal<QueryScratch>,
}

impl ScratchPool {
    /// Creates an empty pool for the given index shape, with two slots per
    /// hardware thread and a floor of 16 (headroom for scratches briefly
    /// checked out by external drivers, and for `PLSH_THREADS`-style
    /// oversubscription beyond the hardware hint — an empty slot costs one
    /// padded cache line until first use). If a pool is ever run with more
    /// workers than slots, the overflow falls back to allocation instead
    /// of blocking.
    pub fn new(m: u32, half_bits: u32, dim: u32) -> Self {
        Self {
            m,
            half_bits,
            dim,
            slots: WorkerLocal::new((2 * current_num_threads_hint()).max(16)),
        }
    }

    /// Takes a scratch sized for `n` points (allocating one if none free).
    pub fn take(&self, n: usize) -> QueryScratch {
        let mut s = self
            .slots
            .take()
            .unwrap_or_else(|| QueryScratch::new(self.m, self.half_bits, n, self.dim));
        s.ensure_points(n);
        s
    }

    /// Returns a scratch for reuse (dropped if every slot is occupied).
    pub fn put(&self, scratch: QueryScratch) {
        let _ = self.slots.put(scratch);
    }
}

/// Runs one query through Q1–Q4; returns neighbors and counters.
///
/// Convenience wrapper over [`execute_query_into`] that copies the result
/// out of the scratch; callers that want the allocation-free path should
/// use `execute_query_into` and read [`QueryScratch::neighbors`].
pub fn execute_query(
    ctx: &QueryContext<'_>,
    query: &SparseVector,
    scratch: &mut QueryScratch,
) -> (Vec<Neighbor>, QueryStats) {
    let stats = execute_query_into(ctx, query, scratch);
    (scratch.out.clone(), stats)
}

/// Runs one query through Q1–Q4, leaving the neighbors in the scratch's
/// owned output buffer ([`QueryScratch::neighbors`]). Steady-state queries
/// through this entry point perform no allocation.
pub fn execute_query_into(
    ctx: &QueryContext<'_>,
    query: &SparseVector,
    scratch: &mut QueryScratch,
) -> QueryStats {
    let mut stats = QueryStats::default();
    let l_count = allpairs::num_tables(ctx.m) as usize;

    // ---- Q1: hash the query and compose the L bucket keys.
    SketchMatrix::sketch_one(
        ctx.planes,
        ctx.half_bits,
        query.indices(),
        query.values(),
        &mut scratch.acc,
        &mut scratch.half_keys,
    );
    allpairs::table_keys(
        &scratch.half_keys,
        ctx.half_bits,
        &mut scratch.keys[..l_count],
    );

    let mut out = std::mem::take(&mut scratch.out);
    out.clear();
    let keys = std::mem::take(&mut scratch.keys);
    candidate_phase(ctx, query, &keys[..l_count], scratch, &mut out, &mut stats);
    scratch.keys = keys;
    scratch.out = out;
    stats
}

/// Steps Q2–Q4 over the already-composed bucket `keys` (filled either by
/// [`execute_query_into`]'s Q1 or by the batched pipeline's pre-hashing
/// pass — the latter passes a slice of its batch-wide key matrix directly).
fn candidate_phase(
    ctx: &QueryContext<'_>,
    query: &SparseVector,
    keys: &[u32],
    scratch: &mut QueryScratch,
    out: &mut Vec<Neighbor>,
    stats: &mut QueryStats,
) {
    let l_count = allpairs::num_tables(ctx.m) as usize;
    debug_assert_eq!(keys.len(), l_count);
    let dot_threshold = dot_radius_threshold(ctx.radius);

    // ---- Q2: merge buckets and eliminate duplicates.
    if ctx.strategy.bitvector_dedup {
        // Anchor the (empty) bitvector at this epoch's base so it covers
        // the resident span, not the lifetime id range.
        scratch.cand.rebase(ctx.base);
        for l in 0..l_count {
            let key = keys[l];
            if let Some(st) = ctx.static_tables {
                // All keys are known after Q1, so upcoming buckets can
                // stream in while this one is scanned — the Q2 counterpart
                // of the Q3 row prefetch (Section 5.2.2). Two distances:
                // the offsets slot two tables ahead (a pure hint), then
                // the entry run one table ahead (whose offsets read was
                // hinted on the previous iteration).
                if ctx.strategy.candidate_array {
                    if l + 2 < l_count {
                        st.prefetch_offsets(l + 2, keys[l + 2]);
                    }
                    if l + 1 < l_count {
                        st.prefetch_bucket(l + 1, keys[l + 1]);
                    }
                }
                for &id in st.bucket(l, key) {
                    stats.collisions += 1;
                    scratch.cand.insert(id);
                }
            }
            for g in ctx.deltas {
                let base = g.base();
                for &local in g.bucket(l, key) {
                    stats.collisions += 1;
                    scratch.cand.insert(base + local);
                }
            }
        }
        stats.unique_candidates += scratch.cand.len() as u64;

        // ---- Q3/Q4 over the deduplicated candidates (capped at the
        // request's candidate budget, if it set one). A finite budget
        // forces the sorted-extraction path even when the strategy level
        // leaves `candidate_array` off: the ascending-id prefix is the
        // same whatever the corpus segmentation or strategy, so a
        // budgeted request keeps the backends' same-answer guarantee
        // (bucket-discovery order would differ between a merged and an
        // unmerged engine).
        if ctx.strategy.candidate_array || ctx.max_candidates != usize::MAX {
            // Extraction pass: sorted unique ids, then a tight loop with
            // software prefetch of upcoming rows (Section 5.2.2).
            let mut sorted = std::mem::take(&mut scratch.sorted);
            scratch.cand.extract_sorted(&mut sorted);
            let visited = &sorted[..sorted.len().min(ctx.max_candidates)];
            with_query_side(ctx, query, scratch, |ctx, query, scratch| {
                for (i, &id) in visited.iter().enumerate() {
                    if let Some(&next) = visited.get(i + PREFETCH_DISTANCE) {
                        prefetch_row(ctx, next);
                    }
                    filter_candidate(ctx, query, scratch, id, dot_threshold, out, stats);
                }
            });
            scratch.sorted = sorted;
        } else {
            // Walk the discovery-order candidate list in place by moving
            // the set out of the scratch for the duration of the loop
            // (`CandidateSet::new(0)` does not allocate), instead of
            // copying the ids through a second buffer.
            let cand = std::mem::replace(&mut scratch.cand, CandidateSet::new(0));
            with_query_side(ctx, query, scratch, |ctx, query, scratch| {
                for &id in cand.candidates().iter().take(ctx.max_candidates) {
                    filter_candidate(ctx, query, scratch, id, dot_threshold, out, stats);
                }
            });
            scratch.cand = cand;
        }
        scratch.cand.clear();
    } else {
        // Ablation baseline: tree set ("STL set") dedup.
        let mut set = BTreeSet::new();
        for (l, &key) in keys.iter().enumerate() {
            if let Some(st) = ctx.static_tables {
                for &id in st.bucket(l, key) {
                    stats.collisions += 1;
                    set.insert(id);
                }
            }
            for g in ctx.deltas {
                let base = g.base();
                for &local in g.bucket(l, key) {
                    stats.collisions += 1;
                    set.insert(base + local);
                }
            }
        }
        stats.unique_candidates += set.len() as u64;
        with_query_side(ctx, query, scratch, |ctx, query, scratch| {
            for &id in set.iter().take(ctx.max_candidates) {
                filter_candidate(ctx, query, scratch, id, dot_threshold, out, stats);
            }
        });
    }
}

/// Prepares (and afterwards clears) the query-side vocabulary bitvector and
/// dense value array around the candidate loop `body`, when the optimized
/// sparse dot product is enabled.
fn with_query_side<F>(
    ctx: &QueryContext<'_>,
    query: &SparseVector,
    scratch: &mut QueryScratch,
    body: F,
) where
    F: FnOnce(&QueryContext<'_>, &SparseVector, &mut QueryScratch),
{
    if ctx.strategy.optimized_sparse_dot {
        for (&d, &v) in query.indices().iter().zip(query.values()) {
            scratch.qmask[(d >> 6) as usize] |= 1u64 << (d & 63);
            scratch.qvals[d as usize] = v;
        }
    }
    body(ctx, query, scratch);
    if ctx.strategy.optimized_sparse_dot {
        for &d in query.indices() {
            scratch.qmask[(d >> 6) as usize] = 0;
        }
    }
}

/// A dot-product lower bound for the radius test: `acos` is monotone
/// decreasing, so `acos(dot) <= R` implies `dot >= cos(R)`. Candidates
/// whose *approximate* dot falls below `cos(R)` minus the slack are misses
/// for certain, and the (much more expensive) exact-dot + `acos`
/// confirmation runs only for the tiny fraction of near/actual matches —
/// the angle-space test on the exact dot stays the decider, so reported
/// answers are unchanged.
///
/// The slack must dominate the worst divergence between the SIMD masked
/// dot and the exact merge-join dot. The kernels' property tests tolerate
/// up to `1e-4` of reassociation drift, so the slack is set an order of
/// magnitude wider; the only cost of generosity is a few extra exact-dot
/// confirmations near the boundary.
#[inline]
fn dot_radius_threshold(radius: f32) -> f32 {
    ((radius as f64).cos() - 1e-3) as f32
}

/// Q3 + Q4 for one candidate: skip deleted, compute the exact distance,
/// and append a neighbor when within the radius. `dot_threshold` is the
/// precomputed [`dot_radius_threshold`] of the query radius.
#[inline]
fn filter_candidate(
    ctx: &QueryContext<'_>,
    query: &SparseVector,
    scratch: &mut QueryScratch,
    id: u32,
    dot_threshold: f32,
    out: &mut Vec<Neighbor>,
    stats: &mut QueryStats,
) {
    if id < ctx.retired_below {
        return; // retired by the sliding window (range tombstone)
    }
    if let Some(words) = ctx.deleted {
        let off = id - ctx.base; // the bitvector is anchored at the base
        if words[(off >> 6) as usize].load(Ordering::Relaxed) & (1u64 << (off & 63)) != 0 {
            return; // tombstoned (Section 6.2, "Deleting Entries")
        }
    }
    let (idx, val) = ctx.row(id);
    let dot = if ctx.strategy.optimized_sparse_dot {
        simd::dot_via_mask(idx, val, &scratch.qmask, &scratch.qvals)
    } else {
        dot_sorted(idx, val, query.indices(), query.values())
    };
    stats.distance_computations += 1;
    if dot < dot_threshold {
        return; // certain miss: acos(dot) > R
    }
    // The SIMD masked product may reassociate the sum; near `dot = 1` the
    // `acos` derivative amplifies those last bits into visible distance
    // error. The handful of candidates surviving the prefilter get an
    // exact index-ordered merge-join dot, so every strategy level and SIMD
    // mode reports the identical distance and makes the identical radius
    // decision.
    let exact_dot = if ctx.strategy.optimized_sparse_dot {
        dot_sorted(idx, val, query.indices(), query.values())
    } else {
        dot // already the merge-join sum
    };
    let distance = angular_from_dot(exact_dot);
    if distance <= ctx.radius {
        stats.matches += 1;
        out.push(Neighbor {
            index: id,
            distance,
        });
    }
}

/// Issues prefetches for every bucket a query will read in Q2, in two
/// sweeps: first the offsets slots (non-blocking hints), then the entry
/// runs they point at — the offsets reads of the second sweep are
/// independent, so out-of-order execution overlaps whatever latency
/// remains. Called for query `i+1` while query `i` computes, turning the
/// batched pipeline's Q2 from latency-bound pointer chasing into
/// bandwidth-bound streaming.
#[inline]
fn prefetch_query_buckets(st: &StaticTables, keys: &[u32]) {
    for (l, &key) in keys.iter().enumerate() {
        st.prefetch_offsets(l, key);
    }
    for (l, &key) in keys.iter().enumerate() {
        st.prefetch_bucket(l, key);
    }
}

#[inline]
fn prefetch_row(ctx: &QueryContext<'_>, id: u32) {
    let (idx, val) = ctx.row(id);
    if let (Some(i0), Some(v0)) = (idx.first(), val.first()) {
        crate::util::prefetch_read(i0);
        crate::util::prefetch_read(v0);
    }
}

/// Per-phase wall time of a profiled query batch (Figure 6's right panel).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct QueryPhaseTimings {
    /// Step Q2: bucket reads, bitvector dedup, candidate extraction.
    pub step_q2: std::time::Duration,
    /// Step Q3: candidate loads + distance computations (+Q4 appends).
    pub step_q3: std::time::Duration,
}

impl QueryPhaseTimings {
    /// Total profiled time (Q1/Q4 are negligible and folded into Q2/Q3).
    pub fn total(&self) -> std::time::Duration {
        self.step_q2 + self.step_q3
    }
}

/// Runs a query batch **sequentially** with per-phase timers, for model
/// validation (Figure 6). Uses the fully optimized pipeline.
///
/// Sequential execution keeps the phase timers meaningful; the aggregate
/// counters and per-query answers match [`execute_batch`] exactly.
pub fn profile_batch(
    ctx: &QueryContext<'_>,
    queries: &[SparseVector],
    scratch: &mut QueryScratch,
) -> (Vec<Vec<Neighbor>>, QueryPhaseTimings, QueryStats) {
    let l_count = allpairs::num_tables(ctx.m) as usize;
    let dot_threshold = dot_radius_threshold(ctx.radius);
    let mut timings = QueryPhaseTimings::default();
    let mut stats = QueryStats::default();
    let mut answers: Vec<Vec<Neighbor>> = Vec::with_capacity(queries.len());
    let mut sorted: Vec<u32> = Vec::new();
    scratch.cand.rebase(ctx.base);
    for query in queries {
        // Q1 (not separately reported; the paper notes it "takes very
        // little time").
        SketchMatrix::sketch_one(
            ctx.planes,
            ctx.half_bits,
            query.indices(),
            query.values(),
            &mut scratch.acc,
            &mut scratch.half_keys,
        );
        allpairs::table_keys(
            &scratch.half_keys,
            ctx.half_bits,
            &mut scratch.keys[..l_count],
        );

        // Q2: bucket reads + dedup + sorted extraction.
        let t0 = Instant::now();
        for l in 0..l_count {
            let key = scratch.keys[l];
            if let Some(st) = ctx.static_tables {
                if ctx.strategy.candidate_array {
                    if l + 2 < l_count {
                        st.prefetch_offsets(l + 2, scratch.keys[l + 2]);
                    }
                    if l + 1 < l_count {
                        st.prefetch_bucket(l + 1, scratch.keys[l + 1]);
                    }
                }
                for &id in st.bucket(l, key) {
                    stats.collisions += 1;
                    scratch.cand.insert(id);
                }
            }
            for g in ctx.deltas {
                let base = g.base();
                for &local in g.bucket(l, key) {
                    stats.collisions += 1;
                    scratch.cand.insert(base + local);
                }
            }
        }
        stats.unique_candidates += scratch.cand.len() as u64;
        scratch.cand.extract_sorted(&mut sorted);
        timings.step_q2 += t0.elapsed();

        // Q3 + Q4: distance filter over the sorted candidates.
        let t1 = Instant::now();
        let mut out = Vec::new();
        let visited = &sorted[..sorted.len().min(ctx.max_candidates)];
        with_query_side(ctx, query, scratch, |ctx, query, scratch| {
            for (i, &id) in visited.iter().enumerate() {
                if let Some(&next) = visited.get(i + PREFETCH_DISTANCE) {
                    prefetch_row(ctx, next);
                }
                filter_candidate(ctx, query, scratch, id, dot_threshold, &mut out, &mut stats);
            }
        });
        std::hint::black_box(&out);
        scratch.cand.clear();
        timings.step_q3 += t1.elapsed();
        answers.push(out);
    }
    (answers, timings, stats)
}

/// Runs a batch of queries, one work-stealing task per query (Section 5.2,
/// "Parallelism"), and aggregates counters and wall time.
///
/// Each task runs the full Q1–Q4 pipeline independently; this is the
/// reference batch executor the batched pipeline
/// ([`execute_batch_pipelined`]) is measured against.
pub fn execute_batch(
    ctx: &QueryContext<'_>,
    queries: &[SparseVector],
    pool: &ThreadPool,
    scratches: &ScratchPool,
) -> (Vec<Vec<Neighbor>>, BatchStats) {
    let n = ctx.num_points();
    let start = Instant::now();
    let results: Vec<(Vec<Neighbor>, QueryStats)> = pool.parallel_map(queries.iter(), |q| {
        let mut scratch = scratches.take(n);
        let r = execute_query(ctx, q, &mut scratch);
        scratches.put(scratch);
        r
    });
    let elapsed = start.elapsed();
    collect_batch(results, queries.len(), elapsed)
}

/// The batched SIMD query pipeline: Step Q1 for the **whole batch** runs
/// first through [`SketchMatrix::sketch_batch`] (in `SKETCH_BATCH`-query
/// chunks, so each dimension-major plane row is reused across queries while
/// hot in cache), then Q2–Q4 fan out one work-stealing task per query with
/// the bucket keys already composed.
///
/// Answers are bit-identical to [`execute_batch`]: batched hashing
/// preserves every lane's accumulation order, and the candidate phase is
/// the same code.
pub fn execute_batch_pipelined(
    ctx: &QueryContext<'_>,
    queries: &[SparseVector],
    pool: &ThreadPool,
    scratches: &ScratchPool,
) -> (Vec<Vec<Neighbor>>, BatchStats) {
    if queries.is_empty() {
        return (Vec::new(), BatchStats::default());
    }
    let n = ctx.num_points();
    let m = ctx.m as usize;
    let l_count = allpairs::num_tables(ctx.m) as usize;
    let start = Instant::now();

    // ---- Q1 for the whole batch: hash in chunks, compose all bucket keys.
    let mut all_keys = vec![0u32; queries.len() * l_count];
    {
        let mut acc: Vec<f32> = Vec::new();
        let mut half_keys = vec![0u32; SKETCH_BATCH.min(queries.len()) * m];
        let mut views: Vec<(&[u32], &[f32])> = Vec::with_capacity(SKETCH_BATCH);
        for (c, chunk) in queries.chunks(SKETCH_BATCH).enumerate() {
            views.clear();
            views.extend(chunk.iter().map(|q| (q.indices(), q.values())));
            let hk = &mut half_keys[..chunk.len() * m];
            SketchMatrix::sketch_batch(ctx.planes, ctx.half_bits, &views, &mut acc, hk);
            for (qi, sketch) in hk.chunks(m).enumerate() {
                let g = c * SKETCH_BATCH + qi;
                allpairs::table_keys(
                    sketch,
                    ctx.half_bits,
                    &mut all_keys[g * l_count..][..l_count],
                );
            }
        }
    }

    // ---- Q2–Q4: fan out with pre-composed keys. Tasks cover small query
    // chunks (still plenty for stealing to balance skew) so each claims a
    // per-worker scratch once, not once per query.
    let all_keys = &all_keys;
    let chunk_results: Vec<Vec<(Vec<Neighbor>, QueryStats)>> =
        pool.parallel_map(queries.chunks(FANOUT_CHUNK).enumerate(), |(c, chunk)| {
            let mut scratch = scratches.take(n);
            let mut out = std::mem::take(&mut scratch.out);
            let results: Vec<(Vec<Neighbor>, QueryStats)> = chunk
                .iter()
                .enumerate()
                .map(|(qi, q)| {
                    let g = c * FANOUT_CHUNK + qi;
                    let keys = &all_keys[g * l_count..][..l_count];
                    // Cross-query software pipelining — only possible here,
                    // where the *next* query's bucket keys already exist:
                    // stream its buckets in while this query's Q2–Q4 run.
                    if ctx.strategy.candidate_array && qi + 1 < chunk.len() {
                        if let Some(st) = ctx.static_tables {
                            prefetch_query_buckets(st, &all_keys[(g + 1) * l_count..][..l_count]);
                        }
                    }
                    let mut stats = QueryStats::default();
                    out.clear();
                    candidate_phase(ctx, q, keys, &mut scratch, &mut out, &mut stats);
                    (out.clone(), stats)
                })
                .collect();
            scratch.out = out;
            scratches.put(scratch);
            results
        });
    let elapsed = start.elapsed();
    let results: Vec<(Vec<Neighbor>, QueryStats)> = chunk_results.into_iter().flatten().collect();
    collect_batch(results, queries.len(), elapsed)
}

fn collect_batch(
    results: Vec<(Vec<Neighbor>, QueryStats)>,
    queries: usize,
    elapsed: std::time::Duration,
) -> (Vec<Vec<Neighbor>>, BatchStats) {
    let mut totals = QueryStats::default();
    let mut neighbors = Vec::with_capacity(results.len());
    for (nbrs, st) in results {
        totals.merge(&st);
        neighbors.push(nbrs);
    }
    (
        neighbors,
        BatchStats {
            queries: queries as u64,
            totals,
            elapsed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::table::BuildStrategy;

    struct Fixture {
        data: CrsMatrix,
        planes: Hyperplanes,
        statics: StaticTables,
        m: u32,
        half_bits: u32,
    }

    fn fixture(n: usize, seed: u64) -> Fixture {
        let pool = ThreadPool::new(1);
        let dim = 64u32;
        let (m, half_bits) = (6u32, 3u32);
        let mut rng = SplitMix64::new(seed);
        let mut data = CrsMatrix::new(dim);
        for _ in 0..n {
            let a = rng.next_below(dim as u64) as u32;
            let b = (a + 1 + rng.next_below(dim as u64 - 1) as u32) % dim;
            let v = SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap();
            data.push(&v).unwrap();
        }
        let planes = Hyperplanes::new_dense(dim, m * half_bits, 7, &pool);
        let mut sk = SketchMatrix::new(m, half_bits);
        sk.append_from(&data, &planes, 0, &pool, true);
        let statics = StaticTables::build(&sk, BuildStrategy::TwoLevelShared, &pool);
        Fixture {
            data,
            planes,
            statics,
            m,
            half_bits,
        }
    }

    fn ctx<'a>(f: &'a Fixture, strategy: QueryStrategy) -> QueryContext<'a> {
        QueryContext {
            static_data: &f.data,
            planes: &f.planes,
            static_tables: Some(&f.statics),
            deltas: &[],
            deleted: None,
            m: f.m,
            half_bits: f.half_bits,
            radius: 0.9,
            base: 0,
            retired_below: 0,
            strategy,
            max_candidates: usize::MAX,
        }
    }

    fn sorted_hits(mut hits: Vec<Neighbor>) -> Vec<u32> {
        hits.sort_by_key(|h| h.index);
        hits.iter().map(|h| h.index).collect()
    }

    #[test]
    fn self_query_finds_self() {
        let f = fixture(200, 1);
        let mut scratch = QueryScratch::new(f.m, f.half_bits, 200, f.data.dim());
        let q = f.data.row_vector(17);
        let (hits, stats) = execute_query(&ctx(&f, QueryStrategy::optimized()), &q, &mut scratch);
        assert!(hits.iter().any(|h| h.index == 17 && h.distance < 1e-3));
        assert!(stats.matches as usize == hits.len());
        assert!(stats.unique_candidates <= stats.collisions);
        assert!(stats.distance_computations == stats.unique_candidates);
    }

    #[test]
    fn all_strategies_return_identical_answers() {
        let f = fixture(300, 2);
        let mut scratch = QueryScratch::new(f.m, f.half_bits, 300, f.data.dim());
        let pool = ThreadPool::new(1);
        let scratches = ScratchPool::new(f.m, f.half_bits, f.data.dim());
        for qid in [0u32, 5, 123, 299] {
            let q = f.data.row_vector(qid);
            let mut answers = Vec::new();
            for (_, strategy) in QueryStrategy::ablation_levels() {
                let (hits, _) = execute_query(&ctx(&f, strategy), &q, &mut scratch);
                answers.push(sorted_hits(hits));
                // The batched SIMD pipeline is part of the invariant too.
                let (batched, _) = execute_batch_pipelined(
                    &ctx(&f, strategy),
                    std::slice::from_ref(&q),
                    &pool,
                    &scratches,
                );
                answers.push(sorted_hits(batched.into_iter().next().unwrap()));
            }
            for w in answers.windows(2) {
                assert_eq!(w[0], w[1], "strategies disagree for query {qid}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_queries_is_clean() {
        let f = fixture(150, 3);
        let mut scratch = QueryScratch::new(f.m, f.half_bits, 150, f.data.dim());
        let c = ctx(&f, QueryStrategy::optimized());
        let q0 = f.data.row_vector(0);
        let (first, _) = execute_query(&c, &q0, &mut scratch);
        // Run a different query in between.
        let q1 = f.data.row_vector(75);
        let _ = execute_query(&c, &q1, &mut scratch);
        let (again, _) = execute_query(&c, &q0, &mut scratch);
        assert_eq!(sorted_hits(first), sorted_hits(again));
    }

    #[test]
    fn deleted_points_are_not_reported() {
        let f = fixture(100, 4);
        let mut scratch = QueryScratch::new(f.m, f.half_bits, 100, f.data.dim());
        let q = f.data.row_vector(42);
        let deleted: Vec<AtomicU64> = (0..100usize.div_ceil(64))
            .map(|_| AtomicU64::new(0))
            .collect();
        deleted[42 / 64].fetch_or(1 << 42, Ordering::Relaxed);
        let mut c = ctx(&f, QueryStrategy::optimized());
        c.deleted = Some(&deleted);
        let (hits, stats) = execute_query(&c, &q, &mut scratch);
        assert!(!hits.iter().any(|h| h.index == 42));
        // Deleted candidate skipped before the distance computation.
        assert!(stats.distance_computations < stats.unique_candidates);
    }

    #[test]
    fn batch_matches_individual_queries() {
        let f = fixture(250, 5);
        let pool = ThreadPool::new(2);
        let scratches = ScratchPool::new(f.m, f.half_bits, f.data.dim());
        let queries: Vec<SparseVector> = (0..20u32).map(|i| f.data.row_vector(i * 10)).collect();
        let c = ctx(&f, QueryStrategy::optimized());
        let (batch, stats) = execute_batch(&c, &queries, &pool, &scratches);
        assert_eq!(batch.len(), 20);
        assert_eq!(stats.queries, 20);
        let mut scratch = QueryScratch::new(f.m, f.half_bits, 250, f.data.dim());
        for (q, got) in queries.iter().zip(&batch) {
            let (expect, _) = execute_query(&c, q, &mut scratch);
            assert_eq!(sorted_hits(got.clone()), sorted_hits(expect));
        }
    }

    #[test]
    fn radius_zero_like_returns_only_near_exact() {
        let f = fixture(100, 6);
        let mut scratch = QueryScratch::new(f.m, f.half_bits, 100, f.data.dim());
        let mut c = ctx(&f, QueryStrategy::optimized());
        c.radius = 1e-4;
        let q = f.data.row_vector(10);
        let (hits, _) = execute_query(&c, &q, &mut scratch);
        for h in hits {
            assert!(h.distance <= 1e-4);
        }
    }

    #[test]
    fn empty_index_yields_no_hits() {
        let pool = ThreadPool::new(1);
        let dim = 32u32;
        let data = CrsMatrix::new(dim);
        let planes = Hyperplanes::new_dense(dim, 12, 1, &pool);
        let sk = SketchMatrix::new(4, 3);
        let statics = StaticTables::build(&sk, BuildStrategy::TwoLevelShared, &pool);
        let c = QueryContext {
            static_data: &data,
            planes: &planes,
            static_tables: Some(&statics),
            deltas: &[],
            deleted: None,
            m: 4,
            half_bits: 3,
            radius: 0.9,
            base: 0,
            retired_below: 0,
            strategy: QueryStrategy::optimized(),
            max_candidates: usize::MAX,
        };
        let mut scratch = QueryScratch::new(4, 3, 0, dim);
        let q = SparseVector::unit(vec![(0, 1.0)]).unwrap();
        let (hits, stats) = execute_query(&c, &q, &mut scratch);
        assert!(hits.is_empty());
        assert_eq!(stats.collisions, 0);
    }

    #[test]
    fn dot_via_mask_matches_merge_join() {
        let mut rng = SplitMix64::new(8);
        for _ in 0..50 {
            let a = SparseVector::unit(
                (0..5)
                    .map(|_| (rng.next_below(64) as u32, rng.next_f64() as f32 + 0.01))
                    .collect(),
            )
            .unwrap();
            let b = SparseVector::unit(
                (0..5)
                    .map(|_| (rng.next_below(64) as u32, rng.next_f64() as f32 + 0.01))
                    .collect(),
            )
            .unwrap();
            let mut qmask = vec![0u64; 1];
            let mut qvals = vec![0.0f32; 64];
            for (&d, &v) in b.indices().iter().zip(b.values()) {
                qmask[(d >> 6) as usize] |= 1 << (d & 63);
                qvals[d as usize] = v;
            }
            let fast = simd::dot_via_mask(a.indices(), a.values(), &qmask, &qvals);
            let slow = a.dot(&b);
            assert!((fast - slow).abs() < 1e-5);
        }
    }

    #[test]
    fn pipelined_batch_matches_per_query_batch() {
        let f = fixture(250, 9);
        let pool = ThreadPool::new(2);
        let scratches = ScratchPool::new(f.m, f.half_bits, f.data.dim());
        let queries: Vec<SparseVector> = (0..40u32).map(|i| f.data.row_vector(i * 6)).collect();
        for (_, strategy) in QueryStrategy::ablation_levels() {
            let c = ctx(&f, strategy);
            let (plain, plain_stats) = execute_batch(&c, &queries, &pool, &scratches);
            let (piped, piped_stats) = execute_batch_pipelined(&c, &queries, &pool, &scratches);
            assert_eq!(plain.len(), piped.len());
            for (a, b) in plain.iter().zip(&piped) {
                // Bit-identical: same ids AND same distances.
                assert_eq!(a, b, "batched Q1 must not change any answer");
            }
            assert_eq!(plain_stats.totals, piped_stats.totals);
        }
    }

    #[test]
    fn pipelined_batch_handles_empty_and_single() {
        let f = fixture(50, 10);
        let pool = ThreadPool::new(1);
        let scratches = ScratchPool::new(f.m, f.half_bits, f.data.dim());
        let c = ctx(&f, QueryStrategy::optimized());
        let (none, stats) = execute_batch_pipelined(&c, &[], &pool, &scratches);
        assert!(none.is_empty());
        assert_eq!(stats.queries, 0);
        let q = vec![f.data.row_vector(7)];
        let (one, _) = execute_batch_pipelined(&c, &q, &pool, &scratches);
        assert!(one[0].iter().any(|h| h.index == 7));
    }

    #[test]
    fn sealed_generations_answer_like_static() {
        use crate::table::DeltaLayout;
        let f = fixture(200, 12);
        let pool = ThreadPool::new(1);
        // Same corpus, different segmentation: 150 static + one sealed
        // generation of 50. Answers must match the all-static fixture.
        let mut sk = SketchMatrix::new(f.m, f.half_bits);
        sk.append_from(&f.data, &f.planes, 0, &pool, true);
        let statics = StaticTables::build_prefix(&sk, 150, BuildStrategy::TwoLevelShared, &pool);
        let mut static_data = f.data.clone();
        static_data.truncate(150);
        let mut g = DeltaGeneration::new(
            150,
            f.data.dim(),
            f.m,
            f.half_bits,
            DeltaLayout::Adaptive,
            50,
        );
        let vs: Vec<SparseVector> = (150..200).map(|i| f.data.row_vector(i as u32)).collect();
        g.append(&vs, &f.planes, true, &pool).unwrap();
        let gens = [Arc::new(g)];
        let segmented = QueryContext {
            static_data: &static_data,
            planes: &f.planes,
            static_tables: Some(&statics),
            deltas: &gens,
            deleted: None,
            m: f.m,
            half_bits: f.half_bits,
            radius: 0.9,
            base: 0,
            retired_below: 0,
            strategy: QueryStrategy::optimized(),
            max_candidates: usize::MAX,
        };
        assert_eq!(segmented.num_points(), 200);
        let full = ctx(&f, QueryStrategy::optimized());
        let mut scratch = QueryScratch::new(f.m, f.half_bits, 200, f.data.dim());
        for qid in [0u32, 149, 150, 199] {
            let q = f.data.row_vector(qid);
            let (a, _) = execute_query(&full, &q, &mut scratch);
            let (b, _) = execute_query(&segmented, &q, &mut scratch);
            assert_eq!(sorted_hits(a), sorted_hits(b), "query {qid}");
        }
    }

    #[test]
    fn execute_query_into_reuses_owned_output() {
        let f = fixture(120, 11);
        let mut scratch = QueryScratch::new(f.m, f.half_bits, 120, f.data.dim());
        let c = ctx(&f, QueryStrategy::optimized());
        let q = f.data.row_vector(3);
        let stats = execute_query_into(&c, &q, &mut scratch);
        assert_eq!(stats.matches as usize, scratch.neighbors().len());
        let first: Vec<Neighbor> = scratch.neighbors().to_vec();
        let cap = scratch.out.capacity();
        // Re-running the same query reuses the buffer without growing it.
        execute_query_into(&c, &q, &mut scratch);
        assert_eq!(scratch.neighbors(), &first[..]);
        assert_eq!(scratch.out.capacity(), cap);
    }
}
