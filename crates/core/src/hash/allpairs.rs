//! Pair bookkeeping for the all-pairs LSH scheme (paper Section 3).
//!
//! The `L = m(m−1)/2` tables are the ordered pairs `(a, b)`, `a < b`, of
//! half-key functions, enumerated in the fixed order
//! `(0,1), (0,2), …, (0,m−1), (1,2), …, (m−2,m−1)`. Table `l`'s bucket key
//! for a point is `(u_a << k/2) | u_b`.
//!
//! The enumeration order groups tables by their *first-level* function
//! `a`, which is what lets the two-level builder share a first-level
//! partition among the `m−1−a` tables with the same `a` (Section 5.1.2,
//! Figure 2).

/// Number of tables for `m` half-key functions: `L = m(m−1)/2`.
#[inline]
pub fn num_tables(m: u32) -> u32 {
    m * (m - 1) / 2
}

/// The `(a, b)` pair of table `l` under the fixed enumeration order.
#[inline]
pub fn pair_of_table(l: u32, m: u32) -> (u32, u32) {
    debug_assert!(l < num_tables(m));
    // Walk groups: table indices [offset(a), offset(a) + (m-1-a)) share
    // first-level function a.
    let mut rem = l;
    for a in 0..m {
        let group = m - 1 - a;
        if rem < group {
            return (a, a + 1 + rem);
        }
        rem -= group;
    }
    unreachable!("l out of range");
}

/// The table index `l` of pair `(a, b)` (`a < b`).
#[inline]
pub fn table_of_pair(a: u32, b: u32, m: u32) -> u32 {
    debug_assert!(a < b && b < m);
    // Sum of group sizes for first-level functions < a, plus offset in group.
    a * m - a * (a + 1) / 2 + (b - a - 1)
}

/// Enumerates all pairs in table order.
pub fn pairs(m: u32) -> impl Iterator<Item = (u32, u32)> {
    (0..m).flat_map(move |a| (a + 1..m).map(move |b| (a, b)))
}

/// Composes a full `k`-bit bucket key from two half-keys.
#[inline]
pub fn compose_key(ua: u32, ub: u32, half_bits: u32) -> u32 {
    debug_assert!(ua < (1 << half_bits) && ub < (1 << half_bits));
    (ua << half_bits) | ub
}

/// Splits a `k`-bit bucket key back into its half-keys.
#[inline]
pub fn split_key(key: u32, half_bits: u32) -> (u32, u32) {
    (key >> half_bits, key & ((1 << half_bits) - 1))
}

/// Fills `out` (length `L`) with the table keys of a point whose half-keys
/// are `sketch` (length `m`).
#[inline]
pub fn table_keys(sketch: &[u32], half_bits: u32, out: &mut [u32]) {
    let m = sketch.len();
    debug_assert_eq!(out.len(), m * (m - 1) / 2);
    let mut l = 0;
    for a in 0..m {
        let ua = sketch[a] << half_bits;
        for &ub in &sketch[a + 1..] {
            out[l] = ua | ub;
            l += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn num_tables_matches_formula() {
        assert_eq!(num_tables(2), 1);
        assert_eq!(num_tables(4), 6);
        assert_eq!(num_tables(16), 120);
        assert_eq!(num_tables(40), 780); // the paper's configuration
    }

    #[test]
    fn pair_enumeration_round_trips() {
        for m in [2u32, 3, 4, 7, 16, 40] {
            let all: Vec<(u32, u32)> = pairs(m).collect();
            assert_eq!(all.len(), num_tables(m) as usize);
            for (l, &(a, b)) in all.iter().enumerate() {
                assert!(a < b && b < m);
                assert_eq!(pair_of_table(l as u32, m), (a, b));
                assert_eq!(table_of_pair(a, b, m), l as u32);
            }
        }
    }

    #[test]
    fn pairs_are_grouped_by_first_function() {
        // Consecutive runs share `a` — the property the shared-partition
        // builder relies on.
        let all: Vec<(u32, u32)> = pairs(5).collect();
        assert_eq!(
            all,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4)
            ]
        );
    }

    #[test]
    fn compose_split_round_trip() {
        for half_bits in [1u32, 2, 7, 8, 12] {
            let max = 1u32 << half_bits;
            for ua in [0, 1, max / 2, max - 1] {
                for ub in [0, 1, max / 2, max - 1] {
                    let key = compose_key(ua, ub, half_bits);
                    assert!(key < (1 << (2 * half_bits)));
                    assert_eq!(split_key(key, half_bits), (ua, ub));
                }
            }
        }
    }

    #[test]
    fn table_keys_match_compose() {
        let sketch = vec![3u32, 0, 7, 5];
        let half_bits = 3;
        let mut out = vec![0u32; 6];
        table_keys(&sketch, half_bits, &mut out);
        for (l, (a, b)) in pairs(4).enumerate() {
            assert_eq!(
                out[l],
                compose_key(sketch[a as usize], sketch[b as usize], half_bits)
            );
        }
    }

    proptest! {
        #[test]
        fn pair_table_bijection(m in 2u32..64) {
            let l_count = num_tables(m);
            let mut seen = vec![false; l_count as usize];
            for a in 0..m {
                for b in a + 1..m {
                    let l = table_of_pair(a, b, m);
                    prop_assert!(l < l_count);
                    prop_assert!(!seen[l as usize]);
                    seen[l as usize] = true;
                    prop_assert_eq!(pair_of_table(l, m), (a, b));
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
