//! The LSH hash family and all-pairs sketch machinery (paper Section 3).
//!
//! PLSH uses Charikar's sign-random-projection family for angular distance:
//! `h_a(v) = sign(a · v)` for a Gaussian random hyperplane `a`. A point's
//! *sketch* is the matrix of `m` half-keys of `k/2` bits each
//! (`u_1(v), …, u_m(v)`), and the `L = m(m−1)/2` table keys are all ordered
//! pairs `g_{a,b}(v) = (u_a(v), u_b(v))`.
//!
//! * [`Hyperplanes`] stores (or lazily recomputes) the `m·k/2` random
//!   hyperplanes and exposes the sparse-times-dense accumulation kernel of
//!   Section 5.1.1 in both a vectorizable and a deliberately-naive variant
//!   (the "+vectorization" ablation of Figure 4).
//! * [`SketchMatrix`] holds the packed half-keys of every indexed point and
//!   is the sole input the table builders need.
//! * [`allpairs`] maps between pair `(a, b)` and table index `l`, and
//!   composes half-keys into `k`-bit bucket keys.

pub mod allpairs;
mod hyperplanes;
mod sketch;

pub use hyperplanes::{Hyperplanes, HyperplanesKind};
pub use sketch::SketchMatrix;
