//! Packed half-key sketches for every indexed point.
//!
//! A point's sketch is its `m` half-keys `u_1(v)…u_m(v)`, each `k/2` sign
//! bits packed into a `u32`. The [`SketchMatrix`] stores sketches row-major
//! (`m` consecutive `u32` per point) and supports appending — streaming
//! inserts hash their points once here, and both delta insertion and every
//! later static rebuild (merge) reuse the stored sketches instead of
//! re-hashing, which is what makes the paper's periodic merges affordable.

use plsh_parallel::ThreadPool;

use crate::hash::hyperplanes::Hyperplanes;
use crate::sparse::CrsMatrix;
use crate::util::SharedSliceMut;

/// Packed `k/2`-bit half-keys for `n` points × `m` functions.
#[derive(Debug, Clone)]
pub struct SketchMatrix {
    m: u32,
    half_bits: u32,
    /// Row-major `n × m` half-keys.
    data: Vec<u32>,
}

impl SketchMatrix {
    /// Creates an empty sketch matrix for `m` functions of `half_bits` bits.
    pub fn new(m: u32, half_bits: u32) -> Self {
        assert!((1..=16).contains(&half_bits), "half-keys are u32-packed");
        assert!(m >= 2);
        Self {
            m,
            half_bits,
            data: Vec::new(),
        }
    }

    /// Number of half-key functions `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Bits per half-key (`k/2`).
    pub fn half_bits(&self) -> u32 {
        self.half_bits
    }

    /// Number of sketched points.
    pub fn num_points(&self) -> usize {
        self.data.len() / self.m as usize
    }

    /// Bytes of sketch storage.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Half-key `u_a` of point `i`.
    #[inline]
    pub fn half_key(&self, i: u32, a: u32) -> u32 {
        debug_assert!(a < self.m);
        self.data[i as usize * self.m as usize + a as usize]
    }

    /// All `m` half-keys of point `i`.
    #[inline]
    pub fn row(&self, i: u32) -> &[u32] {
        let base = i as usize * self.m as usize;
        &self.data[base..base + self.m as usize]
    }

    /// Sketches rows `[from, corpus.num_rows())` of `corpus` and appends
    /// them, parallelized over points (Section 5.1.1).
    ///
    /// `vectorized` selects between the contiguous-row kernel and the naive
    /// per-function kernel (the Figure 4 "+vectorization" ablation); both
    /// produce identical sketches.
    pub fn append_from(
        &mut self,
        corpus: &CrsMatrix,
        planes: &Hyperplanes,
        from: usize,
        pool: &ThreadPool,
        vectorized: bool,
    ) {
        let n = corpus.num_rows();
        assert!(from <= n);
        assert_eq!(
            self.num_points(),
            from,
            "append must continue at the next row"
        );
        let new_points = n - from;
        if new_points == 0 {
            return;
        }
        let m = self.m as usize;
        let old_len = self.data.len();
        self.data.resize(old_len + new_points * m, 0);
        let out = &mut self.data[old_len..];
        let n_hashes = planes.n_hashes() as usize;
        debug_assert_eq!(n_hashes, m * self.half_bits as usize);

        let shared = SharedSliceMut::new(out);
        let shared = &shared;
        let half_bits = self.half_bits;
        pool.parallel_for(0, new_points, 64, |range| {
            let mut acc = vec![0.0f32; n_hashes];
            for local in range {
                let (idx, val) = corpus.row((from + local) as u32);
                acc.iter_mut().for_each(|a| *a = 0.0);
                if vectorized {
                    planes.accumulate(idx, val, &mut acc);
                } else {
                    planes.accumulate_naive(idx, val, &mut acc);
                }
                for a in 0..m {
                    let key = pack_half_key(&acc[a * half_bits as usize..], half_bits);
                    // SAFETY: each point's m slots are owned by exactly one
                    // parallel_for chunk.
                    unsafe { shared.write(local * m + a, key) };
                }
            }
        });
    }

    /// Sketches one vector without storing it (query-side Step Q1).
    ///
    /// `acc` is caller-provided scratch of length `n_hashes`; `out` receives
    /// the `m` half-keys.
    pub fn sketch_one(
        planes: &Hyperplanes,
        half_bits: u32,
        indices: &[u32],
        values: &[f32],
        acc: &mut [f32],
        out: &mut [u32],
    ) {
        debug_assert_eq!(acc.len(), planes.n_hashes() as usize);
        acc.iter_mut().for_each(|a| *a = 0.0);
        planes.accumulate(indices, values, acc);
        for (a, slot) in out.iter_mut().enumerate() {
            *slot = pack_half_key(&acc[a * half_bits as usize..], half_bits);
        }
    }

    /// Sketches a whole batch of vectors without storing them — the batched
    /// query-side Step Q1.
    ///
    /// Hashing is delegated to [`Hyperplanes::accumulate_batch`], sized so
    /// the union of plane rows the batch touches stays cache-resident
    /// across its queries. `acc` is caller-provided scratch
    /// (resized/cleared here); `out` receives `m` half-keys per query,
    /// row-major, and must hold `queries.len() · m` entries.
    ///
    /// Bit-identical to calling [`sketch_one`](Self::sketch_one) per query.
    pub fn sketch_batch(
        planes: &Hyperplanes,
        half_bits: u32,
        queries: &[(&[u32], &[f32])],
        acc: &mut Vec<f32>,
        out: &mut [u32],
    ) {
        let nh = planes.n_hashes() as usize;
        let m = nh / half_bits as usize;
        debug_assert_eq!(out.len(), queries.len() * m);
        acc.clear();
        acc.resize(queries.len() * nh, 0.0);
        planes.accumulate_batch(queries, acc);
        for (q, keys) in out.chunks_mut(m).enumerate() {
            let qacc = &acc[q * nh..(q + 1) * nh];
            for (a, slot) in keys.iter_mut().enumerate() {
                *slot = pack_half_key(&qacc[a * half_bits as usize..], half_bits);
            }
        }
    }

    /// Drops sketches of points `>= keep` (paired with corpus truncation).
    pub fn truncate(&mut self, keep: usize) {
        let len = keep * self.m as usize;
        if len < self.data.len() {
            self.data.truncate(len);
        }
    }

    /// Removes all sketches, retaining storage.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

/// Packs the first `half_bits` accumulator signs into a half-key:
/// bit `b` of the key is `1` iff `acc[b] >= 0` (`sign(a·v)`).
#[inline]
fn pack_half_key(acc: &[f32], half_bits: u32) -> u32 {
    let mut key = 0u32;
    for b in 0..half_bits {
        // Treat +0.0 as positive sign; the measure-zero event of an exact
        // zero dot product only needs a consistent tie-break.
        key |= u32::from(acc[b as usize] >= 0.0) << b;
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseVector;

    fn tiny_corpus(dim: u32, rows: &[&[(u32, f32)]]) -> CrsMatrix {
        let mut m = CrsMatrix::new(dim);
        for r in rows {
            m.push(&SparseVector::unit(r.to_vec()).unwrap()).unwrap();
        }
        m
    }

    #[test]
    fn pack_half_key_signs() {
        assert_eq!(pack_half_key(&[1.0, -1.0, 0.5, -0.5], 4), 0b0101);
        assert_eq!(pack_half_key(&[-1.0, -1.0], 2), 0b00);
        assert_eq!(pack_half_key(&[0.0, 1.0], 2), 0b11); // +0 counts as set
    }

    #[test]
    fn append_then_query_sketches_agree() {
        let pool = ThreadPool::new(2);
        let corpus = tiny_corpus(
            32,
            &[&[(0, 1.0), (5, 2.0)], &[(1, 1.0), (31, -1.0)], &[(16, 3.0)]],
        );
        let m = 4u32;
        let half_bits = 3u32;
        let planes = Hyperplanes::new_dense(32, m * half_bits, 21, &pool);
        let mut sk = SketchMatrix::new(m, half_bits);
        sk.append_from(&corpus, &planes, 0, &pool, true);
        assert_eq!(sk.num_points(), 3);

        // sketch_one must reproduce the stored sketch for each row.
        let mut acc = vec![0.0f32; planes.n_hashes() as usize];
        let mut out = vec![0u32; m as usize];
        for i in 0..3u32 {
            let (idx, val) = corpus.row(i);
            SketchMatrix::sketch_one(&planes, half_bits, idx, val, &mut acc, &mut out);
            assert_eq!(sk.row(i), &out[..], "row {i}");
        }
    }

    #[test]
    fn sketch_batch_matches_sketch_one() {
        let pool = ThreadPool::new(1);
        let rows: Vec<Vec<(u32, f32)>> = (0..17)
            .map(|i| vec![(i % 24, 1.0 + i as f32 * 0.3), ((i * 5 + 2) % 24, -0.7)])
            .collect();
        let row_refs: Vec<&[(u32, f32)]> = rows.iter().map(|r| r.as_slice()).collect();
        let corpus = tiny_corpus(24, &row_refs);
        let (m, half_bits) = (5u32, 3u32);
        let planes = Hyperplanes::new_dense(24, m * half_bits, 42, &pool);

        let views: Vec<(&[u32], &[f32])> = (0..corpus.num_rows() as u32)
            .map(|i| corpus.row(i))
            .collect();
        let mut acc = Vec::new();
        let mut batch = vec![0u32; views.len() * m as usize];
        SketchMatrix::sketch_batch(&planes, half_bits, &views, &mut acc, &mut batch);

        let mut one_acc = vec![0.0f32; planes.n_hashes() as usize];
        let mut one = vec![0u32; m as usize];
        for (q, &(idx, val)) in views.iter().enumerate() {
            SketchMatrix::sketch_one(&planes, half_bits, idx, val, &mut one_acc, &mut one);
            assert_eq!(
                &batch[q * m as usize..(q + 1) * m as usize],
                &one[..],
                "query {q}"
            );
        }
    }

    #[test]
    fn vectorized_and_naive_sketches_identical() {
        let pool = ThreadPool::new(2);
        let rows: Vec<Vec<(u32, f32)>> = (0..40)
            .map(|i| vec![(i % 16, 1.0 + i as f32 * 0.1), ((i * 7 + 1) % 16, -0.5)])
            .collect();
        let row_refs: Vec<&[(u32, f32)]> = rows.iter().map(|r| r.as_slice()).collect();
        let corpus = tiny_corpus(16, &row_refs);
        let planes = Hyperplanes::new_dense(16, 4 * 4, 5, &pool);
        let mut fast = SketchMatrix::new(4, 4);
        let mut slow = SketchMatrix::new(4, 4);
        fast.append_from(&corpus, &planes, 0, &pool, true);
        slow.append_from(&corpus, &planes, 0, &pool, false);
        for i in 0..corpus.num_rows() as u32 {
            assert_eq!(fast.row(i), slow.row(i), "row {i}");
        }
    }

    #[test]
    fn incremental_append_matches_bulk() {
        let pool = ThreadPool::new(1);
        let rows: Vec<Vec<(u32, f32)>> = (0..10)
            .map(|i| vec![(i as u32, 1.0), ((i + 3) as u32 % 20, 2.0)])
            .collect();
        let row_refs: Vec<&[(u32, f32)]> = rows.iter().map(|r| r.as_slice()).collect();
        let corpus = tiny_corpus(20, &row_refs);
        let planes = Hyperplanes::new_dense(20, 3 * 2, 8, &pool);

        let mut bulk = SketchMatrix::new(3, 2);
        bulk.append_from(&corpus, &planes, 0, &pool, true);

        // Rebuild the same corpus in two increments.
        let mut inc = SketchMatrix::new(3, 2);
        let mut partial = CrsMatrix::new(20);
        for r in &rows[..4] {
            partial
                .push(&SparseVector::unit(r.clone()).unwrap())
                .unwrap();
        }
        inc.append_from(&partial, &planes, 0, &pool, true);
        for r in &rows[4..] {
            partial
                .push(&SparseVector::unit(r.clone()).unwrap())
                .unwrap();
        }
        inc.append_from(&partial, &planes, 4, &pool, true);

        assert_eq!(bulk.num_points(), inc.num_points());
        for i in 0..10u32 {
            assert_eq!(bulk.row(i), inc.row(i));
        }
    }

    #[test]
    fn half_keys_fit_in_half_bits() {
        let pool = ThreadPool::new(1);
        let rows: Vec<Vec<(u32, f32)>> = (0..25).map(|i| vec![(i as u32, 1.0)]).collect();
        let row_refs: Vec<&[(u32, f32)]> = rows.iter().map(|r| r.as_slice()).collect();
        let corpus = tiny_corpus(25, &row_refs);
        for half_bits in [1u32, 2, 5, 8] {
            let planes = Hyperplanes::new_dense(25, 2 * half_bits, 77, &pool);
            let mut sk = SketchMatrix::new(2, half_bits);
            sk.append_from(&corpus, &planes, 0, &pool, true);
            for i in 0..25u32 {
                for a in 0..2 {
                    assert!(sk.half_key(i, a) < (1 << half_bits));
                }
            }
        }
    }

    #[test]
    fn truncate_and_clear() {
        let pool = ThreadPool::new(1);
        let corpus = tiny_corpus(8, &[&[(0, 1.0)], &[(1, 1.0)], &[(2, 1.0)]]);
        let planes = Hyperplanes::new_dense(8, 4, 1, &pool);
        let mut sk = SketchMatrix::new(2, 2);
        sk.append_from(&corpus, &planes, 0, &pool, true);
        let row0 = sk.row(0).to_vec();
        sk.truncate(1);
        assert_eq!(sk.num_points(), 1);
        assert_eq!(sk.row(0), &row0[..]);
        sk.clear();
        assert_eq!(sk.num_points(), 0);
    }
}
