//! Random hyperplane storage and the hashing kernel.
//!
//! Evaluating all hash functions over the corpus is a sparse × dense matrix
//! product (paper Section 5.1.1): the sparse side is the CRS corpus, the
//! dense side is the `D × (m·k/2)` hyperplane matrix. We store the dense
//! matrix **dimension-major** (`planes[d * n_hashes + j]`) so that for each
//! non-zero `(d, value)` of a document the inner loop reads one contiguous
//! row of `n_hashes` floats — the access pattern the paper chooses so "at
//! least one row of the dense matrix is read consecutively", which LLVM
//! auto-vectorizes.
//!
//! For very large vocabularies the dense matrix may not be worth its
//! memory (`D · m·k/2 · 4` bytes); [`HyperplanesKind::OnTheFly`] recomputes
//! components from the counter-based generator instead. Both stores yield
//! bit-identical sketches for the same seed.

use plsh_parallel::ThreadPool;

use crate::rng::gaussian_at;
use crate::simd;

/// How hyperplane components are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HyperplanesKind {
    /// Materialized dense `D × n_hashes` matrix (fast, memory-hungry).
    Dense,
    /// Recompute every component from the seed on demand (slow, zero
    /// memory) — an extension for vocabularies where the dense matrix
    /// would not fit.
    OnTheFly,
}

/// The `m·k/2` random Gaussian hyperplanes of the hash family.
#[derive(Debug, Clone)]
pub struct Hyperplanes {
    dim: u32,
    n_hashes: u32,
    seed: u64,
    /// Dimension-major dense storage, `None` for on-the-fly.
    dense: Option<Vec<f32>>,
}

impl Hyperplanes {
    /// Materializes the dense hyperplane matrix in parallel.
    pub fn new_dense(dim: u32, n_hashes: u32, seed: u64, pool: &ThreadPool) -> Self {
        let mut data = vec![0.0f32; dim as usize * n_hashes as usize];
        {
            let shared = crate::util::SharedSliceMut::new(&mut data);
            let shared = &shared;
            pool.parallel_for(0, dim as usize, 256, |range| {
                for d in range {
                    let base = d * n_hashes as usize;
                    for j in 0..n_hashes {
                        // SAFETY: every (d, j) slot is owned by exactly one
                        // chunk of the parallel_for.
                        unsafe {
                            shared.write(base + j as usize, gaussian_at(seed, d as u32, j));
                        }
                    }
                }
            });
        }
        Self {
            dim,
            n_hashes,
            seed,
            dense: Some(data),
        }
    }

    /// Creates a memory-free store that recomputes components on demand.
    pub fn new_on_the_fly(dim: u32, n_hashes: u32, seed: u64) -> Self {
        Self {
            dim,
            n_hashes,
            seed,
            dense: None,
        }
    }

    /// Which storage strategy this instance uses.
    pub fn kind(&self) -> HyperplanesKind {
        if self.dense.is_some() {
            HyperplanesKind::Dense
        } else {
            HyperplanesKind::OnTheFly
        }
    }

    /// Dimensionality `D`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of individual hash functions (`m·k/2`).
    pub fn n_hashes(&self) -> u32 {
        self.n_hashes
    }

    /// Bytes held by the dense matrix (0 for on-the-fly).
    pub fn memory_bytes(&self) -> usize {
        self.dense.as_ref().map_or(0, |d| d.len() * 4)
    }

    /// Component of hyperplane `j` along dimension `d`.
    #[inline]
    pub fn component(&self, d: u32, j: u32) -> f32 {
        debug_assert!(d < self.dim && j < self.n_hashes);
        match &self.dense {
            Some(data) => data[d as usize * self.n_hashes as usize + j as usize],
            None => gaussian_at(self.seed, d, j),
        }
    }

    /// Accumulates `acc[j] += value · plane_j[d]` for all `j`, for each
    /// non-zero `(d, value)` of a sparse vector.
    ///
    /// The dense store dispatches to the explicit SIMD kernel selected at
    /// runtime ([`crate::simd::accumulate_rows`]); every dispatch level
    /// accumulates each lane in ascending non-zero order without FMA, so
    /// the result is bit-identical to [`accumulate_scalar`](Self::accumulate_scalar).
    #[inline]
    pub fn accumulate(&self, indices: &[u32], values: &[f32], acc: &mut [f32]) {
        debug_assert_eq!(acc.len(), self.n_hashes as usize);
        match &self.dense {
            Some(data) => {
                simd::accumulate_rows(data, self.n_hashes as usize, indices, values, acc);
            }
            // One shared copy of the on-the-fly loop.
            None => self.accumulate_scalar(indices, values, acc),
        }
    }

    /// The reference contiguous-row kernel without explicit SIMD — what the
    /// explicit kernels are validated against (they must match bit for bit).
    pub fn accumulate_scalar(&self, indices: &[u32], values: &[f32], acc: &mut [f32]) {
        debug_assert_eq!(acc.len(), self.n_hashes as usize);
        match &self.dense {
            Some(data) => {
                simd::accumulate_rows_scalar(data, self.n_hashes as usize, indices, values, acc);
            }
            None => {
                for (&d, &v) in indices.iter().zip(values) {
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += v * gaussian_at(self.seed, d, j as u32);
                    }
                }
            }
        }
    }

    /// Accumulates a whole **batch** of sparse vectors at once:
    /// `accs[q·n_hashes + j] += v · plane_j[d]` for every non-zero `(d, v)`
    /// of query `q`.
    ///
    /// The batch is sized by the caller so the union of the plane rows its
    /// queries touch stays cache-resident: the first query to reference a
    /// dimension pulls that row in, and every later query in the batch
    /// hashes against it **while it is hot** — the Q1 analogue of the
    /// paper's corpus-side sparse × dense product. (A dimension-sorted
    /// gather/scatter variant was measured slower at realistic batch sizes:
    /// scattering into `B` accumulators re-reads and re-writes each
    /// accumulator per non-zero, while the per-query register-blocked
    /// kernel keeps its accumulator block in registers.) Each query runs
    /// the same runtime-dispatched kernel as [`accumulate`](Self::accumulate),
    /// so batched hashing is bit-identical to hashing queries one at a
    /// time.
    pub fn accumulate_batch(&self, queries: &[(&[u32], &[f32])], accs: &mut [f32]) {
        let nh = self.n_hashes as usize;
        debug_assert_eq!(accs.len(), queries.len() * nh);
        for (q, (idx, val)) in queries.iter().enumerate() {
            debug_assert_eq!(idx.len(), val.len());
            self.accumulate(idx, val, &mut accs[q * nh..(q + 1) * nh]);
        }
    }

    /// The deliberately unvectorized variant of [`accumulate`](Self::accumulate): hash
    /// functions on the outer loop, sparse vector re-walked per function.
    ///
    /// This is the "before vectorization" baseline of Figure 4 — it
    /// produces identical results but strides through the dense matrix
    /// column-wise (stride `n_hashes`), defeating both SIMD and the
    /// hardware prefetcher.
    pub fn accumulate_naive(&self, indices: &[u32], values: &[f32], acc: &mut [f32]) {
        debug_assert_eq!(acc.len(), self.n_hashes as usize);
        for (j, a) in acc.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for (&d, &v) in indices.iter().zip(values) {
                sum += v * self.component(d, j as u32);
            }
            *a += sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    #[test]
    fn dense_and_on_the_fly_agree() {
        let dense = Hyperplanes::new_dense(50, 12, 99, &pool());
        let lazy = Hyperplanes::new_on_the_fly(50, 12, 99);
        for d in 0..50 {
            for j in 0..12 {
                assert_eq!(dense.component(d, j), lazy.component(d, j));
            }
        }
    }

    #[test]
    fn kinds_and_memory() {
        let dense = Hyperplanes::new_dense(10, 4, 1, &pool());
        assert_eq!(dense.kind(), HyperplanesKind::Dense);
        assert_eq!(dense.memory_bytes(), 10 * 4 * 4);
        let lazy = Hyperplanes::new_on_the_fly(10, 4, 1);
        assert_eq!(lazy.kind(), HyperplanesKind::OnTheFly);
        assert_eq!(lazy.memory_bytes(), 0);
    }

    #[test]
    fn accumulate_matches_component_sum() {
        let planes = Hyperplanes::new_dense(20, 8, 7, &pool());
        let indices = vec![1u32, 5, 19];
        let values = vec![0.5f32, -1.0, 2.0];
        let mut acc = vec![0.0f32; 8];
        planes.accumulate(&indices, &values, &mut acc);
        for j in 0..8u32 {
            let expect: f32 = indices
                .iter()
                .zip(&values)
                .map(|(&d, &v)| v * planes.component(d, j))
                .sum();
            assert!((acc[j as usize] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn naive_and_vectorized_kernels_agree() {
        let planes = Hyperplanes::new_dense(40, 16, 3, &pool());
        let indices = vec![0u32, 7, 13, 39];
        let values = vec![1.0f32, 0.25, -0.75, 0.125];
        let mut fast = vec![0.0f32; 16];
        let mut slow = vec![0.0f32; 16];
        planes.accumulate(&indices, &values, &mut fast);
        planes.accumulate_naive(&indices, &values, &mut slow);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-4, "{f} vs {s}");
        }
    }

    #[test]
    fn accumulate_adds_into_existing_values() {
        let planes = Hyperplanes::new_dense(5, 2, 11, &pool());
        let mut acc = vec![10.0f32, -10.0];
        planes.accumulate(&[0], &[0.0], &mut acc);
        assert_eq!(acc, vec![10.0, -10.0]);
    }

    #[test]
    fn simd_and_scalar_accumulate_bit_identical() {
        // 19 hash lanes exercises the 16/8/4-lane blocks plus remainder.
        let planes = Hyperplanes::new_dense(64, 19, 13, &pool());
        let indices = vec![0u32, 3, 7, 13, 21, 40, 63];
        let values = vec![1.0f32, -0.25, 0.75, 2.0, -1.5, 0.125, 0.5];
        let mut fast = vec![0.0f32; 19];
        let mut slow = vec![0.0f32; 19];
        planes.accumulate(&indices, &values, &mut fast);
        planes.accumulate_scalar(&indices, &values, &mut slow);
        assert_eq!(fast, slow, "dispatched kernel must match scalar bitwise");
    }

    #[test]
    fn batch_accumulate_matches_per_query() {
        let planes = Hyperplanes::new_dense(40, 12, 17, &pool());
        let queries: Vec<(Vec<u32>, Vec<f32>)> = vec![
            (vec![0, 5, 39], vec![1.0, -2.0, 0.5]),
            (vec![5], vec![3.0]),
            (vec![1, 2, 3, 4, 5, 6], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            (vec![], vec![]),
        ];
        let views: Vec<(&[u32], &[f32])> = queries
            .iter()
            .map(|(i, v)| (i.as_slice(), v.as_slice()))
            .collect();
        let mut accs = vec![0.0f32; queries.len() * 12];
        planes.accumulate_batch(&views, &mut accs);
        for (q, (idx, val)) in queries.iter().enumerate() {
            let mut single = vec![0.0f32; 12];
            planes.accumulate(idx, val, &mut single);
            assert_eq!(
                &accs[q * 12..(q + 1) * 12],
                &single[..],
                "batched hashing must be bit-identical for query {q}"
            );
        }
    }

    #[test]
    fn batch_accumulate_on_the_fly_matches_dense() {
        let dense = Hyperplanes::new_dense(30, 8, 5, &pool());
        let lazy = Hyperplanes::new_on_the_fly(30, 8, 5);
        let idx = vec![2u32, 9, 29];
        let val = vec![0.5f32, -1.0, 2.0];
        let views: Vec<(&[u32], &[f32])> = vec![(&idx, &val)];
        let mut a = vec![0.0f32; 8];
        let mut b = vec![0.0f32; 8];
        dense.accumulate_batch(&views, &mut a);
        lazy.accumulate_batch(&views, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn dense_generation_is_seed_deterministic() {
        let a = Hyperplanes::new_dense(30, 6, 5, &pool());
        let b = Hyperplanes::new_dense(30, 6, 5, &ThreadPool::new(1));
        for d in 0..30 {
            for j in 0..6 {
                assert_eq!(a.component(d, j), b.component(d, j));
            }
        }
        let c = Hyperplanes::new_dense(30, 6, 6, &pool());
        let diffs = (0..30)
            .flat_map(|d| (0..6).map(move |j| (d, j)))
            .filter(|&(d, j)| a.component(d, j) != c.component(d, j))
            .count();
        assert!(diffs > 100, "different seeds must give different planes");
    }
}
