//! Random hyperplane storage and the hashing kernel.
//!
//! Evaluating all hash functions over the corpus is a sparse × dense matrix
//! product (paper Section 5.1.1): the sparse side is the CRS corpus, the
//! dense side is the `D × (m·k/2)` hyperplane matrix. We store the dense
//! matrix **dimension-major** (`planes[d * n_hashes + j]`) so that for each
//! non-zero `(d, value)` of a document the inner loop reads one contiguous
//! row of `n_hashes` floats — the access pattern the paper chooses so "at
//! least one row of the dense matrix is read consecutively", which LLVM
//! auto-vectorizes.
//!
//! For very large vocabularies the dense matrix may not be worth its
//! memory (`D · m·k/2 · 4` bytes); [`HyperplanesKind::OnTheFly`] recomputes
//! components from the counter-based generator instead. Both stores yield
//! bit-identical sketches for the same seed.

use plsh_parallel::ThreadPool;

use crate::rng::gaussian_at;

/// How hyperplane components are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HyperplanesKind {
    /// Materialized dense `D × n_hashes` matrix (fast, memory-hungry).
    Dense,
    /// Recompute every component from the seed on demand (slow, zero
    /// memory) — an extension for vocabularies where the dense matrix
    /// would not fit.
    OnTheFly,
}

/// The `m·k/2` random Gaussian hyperplanes of the hash family.
#[derive(Debug, Clone)]
pub struct Hyperplanes {
    dim: u32,
    n_hashes: u32,
    seed: u64,
    /// Dimension-major dense storage, `None` for on-the-fly.
    dense: Option<Vec<f32>>,
}

impl Hyperplanes {
    /// Materializes the dense hyperplane matrix in parallel.
    pub fn new_dense(dim: u32, n_hashes: u32, seed: u64, pool: &ThreadPool) -> Self {
        let mut data = vec![0.0f32; dim as usize * n_hashes as usize];
        {
            let shared = crate::util::SharedSliceMut::new(&mut data);
            let shared = &shared;
            pool.parallel_for(0, dim as usize, 256, |range| {
                for d in range {
                    let base = d * n_hashes as usize;
                    for j in 0..n_hashes {
                        // SAFETY: every (d, j) slot is owned by exactly one
                        // chunk of the parallel_for.
                        unsafe {
                            shared.write(base + j as usize, gaussian_at(seed, d as u32, j));
                        }
                    }
                }
            });
        }
        Self {
            dim,
            n_hashes,
            seed,
            dense: Some(data),
        }
    }

    /// Creates a memory-free store that recomputes components on demand.
    pub fn new_on_the_fly(dim: u32, n_hashes: u32, seed: u64) -> Self {
        Self {
            dim,
            n_hashes,
            seed,
            dense: None,
        }
    }

    /// Which storage strategy this instance uses.
    pub fn kind(&self) -> HyperplanesKind {
        if self.dense.is_some() {
            HyperplanesKind::Dense
        } else {
            HyperplanesKind::OnTheFly
        }
    }

    /// Dimensionality `D`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of individual hash functions (`m·k/2`).
    pub fn n_hashes(&self) -> u32 {
        self.n_hashes
    }

    /// Bytes held by the dense matrix (0 for on-the-fly).
    pub fn memory_bytes(&self) -> usize {
        self.dense.as_ref().map_or(0, |d| d.len() * 4)
    }

    /// Component of hyperplane `j` along dimension `d`.
    #[inline]
    pub fn component(&self, d: u32, j: u32) -> f32 {
        debug_assert!(d < self.dim && j < self.n_hashes);
        match &self.dense {
            Some(data) => data[d as usize * self.n_hashes as usize + j as usize],
            None => gaussian_at(self.seed, d, j),
        }
    }

    /// Accumulates `acc[j] += value · plane_j[d]` for all `j`, for each
    /// non-zero `(d, value)` of a sparse vector.
    ///
    /// This is the vectorization-friendly kernel: the inner loop walks a
    /// contiguous row of the dimension-major dense matrix.
    #[inline]
    pub fn accumulate(&self, indices: &[u32], values: &[f32], acc: &mut [f32]) {
        debug_assert_eq!(acc.len(), self.n_hashes as usize);
        match &self.dense {
            Some(data) => {
                let nh = self.n_hashes as usize;
                for (&d, &v) in indices.iter().zip(values) {
                    let row = &data[d as usize * nh..d as usize * nh + nh];
                    for (a, &p) in acc.iter_mut().zip(row) {
                        *a += v * p;
                    }
                }
            }
            None => {
                for (&d, &v) in indices.iter().zip(values) {
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += v * gaussian_at(self.seed, d, j as u32);
                    }
                }
            }
        }
    }

    /// The deliberately unvectorized variant of [`accumulate`](Self::accumulate): hash
    /// functions on the outer loop, sparse vector re-walked per function.
    ///
    /// This is the "before vectorization" baseline of Figure 4 — it
    /// produces identical results but strides through the dense matrix
    /// column-wise (stride `n_hashes`), defeating both SIMD and the
    /// hardware prefetcher.
    pub fn accumulate_naive(&self, indices: &[u32], values: &[f32], acc: &mut [f32]) {
        debug_assert_eq!(acc.len(), self.n_hashes as usize);
        for (j, a) in acc.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for (&d, &v) in indices.iter().zip(values) {
                sum += v * self.component(d, j as u32);
            }
            *a += sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    #[test]
    fn dense_and_on_the_fly_agree() {
        let dense = Hyperplanes::new_dense(50, 12, 99, &pool());
        let lazy = Hyperplanes::new_on_the_fly(50, 12, 99);
        for d in 0..50 {
            for j in 0..12 {
                assert_eq!(dense.component(d, j), lazy.component(d, j));
            }
        }
    }

    #[test]
    fn kinds_and_memory() {
        let dense = Hyperplanes::new_dense(10, 4, 1, &pool());
        assert_eq!(dense.kind(), HyperplanesKind::Dense);
        assert_eq!(dense.memory_bytes(), 10 * 4 * 4);
        let lazy = Hyperplanes::new_on_the_fly(10, 4, 1);
        assert_eq!(lazy.kind(), HyperplanesKind::OnTheFly);
        assert_eq!(lazy.memory_bytes(), 0);
    }

    #[test]
    fn accumulate_matches_component_sum() {
        let planes = Hyperplanes::new_dense(20, 8, 7, &pool());
        let indices = vec![1u32, 5, 19];
        let values = vec![0.5f32, -1.0, 2.0];
        let mut acc = vec![0.0f32; 8];
        planes.accumulate(&indices, &values, &mut acc);
        for j in 0..8u32 {
            let expect: f32 = indices
                .iter()
                .zip(&values)
                .map(|(&d, &v)| v * planes.component(d, j))
                .sum();
            assert!((acc[j as usize] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn naive_and_vectorized_kernels_agree() {
        let planes = Hyperplanes::new_dense(40, 16, 3, &pool());
        let indices = vec![0u32, 7, 13, 39];
        let values = vec![1.0f32, 0.25, -0.75, 0.125];
        let mut fast = vec![0.0f32; 16];
        let mut slow = vec![0.0f32; 16];
        planes.accumulate(&indices, &values, &mut fast);
        planes.accumulate_naive(&indices, &values, &mut slow);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-4, "{f} vs {s}");
        }
    }

    #[test]
    fn accumulate_adds_into_existing_values() {
        let planes = Hyperplanes::new_dense(5, 2, 11, &pool());
        let mut acc = vec![10.0f32, -10.0];
        planes.accumulate(&[0], &[0.0], &mut acc);
        assert_eq!(acc, vec![10.0, -10.0]);
    }

    #[test]
    fn dense_generation_is_seed_deterministic() {
        let a = Hyperplanes::new_dense(30, 6, 5, &pool());
        let b = Hyperplanes::new_dense(30, 6, 5, &ThreadPool::new(1));
        for d in 0..30 {
            for j in 0..6 {
                assert_eq!(a.component(d, j), b.component(d, j));
            }
        }
        let c = Hyperplanes::new_dense(30, 6, 6, &pool());
        let diffs = (0..30)
            .flat_map(|d| (0..6).map(move |j| (d, j)))
            .filter(|&(d, j)| a.component(d, j) != c.component(d, j))
            .count();
        assert!(diffs > 100, "different seeds must give different planes");
    }
}
