//! Named failpoints for runtime fault injection.
//!
//! The crash-recovery property tests simulate *power cuts* through
//! [`persist::fail`](crate::persist::fail) — the disk freezes and the
//! process dies. This module covers the other half of the failure space:
//! the process *survives* while an operation misbehaves — a WAL append
//! returns `EIO`, an fsync stalls, a merge worker panics. Each such site
//! has a name; tests (or the `PLSH_FAULTS` environment variable) arm an
//! injection per site, and the production code path asks the site on
//! every passage.
//!
//! Disarmed cost is one relaxed atomic load — the framework compiles into
//! release builds and stays resident in production binaries.
//!
//! ## Sites
//!
//! | site | layer | checked by |
//! |---|---|---|
//! | `wal.append` | WAL record write | [`io_check`] |
//! | `wal.fsync` | WAL batch-boundary fsync | [`io_check`] |
//! | `seal.segment` | generation segment freeze | [`io_check`] |
//! | `manifest.swap` | merge-publish manifest rename | [`io_check`] |
//! | `tomb.append` | tombstone log append | [`io_check`] |
//! | `static.prepare` | off-to-the-side static segment write | [`io_check`] |
//! | `merge.build` | background merge worker, per attempt | [`point`] |
//! | `ingest.batch` | per-shard ingest worker, per batch | [`point`] |
//! | `query.shard` | per-shard query fan-out task | [`point`] |
//!
//! ## Environment syntax
//!
//! `PLSH_FAULTS` holds `;`-separated entries, each `site=kind[:opts]`
//! where `kind` is `err`, `panic`, or `delay`, and `opts` is a
//! `,`-separated list of `p=<0..1>` (fire probability, default 1),
//! `after=<n>` (skip the first `n` passages), `times=<n>` (fire at most
//! `n` times; 0 = unlimited), and `ms=<n>` (delay duration). Example:
//!
//! ```text
//! PLSH_FAULTS="wal.append=err:times=2;merge.build=panic:after=1,times=1"
//! ```
//!
//! `PLSH_FAULT_SEED` seeds the probability rolls so probabilistic runs
//! reproduce. Programmatic [`arm`]/[`disarm_all`] override the
//! environment; the registry is process-global, so tests that arm it
//! must serialize among themselves.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use crate::rng::SplitMix64;

/// WAL record write for an insert batch.
pub const WAL_APPEND: &str = "wal.append";
/// WAL batch-boundary fsync.
pub const WAL_FSYNC: &str = "wal.fsync";
/// Immutable segment write when a generation seals.
pub const SEAL_SEGMENT: &str = "seal.segment";
/// The merge-publish manifest rename-swap (the durability commit point).
pub const MANIFEST_SWAP: &str = "manifest.swap";
/// Tombstone log append.
pub const TOMB_APPEND: &str = "tomb.append";
/// Off-to-the-side static segment write before a merge publishes.
pub const STATIC_PREPARE: &str = "static.prepare";
/// Background merge worker, once per supervised attempt.
pub const MERGE_BUILD: &str = "merge.build";
/// Per-shard ingest worker, once per dequeued batch.
pub const INGEST_BATCH: &str = "ingest.batch";
/// Per-shard query fan-out task, once per shard visit.
pub const QUERY_SHARD: &str = "query.shard";

/// Every failpoint name, for diagnostics and doc tests.
pub const SITES: &[&str] = &[
    WAL_APPEND,
    WAL_FSYNC,
    SEAL_SEGMENT,
    MANIFEST_SWAP,
    TOMB_APPEND,
    STATIC_PREPARE,
    MERGE_BUILD,
    INGEST_BATCH,
    QUERY_SHARD,
];

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an injected `io::Error` (transient-or-persistent disk
    /// error, depending on `times`). At a [`point`] site — which has no
    /// error channel — this panics instead.
    Err,
    /// Panic with a recognizable message (exercises `catch_unwind`
    /// supervision).
    Panic,
    /// Sleep for the given duration, then proceed normally (exercises
    /// deadlines and back-pressure).
    Delay(Duration),
}

/// A programmable injection: what to do, how often, for how long.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    kind: FaultKind,
    probability: f64,
    after: u64,
    times: u64,
}

impl FaultSpec {
    /// An injection that fires on every passage, forever.
    pub fn new(kind: FaultKind) -> Self {
        Self {
            kind,
            probability: 1.0,
            after: 0,
            times: 0,
        }
    }

    /// Fire with probability `p` per passage (seeded by
    /// `PLSH_FAULT_SEED`, so runs reproduce).
    pub fn probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Let the first `n` passages through unharmed.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Fire at most `n` times (0 = unlimited — a persistent fault).
    pub fn times(mut self, n: u64) -> Self {
        self.times = n;
        self
    }
}

struct Injection {
    spec: FaultSpec,
    hits: u64,
    fired: u64,
}

struct Registry {
    sites: HashMap<String, Injection>,
    rng: SplitMix64,
}

impl Registry {
    fn new() -> Self {
        let seed = std::env::var("PLSH_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self {
            sites: HashMap::new(),
            rng: SplitMix64::new(seed),
        }
    }
}

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Tri-state so the disarmed fast path is one relaxed load and the
/// environment is parsed at most once, lazily, on the first passage.
static ACTIVE: AtomicU8 = AtomicU8::new(UNINIT);
static FIRED_TOTAL: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn lock() -> MutexGuard<'static, Option<Registry>> {
    // A panic injection fires *while holding no lock*, but a panicking
    // worker thread may still die between `fire` and its own cleanup —
    // never let that poison cascade into every later failpoint passage.
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

#[inline]
fn armed() -> bool {
    match ACTIVE.load(Ordering::Relaxed) {
        OFF => false,
        ON => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let mut guard = lock();
    match ACTIVE.load(Ordering::Relaxed) {
        OFF => return false,
        ON => return true,
        _ => {}
    }
    let reg = guard.get_or_insert_with(Registry::new);
    if let Ok(spec) = std::env::var("PLSH_FAULTS") {
        for entry in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            match parse_entry(entry) {
                Ok((site, spec)) => {
                    reg.sites.insert(
                        site,
                        Injection {
                            spec,
                            hits: 0,
                            fired: 0,
                        },
                    );
                }
                Err(msg) => {
                    eprintln!("plsh: ignoring malformed PLSH_FAULTS entry {entry:?}: {msg}")
                }
            }
        }
    }
    let on = !reg.sites.is_empty();
    ACTIVE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

fn parse_entry(entry: &str) -> Result<(String, FaultSpec), String> {
    let (site, rest) = entry
        .split_once('=')
        .ok_or_else(|| "expected site=kind[:opts]".to_string())?;
    let (kind, opts) = match rest.split_once(':') {
        Some((k, o)) => (k.trim(), Some(o)),
        None => (rest.trim(), None),
    };
    let mut probability = 1.0f64;
    let mut after = 0u64;
    let mut times = 0u64;
    let mut ms = 10u64;
    if let Some(opts) = opts {
        for opt in opts.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, val) = opt
                .split_once('=')
                .ok_or_else(|| format!("option {opt:?} is not key=value"))?;
            match key.trim() {
                "p" => {
                    probability = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad probability {val:?}"))?
                }
                "after" => {
                    after = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad after {val:?}"))?
                }
                "times" => {
                    times = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad times {val:?}"))?
                }
                "ms" => ms = val.trim().parse().map_err(|_| format!("bad ms {val:?}"))?,
                other => return Err(format!("unknown option {other:?}")),
            }
        }
    }
    let kind = match kind {
        "err" | "error" => FaultKind::Err,
        "panic" => FaultKind::Panic,
        "delay" => FaultKind::Delay(Duration::from_millis(ms)),
        other => return Err(format!("unknown kind {other:?} (err|panic|delay)")),
    };
    let spec = FaultSpec::new(kind)
        .probability(probability)
        .after(after)
        .times(times);
    Ok((site.trim().to_string(), spec))
}

/// Arms `site` with `spec`, replacing any previous injection there.
/// Process-global; overrides whatever `PLSH_FAULTS` configured.
pub fn arm(site: &str, spec: FaultSpec) {
    let mut guard = lock();
    let reg = guard.get_or_insert_with(Registry::new);
    reg.sites.insert(
        site.to_string(),
        Injection {
            spec,
            hits: 0,
            fired: 0,
        },
    );
    ACTIVE.store(ON, Ordering::Relaxed);
}

/// Disarms one site, leaving the rest armed.
pub fn disarm(site: &str) {
    let mut guard = lock();
    if let Some(reg) = guard.as_mut() {
        reg.sites.remove(site);
        if reg.sites.is_empty() {
            ACTIVE.store(OFF, Ordering::Relaxed);
        }
    } else {
        ACTIVE.store(OFF, Ordering::Relaxed);
    }
}

/// Disarms every site. Also pins the registry to the OFF state, so a
/// later passage will *not* re-parse `PLSH_FAULTS`.
pub fn disarm_all() {
    let mut guard = lock();
    if let Some(reg) = guard.as_mut() {
        reg.sites.clear();
    } else {
        *guard = Some(Registry::new());
    }
    ACTIVE.store(OFF, Ordering::Relaxed);
}

/// How many times `site` has fired since it was last armed.
pub fn fired(site: &str) -> u64 {
    lock()
        .as_ref()
        .and_then(|r| r.sites.get(site))
        .map_or(0, |i| i.fired)
}

/// Total injections fired across all sites since process start (or the
/// last [`reset_counters`]).
pub fn fired_total() -> u64 {
    FIRED_TOTAL.load(Ordering::Relaxed)
}

/// Zeroes the global and per-site counters (armed specs stay armed).
pub fn reset_counters() {
    FIRED_TOTAL.store(0, Ordering::Relaxed);
    if let Some(reg) = lock().as_mut() {
        for inj in reg.sites.values_mut() {
            inj.hits = 0;
            inj.fired = 0;
        }
    }
}

fn fire(site: &str) -> Option<FaultKind> {
    let mut guard = lock();
    let reg = guard.as_mut()?;
    let Registry { sites, rng } = reg;
    let inj = sites.get_mut(site)?;
    inj.hits += 1;
    if inj.hits <= inj.spec.after {
        return None;
    }
    if inj.spec.times != 0 && inj.fired >= inj.spec.times {
        return None;
    }
    if inj.spec.probability < 1.0 && rng.next_f64() >= inj.spec.probability {
        return None;
    }
    inj.fired += 1;
    FIRED_TOTAL.fetch_add(1, Ordering::Relaxed);
    Some(inj.spec.kind)
}

/// The check an I/O-capable site performs on every passage: `Ok(())`
/// when disarmed or not firing, an injected error / panic / delay
/// otherwise. One relaxed atomic load when disarmed.
#[inline]
pub fn io_check(site: &str) -> io::Result<()> {
    if !armed() {
        return Ok(());
    }
    match fire(site) {
        None => Ok(()),
        Some(FaultKind::Err) => Err(io::Error::other(format!("injected fault at {site}"))),
        Some(FaultKind::Panic) => panic!("injected panic at failpoint {site}"),
        Some(FaultKind::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// The check a non-I/O site (worker loop, query task) performs: panics
/// or delays when firing. An `Err` injection at a point site panics too
/// — there is no error channel to thread it through.
#[inline]
pub fn point(site: &str) {
    if !armed() {
        return;
    }
    match fire(site) {
        None => {}
        Some(FaultKind::Err | FaultKind::Panic) => {
            panic!("injected panic at failpoint {site}")
        }
        Some(FaultKind::Delay(d)) => std::thread::sleep(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global registry.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_sites_pass() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        assert!(io_check(WAL_APPEND).is_ok());
        point(MERGE_BUILD);
    }

    #[test]
    fn err_injection_counts_and_respects_times() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        reset_counters();
        arm(WAL_APPEND, FaultSpec::new(FaultKind::Err).after(1).times(2));
        assert!(io_check(WAL_APPEND).is_ok(), "after=1 spares the first");
        assert!(io_check(WAL_APPEND).is_err());
        assert!(io_check(WAL_APPEND).is_err());
        assert!(io_check(WAL_APPEND).is_ok(), "times=2 exhausted");
        assert_eq!(fired(WAL_APPEND), 2);
        assert_eq!(fired_total(), 2);
        disarm_all();
    }

    #[test]
    fn point_panics_on_injection() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm(MERGE_BUILD, FaultSpec::new(FaultKind::Panic).times(1));
        let r = std::panic::catch_unwind(|| point(MERGE_BUILD));
        assert!(r.is_err(), "armed point must panic");
        point(MERGE_BUILD); // exhausted: passes
        disarm_all();
    }

    #[test]
    fn delay_injection_sleeps() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm(
            QUERY_SHARD,
            FaultSpec::new(FaultKind::Delay(Duration::from_millis(30))).times(1),
        );
        let t0 = std::time::Instant::now();
        point(QUERY_SHARD);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        disarm_all();
    }

    #[test]
    fn env_syntax_parses() {
        let (site, spec) = parse_entry("wal.append=err:p=0.5,after=3,times=7").unwrap();
        assert_eq!(site, WAL_APPEND);
        assert_eq!(spec.kind, FaultKind::Err);
        assert!((spec.probability - 0.5).abs() < 1e-12);
        assert_eq!((spec.after, spec.times), (3, 7));

        let (_, spec) = parse_entry("query.shard=delay:ms=50").unwrap();
        assert_eq!(spec.kind, FaultKind::Delay(Duration::from_millis(50)));

        assert!(parse_entry("nonsense").is_err());
        assert!(parse_entry("a=explode").is_err());
        assert!(parse_entry("a=err:p=x").is_err());
    }
}
