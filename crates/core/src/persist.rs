//! Incremental durability: WAL + segment-per-generation persistence.
//!
//! [`Snapshot`](crate::snapshot::Snapshot) gives whole-index save/restore,
//! but a streaming node that ingests a firehose cannot afford to rewrite
//! its entire corpus on every batch. This module makes the *in-memory*
//! lifecycle durable piece by piece, mirroring the on-disk format on the
//! engine's own segmented structure:
//!
//! * **WAL for the open generation.** Every `insert_batch` appends one
//!   checksummed record to `wal-<base>.log` *before* the rows are applied
//!   in memory, and fsyncs on the batch boundary. A torn tail (power cut
//!   mid-record) is detected by the length/checksum framing and dropped at
//!   recovery — only the un-synced tail op can be lost.
//! * **A segment per sealed generation.** Sealing writes the generation's
//!   rows to an immutable `gen-<base>.seg` (tmp + rename), then retires
//!   the WAL that covered it. Sealed generations never change, so the
//!   segment is written exactly once.
//! * **Deletes in a tombstone log.** `delete` appends to `tomb.log`
//!   (fsync per record — deletes are rare). The log is truncated when a
//!   merge publishes, because the manifest written at that point snapshots
//!   every pending and purged tombstone.
//! * **Merge publishes a static segment + manifest swap.** The merged
//!   corpus is written off to the side as `static-<seq>.seg` while queries
//!   keep running; at publish time the `MANIFEST` (parameters, static
//!   segment, purged + pending tombstones) is swapped via an atomic
//!   rename, and the generation segments and WALs the merge consumed are
//!   retired. The rename is the commit point: a crash on either side of
//!   it recovers to a consistent state (before: the old manifest plus the
//!   still-present generation files; after: the new static segment, with
//!   leftovers garbage-collected on attach).
//!
//! ## Recovery
//!
//! [`load_state`] reads the manifest, loads the static segment, then walks
//! generation segments contiguously from `static_len`, falls through to
//! the live WAL for the open tail, and finally replays the tombstone log.
//! Rebuilding the [`Engine`] follows the same order as
//! [`Snapshot::restore`](crate::snapshot::Snapshot::restore): insert the
//! static prefix, tombstone + merge-purge the purged ids (so the purge
//! accounting matches), replay each generation as its own sealed
//! generation, then re-apply the tombstones. Generation boundaries are an
//! ingest-batching artifact with no effect on answers (property-tested),
//! so a recovered engine answers bit-identically to a from-scratch build
//! over the same rows.
//!
//! ## Failure model
//!
//! Persistence hooks run under the engine's write mutex and return
//! `io::Result`: a failing operation is retried a bounded number of
//! times with jittered exponential backoff (transient `EIO`/disk-full
//! blips are absorbed and counted), and a failure that survives the
//! retry budget bubbles up to the engine, which transitions into
//! **degraded read-only mode** — queries keep answering off the pinned
//! epoch, writes return [`PlshError::Degraded`](crate::error::PlshError)
//! — rather than panicking or silently diverging memory from disk.
//! [`Engine::heal`](crate::engine::Engine::heal) exits degraded mode by
//! `EnginePersister::resync`-ing the directory from a fresh baseline.
//! Every hook is also threaded through the named failpoints of
//! [`crate::fault`] (`wal.append`, `wal.fsync`, `seal.segment`,
//! `manifest.swap`, `tomb.append`, `static.prepare`) so the chaos suite
//! can inject exactly these failures. Simulated power cuts for the
//! crash-recovery property tests are injected through the separate
//! [`fail`] facility, which freezes all persistence I/O after a budgeted
//! number of low-level operations (the op at the boundary tears).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use plsh_parallel::ThreadPool;

use crate::fault;

use crate::engine::{Engine, EngineConfig, WindowSpec};
use crate::error::Result as PlshResult;
use crate::params::PlshParams;
use crate::sparse::{CrsMatrix, SparseVector};
use crate::table::DeltaGeneration;

const MANIFEST: &str = "MANIFEST";
const MANIFEST_MAGIC: &[u8; 4] = b"PLSM";
const STATIC_MAGIC: &[u8; 4] = b"PLSS";
const GEN_MAGIC: &[u8; 4] = b"PLSG";
const VERSION: u32 = 1;
/// Manifest format version. v2 added the sliding-window fields
/// (`static_base`, `retired_below`, window spec); v1 manifests are read
/// back with all three at their no-window defaults.
const MANIFEST_VERSION: u32 = 2;
/// No static segment yet (empty engine or everything still in the delta).
const NO_STATIC: u64 = u64::MAX;
/// Upper bound on one WAL record's payload — anything larger is framing
/// corruption, not data.
const MAX_RECORD: u32 = 1 << 30;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
/// Retirement-watermark advance in the tombstone log: the payload is the
/// new watermark, and replay takes the max (the watermark is monotone).
const TAG_RETIRE: u8 = 3;

/// Window spec tags in the manifest (`tag | u64 payload`).
const WINDOW_NONE: u8 = 0;
const WINDOW_DOCS: u8 = 1;
const WINDOW_DURATION: u8 = 2;

/// Simulated power cuts for crash-recovery tests.
///
/// `arm(n)` lets the next `n` low-level persistence operations (writes,
/// fsyncs, renames, removals, file creations) through, tears the `n`-th
/// write in half, and silently freezes everything after it — exactly what
/// a power cut mid-operation leaves on disk. The engine keeps running
/// in memory; recovery is then exercised against the frozen directory.
/// Process-global: tests that arm it must serialize among themselves.
#[doc(hidden)]
pub mod fail {
    use super::{AtomicBool, AtomicI64, AtomicU64, Ordering};

    static ARMED: AtomicBool = AtomicBool::new(false);
    static REMAINING: AtomicI64 = AtomicI64::new(0);
    static USED: AtomicU64 = AtomicU64::new(0);

    #[derive(PartialEq, Clone, Copy)]
    pub(super) enum Gate {
        /// Perform the operation normally.
        Live,
        /// The power cut lands on this operation: tear it (writes) or
        /// drop it (everything else).
        Boundary,
        /// The disk is gone; the operation silently does nothing.
        Frozen,
    }

    pub(super) fn gate() -> Gate {
        if !ARMED.load(Ordering::Relaxed) {
            return Gate::Live;
        }
        USED.fetch_add(1, Ordering::Relaxed);
        match REMAINING.fetch_sub(1, Ordering::Relaxed) {
            r if r > 1 => Gate::Live,
            1 => Gate::Boundary,
            _ => Gate::Frozen,
        }
    }

    /// Allow `ops` persistence operations, then cut the power.
    pub fn arm(ops: i64) {
        REMAINING.store(ops, Ordering::Relaxed);
        USED.store(0, Ordering::Relaxed);
        ARMED.store(true, Ordering::Relaxed);
    }

    /// Restore normal (unlimited, real) persistence I/O.
    pub fn disarm() {
        ARMED.store(false, Ordering::Relaxed);
    }

    /// Operations attempted since the last `arm` (counts frozen ones too).
    pub fn ops_used() -> u64 {
        USED.load(Ordering::Relaxed)
    }
}

/// A persistence file handle; `None` when the simulated power cut struck
/// at creation time (all subsequent I/O on it no-ops).
struct PFile {
    file: Option<File>,
}

impl PFile {
    /// Truncate back to `len` — drops a half-appended record left behind
    /// by a failed earlier attempt, so a retry never appends after a torn
    /// record (replay stops at the first one).
    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        match self.file.as_mut() {
            Some(f) => f.set_len(len),
            None => Ok(()),
        }
    }

    /// Current on-disk length (0 for a frozen handle).
    fn len(&self) -> io::Result<u64> {
        match &self.file {
            Some(f) => f.metadata().map(|m| m.len()),
            None => Ok(0),
        }
    }
}

fn fio_create(path: &Path) -> io::Result<PFile> {
    match fail::gate() {
        fail::Gate::Live => Ok(PFile {
            file: Some(File::create(path)?),
        }),
        _ => Ok(PFile { file: None }),
    }
}

fn fio_append(path: &Path) -> io::Result<PFile> {
    match fail::gate() {
        fail::Gate::Live => Ok(PFile {
            file: Some(OpenOptions::new().append(true).create(true).open(path)?),
        }),
        _ => Ok(PFile { file: None }),
    }
}

fn fio_write(f: &mut PFile, bytes: &[u8]) -> io::Result<()> {
    let Some(file) = f.file.as_mut() else {
        return Ok(());
    };
    match fail::gate() {
        fail::Gate::Live => file.write_all(bytes),
        fail::Gate::Boundary => {
            // The cut lands mid-write: half the buffer reaches the disk.
            file.write_all(&bytes[..bytes.len() / 2])?;
            f.file = None;
            Ok(())
        }
        fail::Gate::Frozen => {
            f.file = None;
            Ok(())
        }
    }
}

fn fio_fsync(f: &mut PFile) -> io::Result<()> {
    let Some(file) = f.file.as_mut() else {
        return Ok(());
    };
    match fail::gate() {
        fail::Gate::Live => file.sync_data(),
        _ => {
            f.file = None;
            Ok(())
        }
    }
}

fn fio_rename(from: &Path, to: &Path) -> io::Result<()> {
    match fail::gate() {
        fail::Gate::Live => fs::rename(from, to),
        _ => Ok(()),
    }
}

fn fio_remove(path: &Path) -> io::Result<()> {
    match fail::gate() {
        fail::Gate::Live => match fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            r => r,
        },
        _ => Ok(()),
    }
}

/// Write `bytes` to `path` atomically: tmp file, fsync, rename.
fn fio_write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = fio_create(&tmp)?;
    fio_write(&mut f, bytes)?;
    fio_fsync(&mut f)?;
    drop(f);
    fio_rename(&tmp, path)
}

// ---------------------------------------------------------------------
// Binary helpers (little-endian, same idiom as the snapshot format).
// ---------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, x: f32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn get_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// FNV-1a, the record checksum (cheap, endian-free, catches torn tails).
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_rows<'a>(out: &mut Vec<u8>, rows: impl ExactSizeIterator<Item = SparseVector> + 'a) {
    put_u64(out, rows.len() as u64);
    for v in rows {
        put_u32(out, v.nnz() as u32);
        for &d in v.indices() {
            put_u32(out, d);
        }
        for &x in v.values() {
            put_f32(out, x);
        }
    }
}

fn get_rows<R: Read>(r: &mut R) -> io::Result<Vec<SparseVector>> {
    let n = get_u64(r)? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for i in 0..n {
        let nnz = get_u32(r)? as usize;
        if nnz > MAX_RECORD as usize {
            return Err(bad(format!("row {i}: implausible nnz {nnz}")));
        }
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(get_u32(r)?);
        }
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(get_f32(r)?);
        }
        rows.push(SparseVector::from_sorted(indices, values).map_err(|e| bad(e.to_string()))?);
    }
    Ok(rows)
}

fn gen_rows(g: &DeltaGeneration) -> impl ExactSizeIterator<Item = SparseVector> + '_ {
    (0..g.len() as u32).map(|local| g.data().row_vector(local))
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Manifest {
    params: PlshParams,
    capacity: u64,
    eta: f64,
    seal_min_points: u64,
    /// Data-directory generation, bumped by `clear` so leftovers of a
    /// previous lifetime can never be replayed as data.
    reset: u64,
    static_seq: Option<u64>,
    static_len: u64,
    /// Global id of static row 0 — everything below it was retired by the
    /// sliding window and compacted away (0 without a window).
    static_base: u64,
    /// Retirement watermark at the time of the snapshot: every id below
    /// it is dead. Invariant: `static_base <= retired_below`.
    retired_below: u64,
    /// The engine's sliding-window spec, so recovery rebuilds a windowed
    /// engine that keeps retiring on its own.
    window: Option<WindowSpec>,
    purged: Vec<u32>,
    pending: Vec<u32>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        put_u32(&mut out, MANIFEST_VERSION);
        put_u32(&mut out, self.params.dim());
        put_u32(&mut out, self.params.k());
        put_u32(&mut out, self.params.m());
        put_f64(&mut out, self.params.radius());
        put_f64(&mut out, self.params.delta());
        put_u64(&mut out, self.params.seed());
        put_u64(&mut out, self.capacity);
        put_f64(&mut out, self.eta);
        put_u64(&mut out, self.seal_min_points);
        put_u64(&mut out, self.reset);
        put_u64(&mut out, self.static_seq.unwrap_or(NO_STATIC));
        put_u64(&mut out, self.static_len);
        put_u64(&mut out, self.static_base);
        put_u64(&mut out, self.retired_below);
        let (wtag, warg) = match self.window {
            None => (WINDOW_NONE, 0u64),
            Some(WindowSpec::Docs(n)) => (WINDOW_DOCS, n as u64),
            Some(WindowSpec::Duration(d)) => (WINDOW_DURATION, d.as_nanos() as u64),
        };
        out.push(wtag);
        put_u64(&mut out, warg);
        put_u64(&mut out, self.purged.len() as u64);
        for &id in &self.purged {
            put_u32(&mut out, id);
        }
        put_u64(&mut out, self.pending.len() as u64);
        for &id in &self.pending {
            put_u32(&mut out, id);
        }
        // Whole-manifest checksum: a manifest is only ever replaced via
        // rename, but an operator-truncated file must fail loudly.
        let crc = checksum(&out);
        put_u32(&mut out, crc);
        out
    }

    fn decode(bytes: &[u8]) -> io::Result<Self> {
        if bytes.len() < 4 + 4 {
            return Err(bad("manifest truncated"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
        if checksum(body) != crc {
            return Err(bad("manifest checksum mismatch"));
        }
        let mut r = body;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MANIFEST_MAGIC {
            return Err(bad("not a plsh persistence manifest (bad magic)"));
        }
        let version = get_u32(&mut r)?;
        if !(1..=MANIFEST_VERSION).contains(&version) {
            return Err(bad(format!("unsupported manifest version {version}")));
        }
        let dim = get_u32(&mut r)?;
        let k = get_u32(&mut r)?;
        let m = get_u32(&mut r)?;
        let radius = get_f64(&mut r)?;
        let delta = get_f64(&mut r)?;
        let seed = get_u64(&mut r)?;
        let params = PlshParams::builder(dim)
            .k(k)
            .m(m)
            .radius(radius)
            .delta(delta)
            .seed(seed)
            .build()
            .map_err(|e| bad(e.to_string()))?;
        let capacity = get_u64(&mut r)?;
        let eta = get_f64(&mut r)?;
        let seal_min_points = get_u64(&mut r)?;
        let reset = get_u64(&mut r)?;
        let static_seq = match get_u64(&mut r)? {
            NO_STATIC => None,
            s => Some(s),
        };
        let static_len = get_u64(&mut r)?;
        if static_seq.is_none() && static_len != 0 {
            return Err(bad("static_len without a static segment"));
        }
        let (static_base, retired_below, window) = if version >= 2 {
            let base = get_u64(&mut r)?;
            let retired = get_u64(&mut r)?;
            if retired < base {
                return Err(bad(format!(
                    "retired_below {retired} below static_base {base}"
                )));
            }
            let mut wtag = [0u8; 1];
            r.read_exact(&mut wtag)?;
            let warg = get_u64(&mut r)?;
            let window = match wtag[0] {
                WINDOW_NONE => None,
                WINDOW_DOCS => {
                    Some(WindowSpec::Docs(u32::try_from(warg).map_err(|_| {
                        bad(format!("implausible window size {warg}"))
                    })?))
                }
                WINDOW_DURATION => Some(WindowSpec::Duration(Duration::from_nanos(warg))),
                t => return Err(bad(format!("unknown window tag {t}"))),
            };
            (base, retired, window)
        } else {
            (0, 0, None)
        };
        let np = get_u64(&mut r)? as usize;
        let mut purged = Vec::with_capacity(np);
        for _ in 0..np {
            let id = get_u32(&mut r)?;
            if (id as u64) < static_base || id as u64 >= static_base + static_len {
                return Err(bad(format!("purged id {id} outside the static prefix")));
            }
            purged.push(id);
        }
        let nd = get_u64(&mut r)? as usize;
        let mut pending = Vec::with_capacity(nd);
        for _ in 0..nd {
            pending.push(get_u32(&mut r)?);
        }
        Ok(Self {
            params,
            capacity,
            eta,
            seal_min_points,
            reset,
            static_seq,
            static_len,
            static_base,
            retired_below,
            window,
            purged,
            pending,
        })
    }
}

// ---------------------------------------------------------------------
// Segment + log encoding
// ---------------------------------------------------------------------

fn encode_segment(magic: &[u8; 4], base: u64, rows: &mut Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows.len() + 24);
    out.extend_from_slice(magic);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, base);
    out.append(rows);
    let crc = checksum(&out);
    put_u32(&mut out, crc);
    out
}

fn decode_segment(
    magic: &[u8; 4],
    expect_base: u64,
    bytes: &[u8],
) -> io::Result<Vec<SparseVector>> {
    if bytes.len() < 4 + 4 + 8 + 4 {
        return Err(bad("segment truncated"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    if checksum(body) != crc {
        return Err(bad("segment checksum mismatch"));
    }
    let mut r = body;
    let mut m = [0u8; 4];
    r.read_exact(&mut m)?;
    if &m != magic {
        return Err(bad("bad segment magic"));
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported segment version {version}")));
    }
    let base = get_u64(&mut r)?;
    if base != expect_base {
        return Err(bad(format!("segment base {base}, expected {expect_base}")));
    }
    get_rows(&mut r)
}

/// One checksummed log record: `len | crc | payload`.
fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, checksum(payload));
    out.extend_from_slice(payload);
    out
}

/// Replay a log's records, stopping silently at the first torn or
/// corrupt record (the un-synced tail of a crash).
fn replay_log(path: &Path, mut on_payload: impl FnMut(&[u8]) -> bool) -> io::Result<()> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD as usize || bytes.len() - at - 8 < len {
            break; // torn tail
        }
        let payload = &bytes[at + 8..at + 8 + len];
        if checksum(payload) != crc {
            break; // torn tail
        }
        if !on_payload(payload) {
            break; // malformed payload: treat like a torn tail
        }
        at += 8 + len;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// File layout
// ---------------------------------------------------------------------

fn data_dir(dir: &Path, reset: u64) -> PathBuf {
    dir.join(format!("data-{reset}"))
}

fn static_path(data: &Path, seq: u64) -> PathBuf {
    data.join(format!("static-{seq}.seg"))
}

fn gen_path(data: &Path, base: u32) -> PathBuf {
    data.join(format!("gen-{base}.seg"))
}

fn wal_path(data: &Path, base: u32) -> PathBuf {
    data.join(format!("wal-{base}.log"))
}

fn tomb_path(data: &Path) -> PathBuf {
    data.join("tomb.log")
}

/// Parse `<prefix><number><suffix>` file names (`gen-17.seg` → 17).
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------
// The attached persister
// ---------------------------------------------------------------------

/// Everything the baseline write needs, captured under the engine's
/// write lock so the parts are mutually consistent.
pub(crate) struct Baseline<'a> {
    pub params: &'a PlshParams,
    pub capacity: u64,
    pub eta: f64,
    pub seal_min_points: u64,
    pub window: Option<WindowSpec>,
    /// Global id of `static_data` row 0 (the compaction cut).
    pub static_base: u32,
    /// Retirement watermark at capture time (`>= static_base`).
    pub retired_below: u32,
    pub static_data: &'a CrsMatrix,
    pub static_len: usize,
    pub sealed: &'a [Arc<DeltaGeneration>],
    pub open: Option<&'a DeltaGeneration>,
    pub purged: &'a [u32],
    pub pending: Vec<u32>,
}

struct WalWriter {
    file: PFile,
    base: u32,
    rows: u32,
    /// Bytes known to hold whole, durable records (the truncation point
    /// for retries after a failed append).
    good: u64,
}

struct TombWriter {
    file: PFile,
    good: u64,
}

struct PersistState {
    data: PathBuf,
    manifest: Manifest,
    next_static_seq: u64,
    wal: Option<WalWriter>,
    tomb: Option<TombWriter>,
}

/// The durable side of one [`Engine`], attached by
/// [`Engine::persist_to`] / [`Engine::recover_from`] and driven by the
/// engine's write path (all hooks run under the engine's write mutex).
pub struct EnginePersister {
    dir: PathBuf,
    state: Mutex<PersistState>,
    /// Transient I/O errors absorbed by retry-with-backoff (health metric).
    retries: AtomicU64,
}

/// Seed stream for retry jitter: one counter feeding SplitMix64, so two
/// engines retrying concurrently don't sleep in lockstep.
static JITTER_SALT: AtomicU64 = AtomicU64::new(0x5bd1_e995);

fn jittered(delay: Duration) -> Duration {
    let salt = JITTER_SALT.fetch_add(1, Ordering::Relaxed);
    let r = crate::rng::SplitMix64::new(salt).next_u64();
    delay + Duration::from_nanos(r % (delay.as_nanos() as u64 / 2).max(1))
}

/// Writes the segment/WAL files of a full baseline into `data` (shared
/// by [`EnginePersister::create`] and [`EnginePersister::resync`]).
/// Returns the static sequence used (if any) and the open WAL writer.
fn write_baseline(data: &Path, b: &Baseline<'_>) -> io::Result<(Option<u64>, Option<WalWriter>)> {
    let static_seq = if b.static_len > 0 { Some(0u64) } else { None };
    if let Some(seq) = static_seq {
        let mut rows = Vec::new();
        put_rows(
            &mut rows,
            (0..b.static_len as u32).map(|id| b.static_data.row_vector(id)),
        );
        let bytes = encode_segment(STATIC_MAGIC, b.static_base as u64, &mut rows);
        fio_write_atomic(&static_path(data, seq), &bytes)?;
    }
    for g in b.sealed {
        let mut rows = Vec::new();
        put_rows(&mut rows, gen_rows(g));
        let bytes = encode_segment(GEN_MAGIC, g.base() as u64, &mut rows);
        fio_write_atomic(&gen_path(data, g.base()), &bytes)?;
    }
    let wal = match b.open {
        Some(g) if !g.is_empty() => {
            let mut payload = Vec::new();
            payload.push(TAG_INSERT);
            put_u32(&mut payload, g.base());
            put_rows(&mut payload, gen_rows(g));
            let record = encode_record(&payload);
            let mut f = fio_create(&wal_path(data, g.base()))?;
            fio_write(&mut f, &record)?;
            fio_fsync(&mut f)?;
            Some(WalWriter {
                file: f,
                base: g.base(),
                rows: g.len() as u32,
                good: record.len() as u64,
            })
        }
        _ => None,
    };
    Ok((static_seq, wal))
}

impl EnginePersister {
    /// Writes a full baseline of the engine's current contents into `dir`
    /// (which must not already hold a persisted index) and returns the
    /// attached persister.
    pub(crate) fn create(dir: &Path, b: &Baseline<'_>) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        if dir.join(MANIFEST).exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds a persisted index; recover from it or choose an empty \
                     directory",
                    dir.display()
                ),
            ));
        }
        let reset = 0u64;
        let data = data_dir(dir, reset);
        fs::create_dir_all(&data)?;

        let (static_seq, wal) = write_baseline(&data, b)?;
        let manifest = Manifest {
            params: b.params.clone(),
            capacity: b.capacity,
            eta: b.eta,
            seal_min_points: b.seal_min_points,
            reset,
            static_seq,
            static_len: b.static_len as u64,
            static_base: b.static_base as u64,
            retired_below: b.retired_below as u64,
            window: b.window,
            purged: b.purged.to_vec(),
            pending: b.pending.clone(),
        };
        fio_write_atomic(&dir.join(MANIFEST), &manifest.encode())?;

        Ok(Self {
            dir: dir.to_path_buf(),
            state: Mutex::new(PersistState {
                data,
                manifest,
                next_static_seq: static_seq.map_or(0, |s| s + 1),
                wal,
                tomb: None,
            }),
            retries: AtomicU64::new(0),
        })
    }

    /// Re-attaches to a recovered directory: compacts the replayed WAL
    /// tail into a generation segment (the recovered engine sealed those
    /// rows) and garbage-collects everything recovery did not use.
    pub(crate) fn attach_recovered(dir: &Path, st: &RecoveredState) -> io::Result<Self> {
        let data = data_dir(dir, st.manifest.reset);
        fs::create_dir_all(&data)?;

        // Compact: rows recovered out of a WAL are sealed generations in
        // the rebuilt engine, so give them their immutable segment and
        // retire the log (segment first — the WAL stays authoritative
        // until its replacement is fully on disk).
        for (base, rows, from_wal) in &st.gens {
            if !from_wal {
                continue;
            }
            let mut buf = Vec::new();
            put_rows(&mut buf, rows.iter().cloned());
            let bytes = encode_segment(GEN_MAGIC, *base as u64, &mut buf);
            fio_write_atomic(&gen_path(&data, *base), &bytes)?;
            fio_remove(&wal_path(&data, *base))?;
        }

        let me = Self {
            dir: dir.to_path_buf(),
            state: Mutex::new(PersistState {
                data,
                manifest: st.manifest.clone(),
                next_static_seq: st.manifest.static_seq.map_or(0, |s| s + 1),
                wal: None,
                tomb: None,
            }),
            retries: AtomicU64::new(0),
        };
        me.gc(st);
        Ok(me)
    }

    /// Best-effort removal of files recovery did not consume: stale data
    /// directories from pre-`clear` lifetimes, retired static segments,
    /// and generation segments / WALs beyond the recovered contiguous
    /// prefix (or below the static watermark).
    fn gc(&self, st: &RecoveredState) {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy().into_owned();
                if let Some(r) = parse_numbered(&name, "data-", "") {
                    if r != st.manifest.reset {
                        let _ = fs::remove_dir_all(e.path());
                    }
                }
            }
        }
        let live_gens: Vec<u32> = st.gens.iter().map(|(b, _, _)| *b).collect();
        if let Ok(entries) = fs::read_dir(&s.data) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy().into_owned();
                let stale = if let Some(seq) = parse_numbered(&name, "static-", ".seg") {
                    Some(seq) != st.manifest.static_seq
                } else if let Some(b) = parse_numbered(&name, "gen-", ".seg") {
                    !live_gens.contains(&(b as u32))
                } else if parse_numbered(&name, "wal-", ".log").is_some() {
                    // Every recovered WAL was just compacted to a segment;
                    // any remaining log is an unreachable orphan.
                    true
                } else {
                    name.ends_with(".tmp")
                };
                if stale {
                    let _ = fs::remove_file(e.path());
                }
            }
        }
    }

    /// Runs `op` with a bounded retry budget and jittered exponential
    /// backoff between attempts: a transient I/O blip is absorbed (and
    /// counted toward [`Self::io_retries`]), a persistent failure comes
    /// back as the last error for the engine to degrade on.
    fn retry<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        const RETRIES: u32 = 4;
        let mut delay = Duration::from_micros(500);
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(_) if attempt < RETRIES => {
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(jittered(delay));
                    delay = (delay * 2).min(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Transient I/O errors absorbed by retry since this persister
    /// attached (a health metric).
    pub fn io_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// WAL-append one insert batch (called *before* the rows are applied
    /// in memory). Fsyncs: the batch boundary is the durability point.
    pub(crate) fn log_insert(&self, from: u32, vs: &[SparseVector]) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = &mut *s;
        let mut payload = Vec::new();
        payload.push(TAG_INSERT);
        put_u32(&mut payload, from);
        put_rows(&mut payload, vs.iter().cloned());
        let record = encode_record(&payload);
        self.retry(|| {
            let rotate = match &s.wal {
                Some(w) => w.base + w.rows != from,
                None => true,
            };
            if rotate {
                debug_assert!(s.wal.is_none(), "WAL rotation with rows still open");
                let path = wal_path(&s.data, from);
                let file = fio_create(&path)?;
                s.wal = Some(WalWriter {
                    file,
                    base: from,
                    rows: 0,
                    good: 0,
                });
            }
            let w = s.wal.as_mut().expect("installed above");
            w.file.truncate_to(w.good)?;
            fault::io_check(fault::WAL_APPEND)?;
            fio_write(&mut w.file, &record)?;
            fault::io_check(fault::WAL_FSYNC)?;
            fio_fsync(&mut w.file)?;
            w.good += record.len() as u64;
            Ok(())
        })?;
        let w = s.wal.as_mut().expect("record landed above");
        w.rows += vs.len() as u32;
        Ok(())
    }

    /// A generation sealed: write its immutable segment, retire its WAL.
    pub(crate) fn on_seal(&self, g: &DeltaGeneration) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = &mut *s;
        let mut rows = Vec::new();
        put_rows(&mut rows, gen_rows(g));
        let bytes = encode_segment(GEN_MAGIC, g.base() as u64, &mut rows);
        let path = gen_path(&s.data, g.base());
        self.retry(|| {
            fault::io_check(fault::SEAL_SEGMENT)?;
            fio_write_atomic(&path, &bytes)
        })?;
        if s.wal.as_ref().is_some_and(|w| w.base == g.base()) {
            s.wal = None;
            // Best-effort: a leftover WAL is shadowed by the segment at
            // recovery and garbage-collected by the next attach.
            let _ = fio_remove(&wal_path(&s.data, g.base()));
        }
        Ok(())
    }

    /// Append one tombstone to the delete log (fsync per record; deletes
    /// are rare next to inserts).
    pub(crate) fn log_delete(&self, id: u32) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = &mut *s;
        let mut payload = vec![TAG_DELETE];
        payload.extend_from_slice(&id.to_le_bytes());
        let record = encode_record(&payload);
        self.retry(|| {
            if s.tomb.is_none() {
                let path = tomb_path(&s.data);
                let file = fio_append(&path)?;
                let good = file.len()?;
                s.tomb = Some(TombWriter { file, good });
            }
            let t = s.tomb.as_mut().expect("installed above");
            t.file.truncate_to(t.good)?;
            fault::io_check(fault::TOMB_APPEND)?;
            fio_write(&mut t.file, &record)?;
            fio_fsync(&mut t.file)?;
            t.good += record.len() as u64;
            Ok(())
        })
    }

    /// Append one retirement-watermark advance to the delete log (fsync
    /// per record, like a delete — the watermark moves at most once per
    /// insert batch). Replay takes the max, so repeated advances and the
    /// manifest's own snapshot compose monotonically.
    pub(crate) fn log_retire(&self, watermark: u32) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = &mut *s;
        let mut payload = vec![TAG_RETIRE];
        payload.extend_from_slice(&watermark.to_le_bytes());
        let record = encode_record(&payload);
        self.retry(|| {
            if s.tomb.is_none() {
                let path = tomb_path(&s.data);
                let file = fio_append(&path)?;
                let good = file.len()?;
                s.tomb = Some(TombWriter { file, good });
            }
            let t = s.tomb.as_mut().expect("installed above");
            t.file.truncate_to(t.good)?;
            fault::io_check(fault::TOMB_APPEND)?;
            fio_write(&mut t.file, &record)?;
            fio_fsync(&mut t.file)?;
            t.good += record.len() as u64;
            Ok(())
        })
    }

    /// Write the merged corpus as the next static segment (off to the
    /// side, *before* the merge takes the write lock). `base` is the
    /// global id of the corpus's row 0 (the window-compaction cut).
    /// Returns the segment's sequence number for [`Self::publish_static`].
    pub(crate) fn prepare_static(&self, base: u32, static_data: &CrsMatrix) -> io::Result<u64> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = s.next_static_seq;
        s.next_static_seq += 1;
        let mut rows = Vec::new();
        put_rows(
            &mut rows,
            (0..static_data.num_rows() as u32).map(|id| static_data.row_vector(id)),
        );
        let bytes = encode_segment(STATIC_MAGIC, base as u64, &mut rows);
        let path = static_path(&s.data, seq);
        self.retry(|| {
            fault::io_check(fault::STATIC_PREPARE)?;
            fio_write_atomic(&path, &bytes)
        })?;
        Ok(seq)
    }

    /// Commit a merge publish (under the engine's write lock): swap the
    /// manifest — the atomic commit point — then truncate the tombstone
    /// log (its entries are all snapshotted in the manifest now) and
    /// retire the generation segments and WALs the merge consumed, plus
    /// the previous static segment. In-memory manifest state only moves
    /// forward if the swap lands, so a failed publish leaves disk *and*
    /// bookkeeping at the pre-merge state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn publish_static(
        &self,
        seq: u64,
        static_base: u64,
        static_len: u64,
        purged: &[u32],
        pending: Vec<u32>,
        retired_below: u32,
    ) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = &mut *s;
        let old_seq = s.manifest.static_seq;
        let mut next = s.manifest.clone();
        next.static_seq = Some(seq);
        next.static_len = static_len;
        next.static_base = static_base;
        next.retired_below = (retired_below as u64).max(static_base);
        next.purged = purged.to_vec();
        next.pending = pending;
        let bytes = next.encode();
        let manifest_path = self.dir.join(MANIFEST);
        self.retry(|| {
            fault::io_check(fault::MANIFEST_SWAP)?;
            fio_write_atomic(&manifest_path, &bytes)
        })?;
        s.manifest = next;

        // Post-commit cleanup is best-effort: leftovers are shadowed by
        // the manifest at recovery and garbage-collected on re-attach.
        s.tomb = None;
        let _ = fio_remove(&tomb_path(&s.data));
        if let Some(old) = old_seq {
            if Some(old) != s.manifest.static_seq {
                let _ = fio_remove(&static_path(&s.data, old));
            }
        }
        if let Ok(entries) = fs::read_dir(&s.data) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy().into_owned();
                let retired = parse_numbered(&name, "gen-", ".seg")
                    .or_else(|| parse_numbered(&name, "wal-", ".log"))
                    .is_some_and(|b| b < static_base + static_len);
                if retired {
                    let _ = fio_remove(&e.path());
                }
            }
        }
        Ok(())
    }

    /// The engine was cleared: commit an empty lifetime. The manifest
    /// rename is the commit point; the old data directory becomes an
    /// orphan that recovery garbage-collects.
    pub(crate) fn on_clear(&self) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = &mut *s;
        let reset = s.manifest.reset + 1;
        let data = data_dir(&self.dir, reset);
        let mut next = s.manifest.clone();
        next.reset = reset;
        next.static_seq = None;
        next.static_len = 0;
        next.static_base = 0;
        next.retired_below = 0;
        next.purged.clear();
        next.pending.clear();
        let bytes = next.encode();
        let manifest_path = self.dir.join(MANIFEST);
        self.retry(|| {
            fs::create_dir_all(&data)?;
            fio_write_atomic(&manifest_path, &bytes)
        })?;
        let old_data = std::mem::replace(&mut s.data, data);
        s.manifest = next;
        s.next_static_seq = 0;
        s.wal = None;
        s.tomb = None;
        if fail::gate() == fail::Gate::Live {
            let _ = fs::remove_dir_all(&old_data);
        }
        Ok(())
    }

    /// Rebuilds the directory from a fresh baseline of the engine's
    /// current in-memory contents — the heal path out of degraded mode.
    /// Writes a brand-new `data-<reset+1>` lifetime, swaps the manifest
    /// (the commit point), and removes the old lifetime best-effort (a
    /// leftover is garbage-collected by the next attach). Idempotent:
    /// safe to call repeatedly until it succeeds.
    pub(crate) fn resync(&self, b: &Baseline<'_>) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = &mut *s;
        let reset = s.manifest.reset + 1;
        let data = data_dir(&self.dir, reset);
        fs::create_dir_all(&data)?;
        let (static_seq, wal) = write_baseline(&data, b)?;
        let manifest = Manifest {
            params: b.params.clone(),
            capacity: b.capacity,
            eta: b.eta,
            seal_min_points: b.seal_min_points,
            reset,
            static_seq,
            static_len: b.static_len as u64,
            static_base: b.static_base as u64,
            retired_below: b.retired_below as u64,
            window: b.window,
            purged: b.purged.to_vec(),
            pending: b.pending.clone(),
        };
        fault::io_check(fault::MANIFEST_SWAP)?;
        fio_write_atomic(&self.dir.join(MANIFEST), &manifest.encode())?;
        let old_data = std::mem::replace(&mut s.data, data);
        s.manifest = manifest;
        s.next_static_seq = static_seq.map_or(0, |q| q + 1);
        s.wal = wal;
        s.tomb = None;
        let _ = fs::remove_dir_all(&old_data);
        Ok(())
    }

    /// The directory this persister writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// The durable contents of one engine directory, as read back by
/// [`load_state`]: everything needed to rebuild the engine, plus the
/// layout bookkeeping needed to re-attach the persister.
#[derive(Debug)]
pub struct RecoveredState {
    manifest: Manifest,
    /// Rows of the static prefix (`manifest.static_len` of them).
    static_rows: Vec<SparseVector>,
    /// Sealed generations beyond the static prefix, in id order:
    /// `(base, rows, recovered-from-WAL)`.
    gens: Vec<(u32, Vec<SparseVector>, bool)>,
    /// Tombstones replayed from the delete log (applied after the
    /// manifest's pending list; both are idempotent).
    tomb: Vec<u32>,
    /// Highest retirement watermark replayed from the delete log (0 when
    /// the log held none; composed with the manifest's via max).
    tomb_retire: u32,
    /// Rows that came back from WAL replay rather than sealed segments.
    wal_rows: usize,
}

impl RecoveredState {
    /// LSH parameters stored in the manifest.
    pub fn params(&self) -> &PlshParams {
        &self.manifest.params
    }

    /// Node capacity stored in the manifest.
    pub fn capacity(&self) -> usize {
        self.manifest.capacity as usize
    }

    /// Rows in the durable static prefix.
    pub fn static_len(&self) -> usize {
        self.manifest.static_len as usize
    }

    /// Global id of the first resident row — the sliding window's
    /// compaction cut at the time of the last durable merge (0 without a
    /// window).
    pub fn static_base(&self) -> u32 {
        self.manifest.static_base as u32
    }

    /// The recovered retirement watermark: the manifest's snapshot
    /// composed with every advance replayed from the delete log.
    pub fn retired_below(&self) -> u32 {
        (self.manifest.retired_below as u32).max(self.tomb_retire)
    }

    /// The engine's sliding-window spec, if one was configured.
    pub fn window(&self) -> Option<WindowSpec> {
        self.manifest.window
    }

    /// Total recovered *resident* rows (static prefix + contiguous
    /// generations); the global id space ends at
    /// `static_base() + total()`.
    pub fn total(&self) -> usize {
        self.static_len()
            + self
                .gens
                .iter()
                .map(|(_, rows, _)| rows.len())
                .sum::<usize>()
    }

    /// One past the highest recovered global id.
    fn end(&self) -> u64 {
        self.manifest.static_base + self.total() as u64
    }

    /// Rows recovered from the live WAL (not yet sealed to a segment at
    /// the time of the crash).
    pub fn wal_rows(&self) -> usize {
        self.wal_rows
    }

    /// Sealed generation segments recovered (excluding the WAL tail).
    pub fn segments(&self) -> usize {
        self.gens.iter().filter(|(_, _, w)| !w).count()
    }

    /// All recovered rows in id order (cloned; recovery-time only).
    pub fn all_rows(&self) -> Vec<SparseVector> {
        let mut rows = self.static_rows.clone();
        for (_, gen_rows, _) in &self.gens {
            rows.extend(gen_rows.iter().cloned());
        }
        rows
    }

    /// Every tombstoned id the directory knows about (manifest pending +
    /// purged + delete log), deduplicated, ascending.
    pub fn tombstones(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .manifest
            .pending
            .iter()
            .chain(&self.manifest.purged)
            .chain(&self.tomb)
            .copied()
            .filter(|&id| (id as u64) >= self.manifest.static_base && (id as u64) < self.end())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Reads the durable state out of an engine directory without building an
/// engine: manifest → static segment → contiguous generation segments →
/// live WAL → delete log. Stops at the first gap in the id space (the
/// crash tail); a torn WAL or delete-log record is dropped silently.
pub fn load_state(dir: impl AsRef<Path>) -> io::Result<RecoveredState> {
    let dir = dir.as_ref();
    let bytes = fs::read(dir.join(MANIFEST)).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("{}: no recoverable index ({e})", dir.display()),
        )
    })?;
    let manifest = Manifest::decode(&bytes)?;
    let data = data_dir(dir, manifest.reset);

    let static_rows = match manifest.static_seq {
        Some(seq) => {
            let bytes = fs::read(static_path(&data, seq))?;
            let rows = decode_segment(STATIC_MAGIC, manifest.static_base, &bytes)?;
            if rows.len() as u64 != manifest.static_len {
                return Err(bad(format!(
                    "static segment holds {} rows, manifest says {}",
                    rows.len(),
                    manifest.static_len
                )));
            }
            rows
        }
        None => Vec::new(),
    };

    let mut gens: Vec<(u32, Vec<SparseVector>, bool)> = Vec::new();
    let mut wal_rows = 0usize;
    let mut next = (manifest.static_base + manifest.static_len) as u32;
    loop {
        let seg = gen_path(&data, next);
        if seg.exists() {
            // A corrupt sealed segment (it was written via rename, so
            // only external damage produces one) ends the recoverable
            // prefix rather than failing the whole recovery.
            match fs::read(&seg).and_then(|b| decode_segment(GEN_MAGIC, next as u64, &b)) {
                Ok(rows) if !rows.is_empty() => {
                    next += rows.len() as u32;
                    gens.push((next - rows.len() as u32, rows, false));
                    continue;
                }
                _ => break,
            }
        }
        // Fall through to the live WAL for the open tail.
        let wal = wal_path(&data, next);
        if !wal.exists() {
            break;
        }
        let mut rows: Vec<SparseVector> = Vec::new();
        let base = next;
        replay_log(&wal, |payload| {
            let mut r = payload;
            let mut tag = [0u8; 1];
            if r.read_exact(&mut tag).is_err() || tag[0] != TAG_INSERT {
                return false;
            }
            let Ok(from) = get_u32(&mut r) else {
                return false;
            };
            if from != base + rows.len() as u32 {
                return false;
            }
            match get_rows(&mut r) {
                Ok(batch) => {
                    rows.extend(batch);
                    true
                }
                Err(_) => false,
            }
        })?;
        if rows.is_empty() {
            break;
        }
        wal_rows += rows.len();
        next += rows.len() as u32;
        gens.push((base, rows, true));
        // Keep walking: a crash between "segment renamed" and "WAL
        // removed" leaves both, and newer files may follow the segment.
    }

    let mut tomb = Vec::new();
    let mut tomb_retire = 0u32;
    replay_log(&tomb_path(&data), |payload| {
        if payload.len() != 5 {
            return false;
        }
        let arg = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes"));
        match payload[0] {
            TAG_DELETE => {
                tomb.push(arg);
                true
            }
            TAG_RETIRE => {
                tomb_retire = tomb_retire.max(arg);
                true
            }
            _ => false,
        }
    })?;

    Ok(RecoveredState {
        manifest,
        static_rows,
        gens,
        tomb,
        tomb_retire,
        wal_rows,
    })
}

/// Rebuilds an [`Engine`] from a recovered state, optionally truncated to
/// the first `keep` rows (sharded recovery truncates every shard to the
/// longest globally-contiguous prefix). The rebuild follows the snapshot
/// restore order so the purge accounting matches; generation boundaries
/// within the kept rows are reproduced exactly.
pub fn rebuild_engine(
    st: &RecoveredState,
    keep: Option<usize>,
    pool: &ThreadPool,
) -> PlshResult<Engine> {
    let keep = keep.unwrap_or_else(|| st.total()).min(st.total());
    let m = &st.manifest;
    let base = st.static_base();
    let mut config = EngineConfig::new(m.params.clone(), m.capacity as usize)
        .with_eta(m.eta)
        .with_seal_min_points(m.seal_min_points as usize);
    if let Some(w) = m.window {
        config = config.with_window(w);
    }
    let engine = Engine::new(config, pool)?;
    if base > 0 {
        // Land the id space where the compacted directory left it: the
        // first recovered row keeps its global id.
        engine.fast_forward_empty(base);
    }
    let split = st.static_len().min(keep);
    if split > 0 {
        engine.insert_batch_deferring_merge(&st.static_rows[..split], pool)?;
        engine.seal();
        for &id in &m.purged {
            if ((id - base) as usize) < split {
                engine.delete(id);
            }
        }
        engine.merge_delta(pool);
    }
    let mut at = split;
    for (gen_base, rows, _) in &st.gens {
        if at >= keep {
            break;
        }
        debug_assert_eq!(
            *gen_base as u64,
            base as u64 + at.max(st.static_len()) as u64
        );
        let take = rows.len().min(keep - at);
        engine.insert_batch_deferring_merge(&rows[..take], pool)?;
        engine.seal();
        at += take;
    }
    for &id in m.pending.iter().chain(&st.tomb) {
        if ((id.saturating_sub(base)) as usize) < keep {
            engine.delete(id);
        }
    }
    // Re-arm the watermark last, with no merge after it: the recovered
    // engine's compaction state (static_base) matches the directory's, and
    // the retired-pending-purge backlog is carried over rather than
    // silently purged by the rebuild.
    let _ = engine.retire_to(st.retired_below());
    Ok(engine)
}

impl Engine {
    /// Attaches incremental durability to this engine: writes a full
    /// baseline of the current contents into `dir` (which must not
    /// already hold a persisted index), then keeps the directory in sync
    /// from every insert, seal, delete, merge, and clear. See the
    /// [module docs](self) for the file layout and crash semantics.
    pub fn persist_to(&self, dir: impl AsRef<Path>) -> PlshResult<()> {
        self.attach_persister(dir.as_ref())
    }

    /// Recovers an engine from a directory written by
    /// [`persist_to`](Self::persist_to), re-attaching persistence so the
    /// recovered engine keeps journaling. Answers are bit-identical to a
    /// from-scratch build over the recovered rows (property-tested).
    pub fn recover_from(dir: impl AsRef<Path>, pool: &ThreadPool) -> PlshResult<Engine> {
        let st = load_state(dir.as_ref())?;
        recover_engine_from_state(dir, &st, pool)
    }
}

/// Finish a recovery whose state was already loaded (sharded recovery
/// loads every shard first to compute the global truncation point):
/// rebuild the engine and re-attach the persister.
pub fn recover_engine_from_state(
    dir: impl AsRef<Path>,
    st: &RecoveredState,
    pool: &ThreadPool,
) -> PlshResult<Engine> {
    let engine = rebuild_engine(st, None, pool)?;
    let persister = EnginePersister::attach_recovered(dir.as_ref(), st)?;
    engine.set_persister(persister);
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    /// Serializes the tests that arm the process-global fail injector.
    static FAIL_GUARD: Mutex<()> = Mutex::new(());

    fn params(seed: u64) -> PlshParams {
        PlshParams::builder(32)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn vectors(n: usize, seed: u64) -> Vec<SparseVector> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let a = rng.next_below(32) as u32;
                let b = (a + 1 + rng.next_below(31) as u32) % 32;
                SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
            })
            .collect()
    }

    fn answers(e: &Engine, qs: &[SparseVector]) -> Vec<Vec<(u32, u32)>> {
        qs.iter()
            .map(|q| {
                let mut hits: Vec<(u32, u32)> = e
                    .query(q)
                    .iter()
                    .map(|h| (h.index, h.distance.to_bits()))
                    .collect();
                hits.sort_unstable();
                hits
            })
            .collect()
    }

    #[test]
    fn wal_segments_and_merge_round_trip() {
        let tmp = tempdir("persist-roundtrip");
        let pool = ThreadPool::new(1);
        let vs = vectors(120, 9);
        let engine = Engine::new(EngineConfig::new(params(3), 500).manual_merge(), &pool).unwrap();
        engine.persist_to(&tmp).unwrap();
        engine.insert_batch(&vs[..50], &pool).unwrap();
        engine.delete(7);
        engine.merge_delta(&pool);
        engine.insert_batch(&vs[50..90], &pool).unwrap();
        engine.delete(60);

        let back = Engine::recover_from(&tmp, &pool).unwrap();
        assert_eq!(back.len(), engine.len());
        assert_eq!(back.static_len(), engine.static_len());
        assert_eq!(back.purged_ids(), engine.purged_ids());
        assert!(back.is_deleted(7) && back.is_deleted(60));
        assert_eq!(answers(&back, &vs), answers(&engine, &vs));
        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn open_generation_survives_via_wal() {
        let tmp = tempdir("persist-open-gen");
        let pool = ThreadPool::new(1);
        let vs = vectors(40, 11);
        let engine = Engine::new(
            EngineConfig::new(params(4), 100)
                .manual_merge()
                .with_seal_min_points(64),
            &pool,
        )
        .unwrap();
        engine.persist_to(&tmp).unwrap();
        // Everything stays in the open generation: only the WAL has it.
        for chunk in vs.chunks(7) {
            engine.insert_batch(chunk, &pool).unwrap();
        }
        assert_eq!(engine.visible_len(), 0);

        let back = Engine::recover_from(&tmp, &pool).unwrap();
        back.seal();
        engine.seal();
        assert_eq!(back.len(), vs.len());
        assert_eq!(answers(&back, &vs), answers(&engine, &vs));
        // The recovered WAL was compacted into a segment.
        assert!(gen_path(&data_dir(Path::new(&tmp), 0), 0).exists());
        assert!(!wal_path(&data_dir(Path::new(&tmp), 0), 0).exists());
        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn baseline_of_populated_engine_and_clear() {
        let tmp = tempdir("persist-baseline");
        let pool = ThreadPool::new(1);
        let vs = vectors(80, 21);
        let engine = Engine::new(EngineConfig::new(params(5), 200).manual_merge(), &pool).unwrap();
        engine.insert_batch(&vs[..30], &pool).unwrap();
        engine.merge_delta(&pool);
        engine.insert_batch(&vs[30..], &pool).unwrap();
        engine.delete(3);
        // Baseline written mid-life, with static + sealed + tombstones.
        engine.persist_to(&tmp).unwrap();
        let back = Engine::recover_from(&tmp, &pool).unwrap();
        assert_eq!(answers(&back, &vs), answers(&engine, &vs));

        engine.clear();
        let back = Engine::recover_from(&tmp, &pool).unwrap();
        assert_eq!(back.len(), 0);
        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_dropped() {
        let tmp = tempdir("persist-torn");
        let pool = ThreadPool::new(1);
        let vs = vectors(30, 31);
        let engine = Engine::new(
            EngineConfig::new(params(6), 100)
                .manual_merge()
                .with_seal_min_points(64),
            &pool,
        )
        .unwrap();
        engine.persist_to(&tmp).unwrap();
        for chunk in vs.chunks(10) {
            engine.insert_batch(chunk, &pool).unwrap();
        }
        // Tear the last record: recovery must come back with exactly the
        // first two batches.
        let wal = wal_path(&data_dir(Path::new(&tmp), 0), 0);
        let bytes = fs::read(&wal).unwrap();
        fs::write(&wal, &bytes[..bytes.len() - 11]).unwrap();
        let back = Engine::recover_from(&tmp, &pool).unwrap();
        assert_eq!(back.len(), 20);
        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_clean_error() {
        let tmp = tempdir("persist-nomanifest");
        fs::create_dir_all(&tmp).unwrap();
        let err = load_state(&tmp).unwrap_err();
        assert!(err.to_string().contains("no recoverable index"));
        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn fail_injection_freezes_the_directory() {
        let _g = FAIL_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let tmp = tempdir("persist-freeze");
        let pool = ThreadPool::new(1);
        let vs = vectors(60, 41);
        let engine = Engine::new(EngineConfig::new(params(7), 200).manual_merge(), &pool).unwrap();
        engine.persist_to(&tmp).unwrap();
        engine.insert_batch(&vs[..20], &pool).unwrap();
        fail::arm(0); // power already cut: nothing below reaches the disk
        engine.insert_batch(&vs[20..], &pool).unwrap();
        engine.delete(1);
        engine.merge_delta(&pool);
        fail::disarm();
        let back = Engine::recover_from(&tmp, &pool).unwrap();
        assert_eq!(back.len(), 20, "frozen ops must not be recoverable");
        assert!(!back.is_deleted(1));
        std::fs::remove_dir_all(&tmp).unwrap();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("plsh-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }
}
