//! Runtime-dispatched SIMD kernels for the query-side hot loops.
//!
//! The paper's throughput numbers (Sections 5.1.1 and 5.2) assume the
//! hashing kernel is an explicitly vectorized sparse × dense product and the
//! candidate filter is memory-bound rather than compute-bound. This module
//! provides those kernels with **runtime** CPU dispatch — no `RUSTFLAGS` or
//! `target-cpu` required: [`level`] probes the CPU once (via
//! `is_x86_feature_detected!`) and every kernel picks the widest available
//! implementation.
//!
//! All hashing kernels preserve a strict contract: **for every hash lane
//! `j`, partial products are accumulated in ascending non-zero order with a
//! separate multiply and add (no FMA)**. IEEE-754 multiplication and
//! addition are deterministic, so the AVX2, SSE2, register-blocked, and
//! plain scalar kernels return *bit-identical* accumulators, and sketches
//! hashed by any path (bulk append, single query, batched query) agree
//! exactly. The dot-product kernel keeps independent per-lane partial sums
//! and reduces them in a fixed tree order, so it is deterministic but may
//! differ from the scalar sum by normal floating-point reassociation (the
//! property tests bound the difference).
//!
//! Dispatch can be forced with `PLSH_SIMD=scalar|sse2|avx2` (useful for the
//! kernel ablation and for exercising the portable path on x86 hardware);
//! requesting a level the CPU cannot run falls back to the widest safe one.

use std::sync::OnceLock;

/// Instruction-set level selected for the kernels of this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable register-blocked Rust (8 hash lanes × 4 non-zeros).
    Scalar,
    /// 128-bit SSE2 (baseline of every `x86_64`).
    Sse2,
    /// 256-bit AVX2 (+ gathers for the masked dot product).
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name (reported in `BENCH_query.json`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// The level every kernel in this module dispatches to (probed once).
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(detect)
}

fn detect() -> SimdLevel {
    let hw = hardware_level();
    match std::env::var("PLSH_SIMD").as_deref() {
        Ok("scalar") => SimdLevel::Scalar,
        // A forced level is honored only up to what the CPU supports.
        Ok("sse2") if hw != SimdLevel::Scalar => SimdLevel::Sse2,
        Ok("avx2") | Err(_) => hw,
        Ok(other) => {
            eprintln!(
                "PLSH_SIMD={other:?} not recognized (or unsupported here); \
                 expected scalar|sse2|avx2 — using detected level {}",
                hw.name()
            );
            hw
        }
    }
}

fn hardware_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

// ---------------------------------------------------------------------------
// Hashing kernel: acc[j] += v · planes[d·nh + j] over all non-zeros (d, v).
// ---------------------------------------------------------------------------

/// Reference kernel: the plain contiguous-row loop (what LLVM used to
/// auto-vectorize). Kept as the ground truth the explicit kernels are
/// tested against — all of them must match it bit for bit.
pub fn accumulate_rows_scalar(
    data: &[f32],
    nh: usize,
    indices: &[u32],
    values: &[f32],
    acc: &mut [f32],
) {
    debug_assert_eq!(acc.len(), nh);
    for (&d, &v) in indices.iter().zip(values) {
        let row = &data[d as usize * nh..d as usize * nh + nh];
        for (a, &p) in acc.iter_mut().zip(row) {
            *a += v * p;
        }
    }
}

/// Register-blocked portable kernel: 8 hash lanes × 4 non-zeros per
/// iteration. The 8-lane accumulator block lives in registers across the
/// whole non-zero loop, so the store/load chain of the naive loop
/// disappears while every lane still sums in ascending non-zero order.
pub fn accumulate_rows_blocked(
    data: &[f32],
    nh: usize,
    indices: &[u32],
    values: &[f32],
    acc: &mut [f32],
) {
    debug_assert_eq!(acc.len(), nh);
    let n = indices.len();
    let mut j = 0usize;
    while j + 8 <= nh {
        let mut a = [0.0f32; 8];
        a.copy_from_slice(&acc[j..j + 8]);
        let mut i = 0usize;
        while i + 4 <= n {
            let r0 = &data[indices[i] as usize * nh + j..][..8];
            let r1 = &data[indices[i + 1] as usize * nh + j..][..8];
            let r2 = &data[indices[i + 2] as usize * nh + j..][..8];
            let r3 = &data[indices[i + 3] as usize * nh + j..][..8];
            let (v0, v1, v2, v3) = (values[i], values[i + 1], values[i + 2], values[i + 3]);
            for l in 0..8 {
                let mut x = a[l];
                x += v0 * r0[l];
                x += v1 * r1[l];
                x += v2 * r2[l];
                x += v3 * r3[l];
                a[l] = x;
            }
            i += 4;
        }
        while i < n {
            let row = &data[indices[i] as usize * nh + j..][..8];
            let v = values[i];
            for l in 0..8 {
                a[l] += v * row[l];
            }
            i += 1;
        }
        acc[j..j + 8].copy_from_slice(&a);
        j += 8;
    }
    // Remainder lanes (nh % 8 != 0): scalar, same per-lane order.
    for jj in j..nh {
        let mut x = acc[jj];
        for (&d, &v) in indices.iter().zip(values) {
            x += v * data[d as usize * nh + jj];
        }
        acc[jj] = x;
    }
}

/// SSE2 kernel: 16-lane blocks (4 × 128-bit accumulators) held in registers
/// across the non-zero loop.
///
/// # Safety
/// Caller must ensure the CPU supports SSE2 (always true on `x86_64`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
pub unsafe fn accumulate_rows_sse2(
    data: &[f32],
    nh: usize,
    indices: &[u32],
    values: &[f32],
    acc: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(acc.len(), nh);
    let mut j = 0usize;
    while j + 16 <= nh {
        let ap = acc.as_mut_ptr().add(j);
        let mut a0 = _mm_loadu_ps(ap);
        let mut a1 = _mm_loadu_ps(ap.add(4));
        let mut a2 = _mm_loadu_ps(ap.add(8));
        let mut a3 = _mm_loadu_ps(ap.add(12));
        for (&d, &v) in indices.iter().zip(values) {
            let row = data.as_ptr().add(d as usize * nh + j);
            let vv = _mm_set1_ps(v);
            a0 = _mm_add_ps(a0, _mm_mul_ps(vv, _mm_loadu_ps(row)));
            a1 = _mm_add_ps(a1, _mm_mul_ps(vv, _mm_loadu_ps(row.add(4))));
            a2 = _mm_add_ps(a2, _mm_mul_ps(vv, _mm_loadu_ps(row.add(8))));
            a3 = _mm_add_ps(a3, _mm_mul_ps(vv, _mm_loadu_ps(row.add(12))));
        }
        _mm_storeu_ps(ap, a0);
        _mm_storeu_ps(ap.add(4), a1);
        _mm_storeu_ps(ap.add(8), a2);
        _mm_storeu_ps(ap.add(12), a3);
        j += 16;
    }
    while j + 4 <= nh {
        let ap = acc.as_mut_ptr().add(j);
        let mut a0 = _mm_loadu_ps(ap);
        for (&d, &v) in indices.iter().zip(values) {
            let row = data.as_ptr().add(d as usize * nh + j);
            a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_set1_ps(v), _mm_loadu_ps(row)));
        }
        _mm_storeu_ps(ap, a0);
        j += 4;
    }
    for jj in j..nh {
        let mut x = acc[jj];
        for (&d, &v) in indices.iter().zip(values) {
            x += v * data[d as usize * nh + jj];
        }
        acc[jj] = x;
    }
}

/// AVX2 kernel: 32-lane blocks (4 × 256-bit accumulators) held in registers
/// across the non-zero loop. Multiply and add are kept separate so each
/// lane's rounding matches the scalar kernel exactly (no FMA).
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn accumulate_rows_avx2(
    data: &[f32],
    nh: usize,
    indices: &[u32],
    values: &[f32],
    acc: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(acc.len(), nh);
    let mut j = 0usize;
    while j + 32 <= nh {
        let ap = acc.as_mut_ptr().add(j);
        let mut a0 = _mm256_loadu_ps(ap);
        let mut a1 = _mm256_loadu_ps(ap.add(8));
        let mut a2 = _mm256_loadu_ps(ap.add(16));
        let mut a3 = _mm256_loadu_ps(ap.add(24));
        for (&d, &v) in indices.iter().zip(values) {
            let row = data.as_ptr().add(d as usize * nh + j);
            let vv = _mm256_set1_ps(v);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(vv, _mm256_loadu_ps(row)));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(vv, _mm256_loadu_ps(row.add(8))));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(vv, _mm256_loadu_ps(row.add(16))));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(vv, _mm256_loadu_ps(row.add(24))));
        }
        _mm256_storeu_ps(ap, a0);
        _mm256_storeu_ps(ap.add(8), a1);
        _mm256_storeu_ps(ap.add(16), a2);
        _mm256_storeu_ps(ap.add(24), a3);
        j += 32;
    }
    while j + 8 <= nh {
        let ap = acc.as_mut_ptr().add(j);
        let mut a0 = _mm256_loadu_ps(ap);
        for (&d, &v) in indices.iter().zip(values) {
            let row = data.as_ptr().add(d as usize * nh + j);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(v), _mm256_loadu_ps(row)));
        }
        _mm256_storeu_ps(ap, a0);
        j += 8;
    }
    for jj in j..nh {
        let mut x = acc[jj];
        for (&d, &v) in indices.iter().zip(values) {
            x += v * data[d as usize * nh + jj];
        }
        acc[jj] = x;
    }
}

/// Runtime-dispatched hashing kernel over a dimension-major dense matrix:
/// `acc[j] += v · data[d·nh + j]` for every non-zero `(d, v)` and lane `j`.
///
/// Bit-identical to [`accumulate_rows_scalar`] at every dispatch level.
#[inline]
pub fn accumulate_rows(data: &[f32], nh: usize, indices: &[u32], values: &[f32], acc: &mut [f32]) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level()` only reports what `is_x86_feature_detected!`
        // confirmed on this CPU.
        SimdLevel::Avx2 => unsafe { accumulate_rows_avx2(data, nh, indices, values, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { accumulate_rows_sse2(data, nh, indices, values, acc) },
        _ => accumulate_rows_blocked(data, nh, indices, values, acc),
    }
}

// ---------------------------------------------------------------------------
// Masked sparse dot product (query Step Q3, Section 5.2.3).
// ---------------------------------------------------------------------------

/// Scalar masked dot product: walk the data row's index array, test
/// membership in the query's vocabulary bitvector, and multiply hits
/// against the dense query-value array.
#[inline]
pub fn dot_via_mask_scalar(idx: &[u32], val: &[f32], qmask: &[u64], qvals: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&d, &v) in idx.iter().zip(val) {
        if qmask[(d >> 6) as usize] & (1u64 << (d & 63)) != 0 {
            acc += v * qvals[d as usize];
        }
    }
    acc
}

/// AVX2 masked dot product: 8 non-zeros per iteration — gather the mask
/// words and query values, zero out lanes whose vocabulary bit is clear,
/// and accumulate 8 independent partial sums reduced in a fixed tree order.
///
/// Deterministic, but the partial-sum reassociation means results can
/// differ from [`dot_via_mask_scalar`] in the last bits.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2. `qvals` must cover every index
/// in `idx` and `qmask` every index `>> 6` (the same contract as the scalar
/// kernel).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn dot_via_mask_avx2(idx: &[u32], val: &[f32], qmask: &[u64], qvals: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = idx.len();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let d = _mm256_loadu_si256(idx.as_ptr().add(i) as *const __m256i);
        // Gather the 8 bitvector words qmask[d >> 6] (two 4-wide gathers).
        let w = _mm256_srli_epi32::<6>(d);
        let words_lo =
            _mm256_i32gather_epi64::<8>(qmask.as_ptr() as *const i64, _mm256_castsi256_si128(w));
        let words_hi = _mm256_i32gather_epi64::<8>(
            qmask.as_ptr() as *const i64,
            _mm256_extracti128_si256::<1>(w),
        );
        // Shift each word right by d & 63 and isolate the membership bit.
        let bit = _mm256_and_si256(d, _mm256_set1_epi32(63));
        let sh_lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(bit));
        let sh_hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256::<1>(bit));
        let one = _mm256_set1_epi64x(1);
        let hit_lo = _mm256_and_si256(_mm256_srlv_epi64(words_lo, sh_lo), one);
        let hit_hi = _mm256_and_si256(_mm256_srlv_epi64(words_hi, sh_hi), one);
        // 64-bit {0,1} lanes → a 32-bit all-ones/all-zeros lane mask in the
        // original non-zero order.
        let zero = _mm256_setzero_si256();
        let miss_lo = _mm256_cmpeq_epi64(hit_lo, zero);
        let miss_hi = _mm256_cmpeq_epi64(hit_hi, zero);
        let take_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        let miss_lo32 = _mm256_permutevar8x32_epi32(miss_lo, take_even);
        let miss_hi32 = _mm256_permutevar8x32_epi32(miss_hi, take_even);
        let miss = _mm256_inserti128_si256::<1>(miss_lo32, _mm256_castsi256_si128(miss_hi32));
        let keep = _mm256_andnot_si256(miss, _mm256_set1_epi32(-1));
        // Gather query values and zero the misses (stale entries of the
        // dense value array are masked off, exactly like the scalar test).
        let qv = _mm256_i32gather_ps::<4>(qvals.as_ptr(), d);
        let qv = _mm256_and_ps(qv, _mm256_castsi256_ps(keep));
        let vv = _mm256_loadu_ps(val.as_ptr().add(i));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(vv, qv));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    // Fixed reduction tree keeps the result deterministic across runs.
    let mut total = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    while i < n {
        let d = idx[i];
        if qmask[(d >> 6) as usize] & (1u64 << (d & 63)) != 0 {
            total += val[i] * qvals[d as usize];
        }
        i += 1;
    }
    total
}

/// Runtime-dispatched masked sparse dot product.
///
/// Uses the AVX2 gather kernel when available; SSE2 has no gathers, so
/// everything below AVX2 runs the scalar loop.
#[inline]
pub fn dot_via_mask(idx: &[u32], val: &[f32], qmask: &[u64], qvals: &[f32]) -> f32 {
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 confirmed by runtime detection; slice contracts are
        // the same as the scalar kernel's.
        SimdLevel::Avx2 => unsafe { dot_via_mask_avx2(idx, val, qmask, qvals) },
        _ => dot_via_mask_scalar(idx, val, qmask, qvals),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_problem(
        seed: u64,
        dim: usize,
        nh: usize,
        nnz: usize,
    ) -> (Vec<f32>, Vec<u32>, Vec<f32>) {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<f32> = (0..dim * nh)
            .map(|_| rng.next_f64() as f32 * 2.0 - 1.0)
            .collect();
        let mut indices: Vec<u32> = Vec::new();
        let mut d = 0u32;
        for _ in 0..nnz {
            d += 1 + rng.next_below((dim / nnz).max(1) as u64) as u32;
            if (d as usize) < dim {
                indices.push(d);
            }
        }
        let values: Vec<f32> = indices
            .iter()
            .map(|_| rng.next_f64() as f32 * 2.0 - 1.0)
            .collect();
        (data, indices, values)
    }

    #[test]
    fn every_kernel_is_bit_identical_to_scalar() {
        for (seed, nh) in [(1u64, 64usize), (2, 36), (3, 7), (4, 40), (5, 1), (6, 8)] {
            let (data, indices, values) = random_problem(seed, 50, nh, 9);
            let mut reference = vec![0.1f32; nh];
            let mut got = reference.clone();
            accumulate_rows_scalar(&data, nh, &indices, &values, &mut reference);

            let mut blocked = got.clone();
            accumulate_rows_blocked(&data, nh, &indices, &values, &mut blocked);
            assert_eq!(reference, blocked, "blocked kernel diverged (nh={nh})");

            accumulate_rows(&data, nh, &indices, &values, &mut got);
            assert_eq!(reference, got, "dispatched kernel diverged (nh={nh})");

            #[cfg(target_arch = "x86_64")]
            {
                let mut sse = vec![0.1f32; nh];
                // SAFETY: SSE2 is part of the x86_64 baseline.
                unsafe { accumulate_rows_sse2(&data, nh, &indices, &values, &mut sse) };
                assert_eq!(reference, sse, "sse2 kernel diverged (nh={nh})");
                if is_x86_feature_detected!("avx2") {
                    let mut avx = vec![0.1f32; nh];
                    // SAFETY: AVX2 detected above.
                    unsafe { accumulate_rows_avx2(&data, nh, &indices, &values, &mut avx) };
                    assert_eq!(reference, avx, "avx2 kernel diverged (nh={nh})");
                }
            }
        }
    }

    #[test]
    fn dot_via_mask_kernels_agree() {
        let mut rng = SplitMix64::new(11);
        let dim = 300usize;
        for case in 0..30 {
            let n = 1 + (case % 20);
            let mut idx: Vec<u32> = (0..n).map(|_| rng.next_below(dim as u64) as u32).collect();
            idx.sort_unstable();
            idx.dedup();
            let val: Vec<f32> = idx.iter().map(|_| rng.next_f64() as f32 - 0.5).collect();
            let mut qmask = vec![0u64; dim.div_ceil(64)];
            let mut qvals = vec![f32::NAN; dim]; // stale entries must be masked off
            for _ in 0..10 {
                let d = rng.next_below(dim as u64) as u32;
                qmask[(d >> 6) as usize] |= 1 << (d & 63);
                qvals[d as usize] = rng.next_f64() as f32 - 0.5;
            }
            let expect = dot_via_mask_scalar(&idx, &val, &qmask, &qvals);
            let got = dot_via_mask(&idx, &val, &qmask, &qvals);
            assert!(
                (expect - got).abs() < 1e-5,
                "case {case}: {expect} vs {got}"
            );
        }
    }

    #[test]
    fn level_is_stable_and_named() {
        let l = level();
        assert_eq!(l, level(), "level must be cached");
        assert!(["scalar", "sse2", "avx2"].contains(&l.name()));
        #[cfg(target_arch = "x86_64")]
        if std::env::var("PLSH_SIMD").as_deref() != Ok("scalar") {
            assert_ne!(l, SimdLevel::Scalar, "x86_64 always has at least SSE2");
        }
    }
}
