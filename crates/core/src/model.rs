//! The hardware-centric analytic performance model (paper Section 7.1).
//!
//! The model prices the two dominant query steps and the four construction
//! steps in CPU cycles, from first principles:
//!
//! * **Q2** (dedup) is compute-bound: ~11 ops per duplicated index
//!   (word address, load, test, set, loop) spread over `T` threads, plus a
//!   bitvector scan of ~14 ops per 32 bits of `N`.
//! * **Q3** (filtering) is bandwidth-bound: each candidate's CRS row pulls
//!   ~4 cache lines (two ~30-byte unaligned arrays ⇒ 1.5 lines each, plus
//!   one offsets line) = 256 bytes of traffic.
//! * **Hashing** is compute-bound: ~11 ops per (non-zero × hash function),
//!   over `T` threads and SIMD width `S`.
//! * **Insertion** (I1–I3) is bandwidth-bound: 24 bytes per point per
//!   first-level partition and 16 bytes per point per table for each of
//!   steps I2 and I3.
//!
//! On the paper's Xeon E5-2670 (2.6 GHz, 32 GB/s ⇒ 12.3 bytes/cycle,
//! T = 16, S = 8) these constants reproduce the numbers quoted in
//! Section 7.1 (e.g. `T_Q3` ≈ 21 cycles/candidate, construction ≈ 2 520
//! cycles/tweet); the same formulas evaluated with a calibrated
//! [`MachineProfile`] predict this implementation on this machine, which
//! is what Figures 6 and 7 compare.

use std::time::{Duration, Instant};

use plsh_parallel::ThreadPool;

use crate::params::{CostWeights, PlshParams};

/// Description of the executing machine.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct MachineProfile {
    /// Core clock in Hz (used to convert modeled cycles to seconds).
    pub freq_hz: f64,
    /// Achieved memory bandwidth in bytes per cycle (paper: 12.3).
    pub bytes_per_cycle: f64,
    /// Hardware threads used (`T`).
    pub threads: usize,
    /// SIMD lanes for f32 (`S`; AVX = 8).
    pub simd_width: usize,
}

impl MachineProfile {
    /// The paper's evaluation machine: Intel Xeon E5-2670, 2.6 GHz,
    /// 32 GB/s, 8 cores × 2 SMT, AVX.
    pub fn paper() -> Self {
        Self {
            freq_hz: 2.6e9,
            bytes_per_cycle: 12.3,
            threads: 16,
            simd_width: 8,
        }
    }

    /// Measures this machine: times a dependent integer-add chain to
    /// estimate the *effective* clock (1 add retires per cycle on every
    /// relevant microarchitecture, and the dependency chain defeats
    /// superscalar overlap), then streams over a large buffer to estimate
    /// achieved bandwidth in bytes per effective cycle.
    ///
    /// Hardware cycle counters are not portably readable from user space,
    /// and on shared/throttled vCPUs the nameplate clock (`fallback_hz`,
    /// used only if the measurement is implausible) can be far from what a
    /// cycle of work actually costs — which is what the model needs.
    pub fn calibrate(pool: &ThreadPool, fallback_hz: f64) -> Self {
        let freq_hz = {
            let f = measure_effective_frequency();
            if (5e8..1e10).contains(&f) {
                f
            } else {
                fallback_hz
            }
        };
        let bytes_per_sec = measure_bandwidth();
        Self {
            freq_hz,
            bytes_per_cycle: (bytes_per_sec / freq_hz).max(0.5),
            threads: pool.num_threads(),
            simd_width: 8,
        }
    }

    /// Converts modeled cycles to wall time.
    pub fn cycles_to_duration(&self, cycles: f64) -> Duration {
        Duration::from_secs_f64((cycles / self.freq_hz).max(0.0))
    }
}

/// Times a dependency chain of integer adds; the add throughput in ops/s
/// approximates the effective core clock in Hz (1 cycle per dependent add).
fn measure_effective_frequency() -> f64 {
    const CHAIN: u64 = 200_000_000;
    let mut best = 0.0f64;
    for trial in 0..3u64 {
        let start = Instant::now();
        let mut x = 0x9E3779B97F4A7C15u64.wrapping_add(trial);
        let mut i = 0u64;
        while i < CHAIN {
            // Eight dependent adds per iteration amortize the loop branch.
            x = x.wrapping_add(1);
            x = x.wrapping_add(3);
            x = x.wrapping_add(5);
            x = x.wrapping_add(7);
            x = x.wrapping_add(11);
            x = x.wrapping_add(13);
            x = x.wrapping_add(17);
            x = x.wrapping_add(19);
            i += 8;
        }
        std::hint::black_box(x);
        let secs = start.elapsed().as_secs_f64();
        best = best.max(CHAIN as f64 / secs);
    }
    best
}

/// Streams a 64 MB buffer and returns achieved read bandwidth in bytes/s.
fn measure_bandwidth() -> f64 {
    const WORDS: usize = 8 << 20; // 64 MB of u64
    let buf: Vec<u64> = (0..WORDS as u64).collect();
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut acc = 0u64;
        for &w in &buf {
            acc = acc.wrapping_add(w);
        }
        std::hint::black_box(acc);
        let secs = start.elapsed().as_secs_f64();
        best = best.max((WORDS * 8) as f64 / secs);
    }
    best
}

/// Modeled creation-time breakdown (the left panel of Figure 6).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct CreationEstimate {
    /// Hashing all points (Section 5.1.1).
    pub hashing: Duration,
    /// Step I1: first-level partitions (m passes).
    pub step_i1: Duration,
    /// Step I2: second-level key permutation (L passes).
    pub step_i2: Duration,
    /// Step I3: second-level partitions (L passes).
    pub step_i3: Duration,
}

impl CreationEstimate {
    /// Total modeled creation time.
    pub fn total(&self) -> Duration {
        self.hashing + self.step_i1 + self.step_i2 + self.step_i3
    }
}

/// Modeled query-time breakdown for a batch (the right panel of Figure 6).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct QueryEstimate {
    /// Step Q2: bucket reads + bitvector dedup + scan.
    pub step_q2: Duration,
    /// Step Q3: candidate loads + sparse dot products.
    pub step_q3: Duration,
}

impl QueryEstimate {
    /// Total modeled query time.
    pub fn total(&self) -> Duration {
        self.step_q2 + self.step_q3
    }
}

/// The analytic model: machine profile + the paper's per-operation costs.
#[derive(Debug, Clone, Copy)]
pub struct PerformanceModel {
    /// Machine constants used by every formula.
    pub machine: MachineProfile,
}

/// Instruction budgets of this implementation's kernels, counted from the
/// inner loops (the analogue of the paper's "11 ops per index" audits).
///
/// Each step is charged `max(bandwidth term, compute term)`: at the paper's
/// 10 M-point scale the table arrays spill far beyond cache and the
/// bandwidth terms dominate (reproducing the paper's constants exactly, see
/// the tests); at the scaled-down sizes used in this repo the structures
/// are cache-resident and the op-count terms take over.
mod ops {
    /// Step Q2, per duplicated index: bucket-slice iteration (~4 ops) +
    /// bitvector test-and-set (~11 ops, the paper's count) + candidate-list
    /// append (~5 ops).
    pub const Q2_PER_COLLISION: f64 = 20.0;
    /// Step Q2 bitvector scan, per 32 bits of `N` (paper's count).
    pub const Q2_SCAN_PER_32BITS: f64 = 14.0;
    /// Step Q3, per candidate, beyond the per-non-zero work: offsets
    /// lookup, `acos`, radius test, loop overhead.
    pub const Q3_PER_CANDIDATE: f64 = 30.0;
    /// Step Q3, per non-zero of the candidate row: mask word load, bit
    /// test, multiply-add on a hit.
    pub const Q3_PER_NONZERO: f64 = 6.0;
    /// Hashing, per (non-zero × hash function), before SIMD (paper's 11).
    pub const HASH_PER_ELEM: f64 = 11.0;
    /// Step I1, per point per first-level function: histogram pass + key
    /// recomputation + scatter pass.
    pub const I1_PER_POINT_FN: f64 = 8.0;
    /// Step I2, per point per table: permuted gather + store.
    pub const I2_PER_POINT_TABLE: f64 = 6.0;
    /// Step I3, per point per table: counting-sort histogram + scatter.
    pub const I3_PER_POINT_TABLE: f64 = 8.0;
}

impl PerformanceModel {
    /// Builds a model for the given machine.
    pub fn new(machine: MachineProfile) -> Self {
        Self { machine }
    }

    /// `T_Q2` — cycles per duplicated index (compute-bound, threaded).
    pub fn t_q2_cycles(&self) -> f64 {
        ops::Q2_PER_COLLISION / self.machine.threads as f64
    }

    /// Cycles for the per-query bitvector scan over `n` points.
    pub fn q2_scan_cycles(&self, n: usize) -> f64 {
        ops::Q2_SCAN_PER_32BITS * (n as f64 / 32.0) / self.machine.threads as f64
    }

    /// `T_Q3` — cycles per unique candidate: the larger of the bandwidth
    /// cost (~4 cache lines = 256 bytes per candidate, the paper's 21.8
    /// cycles at 12.3 bytes/cycle) and the sparse-dot compute cost for a
    /// row of `nnz` non-zeros.
    pub fn t_q3_cycles(&self, nnz: f64) -> f64 {
        let bandwidth = 256.0 / self.machine.bytes_per_cycle + 1.0;
        let compute =
            (ops::Q3_PER_CANDIDATE + ops::Q3_PER_NONZERO * nnz) / self.machine.threads as f64;
        bandwidth.max(compute)
    }

    /// Cost weights for parameter selection (Section 7.3), for data of mean
    /// sparsity `nnz`.
    pub fn cost_weights(&self, nnz: f64) -> CostWeights {
        CostWeights {
            cycles_per_collision: self.t_q2_cycles(),
            cycles_per_unique: self.t_q3_cycles(nnz),
        }
    }

    /// `T_H` — hashing cycles per point: 11 ops per non-zero per hash
    /// function, over threads and SIMD lanes.
    pub fn hashing_cycles_per_point(&self, nnz: f64, params: &PlshParams) -> f64 {
        let hashes = params.num_hashes() as f64;
        ops::HASH_PER_ELEM * nnz * hashes
            / (self.machine.threads as f64 * self.machine.simd_width as f64)
    }

    /// `T_I1` — first-level partition cycles per point: 24 bytes of
    /// traffic per point per first-level hash function, floored by the
    /// per-item op count when the partitions are cache-resident.
    pub fn i1_cycles_per_point(&self, params: &PlshParams) -> f64 {
        let m = params.m() as f64;
        let bandwidth = 24.0 * m / self.machine.bytes_per_cycle;
        let compute = ops::I1_PER_POINT_FN * m / self.machine.threads as f64;
        bandwidth.max(compute)
    }

    /// `T_I2` — second-level key permutation: 16 bytes per point per
    /// table, floored by the gather/store op count.
    pub fn i2_cycles_per_point(&self, params: &PlshParams) -> f64 {
        let l = params.l() as f64;
        let bandwidth = 16.0 * l / self.machine.bytes_per_cycle;
        let compute = ops::I2_PER_POINT_TABLE * l / self.machine.threads as f64;
        bandwidth.max(compute)
    }

    /// `T_I3` — second-level partition: 16 bytes per point per table,
    /// floored by the counting-sort op count.
    pub fn i3_cycles_per_point(&self, params: &PlshParams) -> f64 {
        let l = params.l() as f64;
        let bandwidth = 16.0 * l / self.machine.bytes_per_cycle;
        let compute = ops::I3_PER_POINT_TABLE * l / self.machine.threads as f64;
        bandwidth.max(compute)
    }

    /// Models full static construction over `n` points of mean sparsity
    /// `nnz`.
    pub fn predict_creation(&self, n: usize, nnz: f64, params: &PlshParams) -> CreationEstimate {
        let nf = n as f64;
        let c = &self.machine;
        CreationEstimate {
            hashing: c.cycles_to_duration(self.hashing_cycles_per_point(nnz, params) * nf),
            step_i1: c.cycles_to_duration(self.i1_cycles_per_point(params) * nf),
            step_i2: c.cycles_to_duration(self.i2_cycles_per_point(params) * nf),
            step_i3: c.cycles_to_duration(self.i3_cycles_per_point(params) * nf),
        }
    }

    /// Models a batch of `queries` against `n` points of mean sparsity
    /// `nnz`, given the expected per-query `#collisions` and `#unique`
    /// (from [`crate::params::estimate_candidates`] or measured counters).
    pub fn predict_query_batch(
        &self,
        queries: usize,
        n: usize,
        nnz: f64,
        e_collisions: f64,
        e_unique: f64,
    ) -> QueryEstimate {
        let qf = queries as f64;
        let q2 = (self.t_q2_cycles() * e_collisions + self.q2_scan_cycles(n)) * qf;
        let q3 = self.t_q3_cycles(nnz) * e_unique * qf;
        QueryEstimate {
            step_q2: self.machine.cycles_to_duration(q2),
            step_q3: self.machine.cycles_to_duration(q3),
        }
    }

    /// Models one query batch fanned out over `shards` shard-local engines
    /// (the `ShardedIndex` execution shape): each shard task runs
    /// single-threaded, the `shards` tasks are scheduled in waves of
    /// `machine.threads`, and every shard re-hashes the query batch (Q1 is
    /// per node in the paper's broadcast too, Section 4) before probing its
    /// `n / shards` slice of the corpus.
    ///
    /// Collisions and unique candidates split evenly across shards (hash
    /// routing is uniform), so the Q2/Q3 *work* is constant in `shards` and
    /// the prediction trades Q1 duplication plus per-shard fan-out overhead
    /// against wave parallelism — exactly the tension
    /// [`pick_shard_count`](Self::pick_shard_count) minimizes.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_sharded_query_batch(
        &self,
        queries: usize,
        n: usize,
        nnz: f64,
        e_collisions: f64,
        e_unique: f64,
        params: &PlshParams,
        shards: usize,
    ) -> Duration {
        let shards = shards.max(1);
        let qf = queries as f64;
        let sf = shards as f64;
        // Per-shard, single-threaded model: the fan-out pool parallelizes
        // across shards, not within one.
        let mut one = self.machine;
        one.threads = 1;
        let per = PerformanceModel::new(one);
        // Q1 duplicated per shard; hashing_cycles_per_point already divides
        // by SIMD width.
        let q1 = per.hashing_cycles_per_point(nnz, params) * qf;
        let q2 = (per.t_q2_cycles() * e_collisions / sf + per.q2_scan_cycles(n / shards)) * qf;
        let q3 = per.t_q3_cycles(nnz) * e_unique / sf * qf;
        let per_shard = q1 + q2 + q3 + SHARD_FANOUT_OVERHEAD_CYCLES;
        let waves = shards.div_ceil(self.machine.threads.max(1)) as f64;
        self.machine.cycles_to_duration(per_shard * waves)
    }

    /// Section-7-style shard-count selection: the shard count in
    /// `1..=max_shards` whose [`predict_sharded_query_batch`](Self::predict_sharded_query_batch)
    /// time is minimal for this machine profile. Ties resolve to the
    /// smallest count (fewer shards means less Q1 duplication and less
    /// merge bookkeeping for the same predicted latency).
    #[allow(clippy::too_many_arguments)]
    pub fn pick_shard_count(
        &self,
        queries: usize,
        n: usize,
        nnz: f64,
        e_collisions: f64,
        e_unique: f64,
        params: &PlshParams,
        max_shards: usize,
    ) -> usize {
        let mut best = (1usize, Duration::MAX);
        for s in 1..=max_shards.max(1) {
            let t = self.predict_sharded_query_batch(
                queries,
                n,
                nnz,
                e_collisions,
                e_unique,
                params,
                s,
            );
            if t < best.1 {
                best = (s, t);
            }
        }
        best.0
    }
}

/// Fixed per-shard fan-out cost per batch (task dispatch, scratch checkout,
/// response translation), in cycles. Small against any real batch, but it
/// keeps the predicted optimum finite when Q2/Q3 vanish.
const SHARD_FANOUT_OVERHEAD_CYCLES: f64 = 20_000.0;

/// Relative error `|actual − estimate| / actual`, the Figure 6 metric.
pub fn relative_error(estimate: Duration, actual: Duration) -> f64 {
    let a = actual.as_secs_f64();
    if a == 0.0 {
        return 0.0;
    }
    (estimate.as_secs_f64() - a).abs() / a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_params() -> PlshParams {
        PlshParams::builder(500_000)
            .k(16)
            .m(40)
            .radius(0.9)
            .delta(0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_machine_reproduces_paper_constants() {
        let model = PerformanceModel::new(MachineProfile::paper());
        // The paper audits its C++ kernel at 11 ops per duplicated index
        // (1.4 cycles on 8 cores); our Rust kernel also appends to the
        // candidate list and pays slice iteration, auditing at ~20 ops.
        let mut eight = MachineProfile::paper();
        eight.threads = 8;
        let m8 = PerformanceModel::new(eight);
        assert!((m8.t_q2_cycles() - 20.0 / 8.0).abs() < 0.01);
        // T_Q3 ≈ 256/12.3 + 1 ≈ 21.8 cycles (paper: "21.8 cycles/unique")
        // — bandwidth-dominated at paper scale, so the compute floor for
        // NNZ = 7.2 must not kick in.
        assert!((model.t_q3_cycles(7.2) - 21.8).abs() < 0.3);
    }

    #[test]
    fn paper_creation_cycle_budget() {
        // Section 7.1.2: hashing ≈ 412 cycles/tweet, I1 ≈ 78, I2 = I3 ≈
        // 1015, total ≈ 2520 cycles/tweet for k=16, m=40, NNZ=7.2.
        let mut machine = MachineProfile::paper();
        machine.threads = 8; // the paper's arithmetic uses 8 cores
        let model = PerformanceModel::new(machine);
        let p = paper_params();
        let th = model.hashing_cycles_per_point(7.2, &p);
        assert!((th - 412.0).abs() / 412.0 < 0.05, "hashing {th}");
        let i1 = model.i1_cycles_per_point(&p);
        assert!((i1 - 78.0).abs() / 78.0 < 0.05, "I1 {i1}");
        let i2 = model.i2_cycles_per_point(&p);
        assert!((i2 - 1015.0).abs() / 1015.0 < 0.05, "I2 {i2}");
        let total = th + i1 + i2 + model.i3_cycles_per_point(&p);
        assert!((total - 2520.0).abs() / 2520.0 < 0.05, "total {total}");
    }

    #[test]
    fn estimates_scale_linearly_in_n() {
        let model = PerformanceModel::new(MachineProfile::paper());
        let p = paper_params();
        let one = model.predict_creation(100_000, 7.2, &p);
        let two = model.predict_creation(200_000, 7.2, &p);
        let r = two.total().as_secs_f64() / one.total().as_secs_f64();
        assert!((r - 2.0).abs() < 1e-6);
    }

    #[test]
    fn query_estimate_components() {
        let model = PerformanceModel::new(MachineProfile::paper());
        let est = model.predict_query_batch(1000, 10_000_000, 7.2, 120_000.0, 60_000.0);
        assert!(est.step_q2 > Duration::ZERO);
        assert!(est.step_q3 > Duration::ZERO);
        assert_eq!(est.total(), est.step_q2 + est.step_q3);
        // Doubling unique candidates only moves Q3.
        let est2 = model.predict_query_batch(1000, 10_000_000, 7.2, 120_000.0, 120_000.0);
        assert_eq!(est.step_q2, est2.step_q2);
        assert!(est2.step_q3 > est.step_q3);
    }

    #[test]
    fn more_threads_speed_up_compute_terms_only() {
        let mut m1 = MachineProfile::paper();
        m1.threads = 1;
        let mut m8 = MachineProfile::paper();
        m8.threads = 8;
        let one = PerformanceModel::new(m1);
        let eight = PerformanceModel::new(m8);
        assert!(one.t_q2_cycles() > eight.t_q2_cycles());
        // With several threads Q3 is bandwidth-bound and thread-invariant…
        let mut m4 = MachineProfile::paper();
        m4.threads = 4;
        let four = PerformanceModel::new(m4);
        assert_eq!(four.t_q3_cycles(7.2), eight.t_q3_cycles(7.2));
        // …but on one thread the compute floor can dominate.
        assert!(one.t_q3_cycles(7.2) >= eight.t_q3_cycles(7.2));
    }

    #[test]
    fn sharded_prediction_prefers_parallel_fanout_on_many_threads() {
        let model = PerformanceModel::new(MachineProfile::paper()); // 16 threads
        let p = paper_params();
        let one =
            model.predict_sharded_query_batch(1000, 10_000_000, 7.2, 120_000.0, 60_000.0, &p, 1);
        let eight =
            model.predict_sharded_query_batch(1000, 10_000_000, 7.2, 120_000.0, 60_000.0, &p, 8);
        assert!(eight < one, "8 shards on 16 threads must beat 1 shard");
        let picked = model.pick_shard_count(1000, 10_000_000, 7.2, 120_000.0, 60_000.0, &p, 16);
        assert!(
            picked > 1,
            "a 16-thread machine wants fan-out, got {picked}"
        );
        assert!(picked <= 16);
    }

    #[test]
    fn sharded_prediction_on_one_thread_avoids_wide_fanout() {
        let mut machine = MachineProfile::paper();
        machine.threads = 1;
        let model = PerformanceModel::new(machine);
        let p = paper_params();
        // One thread: every extra shard re-runs Q1 serially, so the picked
        // count must stay small.
        let picked = model.pick_shard_count(1000, 1_000_000, 7.2, 12_000.0, 6_000.0, &p, 16);
        assert_eq!(picked, 1, "serial machine must not fan out");
    }

    #[test]
    fn sharded_prediction_waves_penalize_oversubscription() {
        let mut machine = MachineProfile::paper();
        machine.threads = 4;
        let model = PerformanceModel::new(machine);
        let p = paper_params();
        let four = model.predict_sharded_query_batch(100, 1_000_000, 7.2, 12_000.0, 6_000.0, &p, 4);
        let five = model.predict_sharded_query_batch(100, 1_000_000, 7.2, 12_000.0, 6_000.0, &p, 5);
        // A fifth shard forces a second wave on four threads.
        assert!(five > four);
    }

    #[test]
    fn relative_error_basics() {
        let e = Duration::from_millis(80);
        let a = Duration::from_millis(100);
        assert!((relative_error(e, a) - 0.2).abs() < 1e-9);
        assert_eq!(relative_error(e, Duration::ZERO), 0.0);
    }

    #[test]
    fn calibration_produces_sane_profile() {
        let pool = ThreadPool::new(1);
        let m = MachineProfile::calibrate(&pool, 2.6e9);
        assert!(m.bytes_per_cycle >= 0.5, "{}", m.bytes_per_cycle);
        assert!(m.bytes_per_cycle < 200.0);
        assert_eq!(m.threads, 1);
    }

    #[test]
    fn cycles_to_duration_roundtrip() {
        let m = MachineProfile::paper();
        let d = m.cycles_to_duration(2.6e9);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
    }
}
